#!/usr/bin/env python
"""Case study 1: medical costs of COVID-19 under NPI scenarios.

Runs the economic workflow's factorial design (Figure 3: VHI compliance x
lockdown duration x lockdown compliance) for a set of regions and reports
the paper-scale medical-cost breakdown per scenario.

Run:  python examples/medical_costs.py
"""

from __future__ import annotations

from repro.core import run_economic_workflow
from repro.core.designs import ExperimentDesign, factorial_cells
from repro.synthpop import get_region


def main() -> None:
    regions = ("VT", "RI")
    cells = factorial_cells({
        "vhi_compliance": [0.5, 0.8],
        "lockdown_days": [30, 60],
        "sh_compliance": [0.6, 0.9],
    })
    design = ExperimentDesign("economic", cells, regions, replicates=3)
    print(f"== economic workflow: {design.n_cells} cells x "
          f"{design.n_regions} regions x {design.replicates} replicates "
          f"= {design.n_simulations} simulations ==\n")

    result = run_economic_workflow(
        regions=regions, design=design, n_days=150, scale=1e-3, seed=11)

    print(f"{'scenario':<52} {'attack':>7} {'outpat $M':>10} "
          f"{'hosp $M':>9} {'vent $M':>8} {'total $M':>10}")
    for o in sorted(result.outcomes, key=lambda o: o.total_cost):
        c = o.costs
        print(f"{o.cell.label():<52} {o.mean_attack_rate:>7.3f} "
              f"{c.outpatient / 1e6:>10.1f} {c.hospital / 1e6:>9.1f} "
              f"{c.ventilator / 1e6:>8.1f} {c.total / 1e6:>10.1f}")

    cheap = result.cheapest()
    dear = result.most_expensive()
    pop = sum(get_region(r).population for r in regions)
    print(f"\ncheapest scenario:  {cheap.cell.label()}")
    print(f"priciest scenario:  {dear.cell.label()}")
    print(f"cost spread: {dear.total_cost / max(cheap.total_cost, 1):.1f}x; "
          f"priciest is ${dear.total_cost / pop:,.0f} per resident")


if __name__ == "__main__":
    main()
