#!/usr/bin/env python
"""Case study 3: calibrating the agent-based model for Virginia.

Reproduces the paper's calibration-prediction cycle (Figures 15-17):

1. LHS prior design over TAU, SYMP, SH and VHI compliances.
2. EpiHiper simulation of every prior cell.
3. GP-emulator Bayesian calibration against (synthetic) surveillance.
4. Posterior resampling and an 8-week forecast with a 95% band.

Run:  python examples/virginia_calibration.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    generate_weekly_report,
    run_calibration_workflow,
    run_prediction_workflow,
)


def main() -> None:
    print("== calibration workflow: Virginia, 40-cell LHS prior ==")
    cal = run_calibration_workflow(
        "VA", n_cells=40, n_days=80, scale=1e-3, seed=1,
        mcmc_samples=1000, mcmc_burn_in=800)

    space = cal.space
    prior = cal.prior_design
    post = cal.posterior.theta_samples
    print(f"\n{'parameter':<16} {'prior mean±sd':>18} {'post mean±sd':>18} "
          f"{'tightening':>11}")
    tight = cal.posterior.tightening()
    for k, name in enumerate(space.names):
        print(f"{name:<16} "
              f"{prior[:, k].mean():>9.3f}±{prior[:, k].std():<7.3f} "
              f"{post[:, k].mean():>9.3f}±{post[:, k].std():<7.3f} "
              f"{tight[k]:>10.2f}x")

    corr = cal.posterior.posterior_correlation()
    print(f"\nTAU/SYMP posterior correlation: {corr[0, 1]:+.2f} "
          "(the paper's Figure 15 finds them negatively correlated)")

    # Figure 16 analogue: does the emulator band bracket the ground truth?
    rng = np.random.default_rng(0)
    band = cal.calibrator.emulator_band(
        cal.posterior.select_configurations(10, rng))
    lo, hi = np.quantile(band, [0.025, 0.975], axis=0)
    inside = ((cal.observed >= lo) & (cal.observed <= hi)).mean()
    print(f"ground truth inside emulator 95% band: {inside:.0%} of days")

    print("\n== prediction workflow: 8-week forecast ==")
    pred = run_prediction_workflow(
        cal, n_configurations=8, replicates=3, horizon=56, seed=2)
    band = pred.confirmed_band
    t0 = cal.observed.shape[0] - 1
    print(f"ensemble of {pred.n_members} members")
    print(f"{'day':>5} {'median':>9} {'95% band':>21}")
    for ahead in (7, 14, 28, 42, 56):
        d = t0 + ahead
        print(f"+{ahead:>4} {band.median[d]:>9.0f} "
              f"[{band.lower[d]:>8.0f}, {band.upper[d]:>8.0f}]")
    print(f"\nlast observed cumulative count: {cal.observed[-1]:.0f} "
          "(simulation scale)")

    print("\n== stakeholder briefing (the weekly deliverable) ==\n")
    report = generate_weekly_report(cal, pred)
    print(report.text)


if __name__ == "__main__":
    main()
