#!/usr/bin/env python
"""A week of nightly operations on the dual-cluster system (Figures 1-2).

Orchestrates the paper's weekly cadence: a calibration night (300 cells x
51 regions), prediction nights, and an economic counter-factual night, all
executed on the simulated Bridges allocation under FFDT-DC, with Globus
transfer accounting and the 10-hour-window check.

Run:  python examples/nightly_operations.py
"""

from __future__ import annotations

from repro.core import (
    calibration_design,
    economic_design,
    orchestrate_night,
    prediction_design,
    weekly_timeline,
)
from repro.params import fmt_bytes


def main() -> None:
    week = [
        ("Mon", calibration_design(seed=0)),
        ("Tue", prediction_design()),
        ("Wed", prediction_design()),
        ("Thu", economic_design()),
        ("Fri", prediction_design()),
    ]
    reports = []
    print("== one operational week on the remote supercluster ==\n")
    for day, design in week:
        report = orchestrate_night(design, seed=len(reports))
        reports.append(report)
        up = report.link.bytes_moved(src="rivanna", dst="bridges")
        down = report.link.bytes_moved(src="bridges", dst="rivanna")
        flag = "OK " if report.fits_window else "OVER"
        print(f"{day}: {design.name:<12} {design.n_simulations:>6} sims  "
              f"remote {report.remote_hours:5.2f}h [{flag}]  "
              f"util {report.utilization:.1%}  "
              f"up {fmt_bytes(up):>8}  down {fmt_bytes(down):>8}")

    print("\n" + weekly_timeline(reports))

    total_sims = sum(r.design.n_simulations for r in reports)
    total_hours = sum(r.remote_hours for r in reports)
    print(f"\nweek total: {total_sims:,} simulations in "
          f"{total_hours:.1f} remote-cluster hours "
          f"(the paper runs 5,000-17,900 simulations per night)")

    print("\ncomparison: the same Tuesday under NFDT-DC ordering")
    nfdt = orchestrate_night(prediction_design(), algorithm="NFDT-DC",
                             seed=1)
    ffdt = reports[1]
    print(f"  FFDT-DC: {ffdt.remote_hours:5.2f}h at "
          f"{ffdt.utilization:.1%} utilization")
    print(f"  NFDT-DC: {nfdt.remote_hours:5.2f}h at "
          f"{nfdt.utilization:.1%} utilization")


if __name__ == "__main__":
    main()
