#!/usr/bin/env python
"""Case study 2: county-level projections with the metapopulation model.

Generates a "ground truth" epidemic from the county-coupled SEIR model
under the March-15 distancing scenario (the situation the paper's team
faced), calibrates (beta, infectious duration) against the county-level
confirmed-case series by direct MCMC (Eq. 6), and projects the five
social-distancing scenarios of Appendix F with posterior uncertainty.

Run:  python examples/county_projections.py
"""

from __future__ import annotations

import numpy as np

from repro.metapop import (
    ALL_SCENARIOS,
    DISTANCE_JUN10_25,
    MetapopModel,
    SEIRParams,
    calibrate_metapop,
)
from repro.surveillance.truth import GroundTruth


def main() -> None:
    region = "VA"
    horizon = 180
    model = MetapopModel.for_region(region)
    print(f"== metapopulation model: {region}, "
          f"{model.n_counties} counties ==")

    # Ground truth: a stochastic run at known parameters under the
    # "distancing to Jun 10, 25% reduction" scenario, observed through the
    # usual ascertainment/delay channel.
    true_params = SEIRParams(beta=0.45, infectious_days=6.0)
    rng = np.random.default_rng(3)
    truth_run = model.run(
        true_params, horizon,
        beta_modifier=DISTANCE_JUN10_25.beta_modifier(),
        stochastic=True, rng=rng, initial_infected=30.0)
    daily = truth_run.confirmed.T
    truth = GroundTruth(
        region_code=region,
        county=np.arange(model.n_counties, dtype=np.int32),
        daily=daily,
        cumulative=np.cumsum(daily, axis=1),
    )
    print(f"true parameters: beta={true_params.beta}, "
          f"infectious={true_params.infectious_days}d "
          f"(R0={true_params.r0:.2f}), distancing Mar15-Jun10 at 25%")
    print(f"observed cumulative cases (day {horizon}): "
          f"{truth.state_cumulative()[-1]:,.0f}")

    print("\ncalibrating (beta, infectious days) by direct MCMC ...")
    cal = calibrate_metapop(model, truth, n_samples=600, burn_in=500,
                            seed=4, initial_infected=30.0)
    p = cal.map_params
    print(f"MAP: beta={p.beta:.3f}, infectious={p.infectious_days:.1f}d, "
          f"R0={p.r0:.2f}; acceptance {cal.mcmc.accept_rate:.2f}")
    lo, hi = cal.mcmc.credible_interval(0.9)
    print(f"90% CI beta: [{lo[0]:.3f}, {hi[0]:.3f}]  "
          f"infectious: [{lo[1]:.1f}, {hi[1]:.1f}]d")

    print(f"\n== projecting the 5 scenarios, {horizon} days, "
          "20 posterior draws each ==")
    rng = np.random.default_rng(5)
    print(f"{'scenario':<28} {'median cum. cases':>18} {'90% interval':>26}")
    for sc in ALL_SCENARIOS:
        finals = []
        for params in cal.posterior_params(20, rng):
            res = model.run(params, horizon,
                            beta_modifier=sc.beta_modifier(),
                            stochastic=True, rng=rng,
                            initial_infected=30.0)
            finals.append(res.state_confirmed_cumulative()[-1])
        med = np.median(finals)
        q05, q95 = np.quantile(finals, [0.05, 0.95])
        print(f"{sc.name:<28} {med:>18,.0f} "
              f"[{q05:>11,.0f}, {q95:>11,.0f}]")

    print("\ncounty detail (top 5 counties, worst-case scenario):")
    res = model.run(cal.map_params, horizon,
                    beta_modifier=ALL_SCENARIOS[0].beta_modifier(),
                    initial_infected=30.0)
    county_final = res.county_confirmed_cumulative()[:, -1]
    top = np.argsort(-county_final)[:5]
    for idx in top:
        print(f"  county #{idx:<4} pop {model.county_pop[idx]:>10,.0f}  "
              f"cum. cases {county_final[idx]:>10,.0f}")


if __name__ == "__main__":
    main()
