#!/usr/bin/env python
"""Producing a forecast-hub submission from the prediction workflow.

"Our group submits forecasts to a number of these efforts" (Section VIII:
the CDC-style community forecast hubs).  This example runs the
calibration -> prediction cycle for two states and renders the ensembles
into a validated point + quantile submission file.

Run:  python examples/forecast_submission.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analytics.hubformat import (
    ensemble_to_hub_rows,
    validate_hub_rows,
    write_hub_csv,
)
from repro.core import run_calibration_workflow, run_prediction_workflow

CAL_DAYS = 70
HORIZON = 28


def main() -> None:
    all_rows = []
    for region in ("VT", "RI"):
        print(f"== {region}: calibrate ({CAL_DAYS}d window) "
              f"and predict ({HORIZON}d) ==")
        cal = run_calibration_workflow(
            region, n_cells=20, n_days=CAL_DAYS, scale=1e-2, seed=8,
            mcmc_samples=400, mcmc_burn_in=400)
        pred = run_prediction_workflow(
            cal, n_configurations=5, replicates=3, horizon=HORIZON, seed=9)
        rows = ensemble_to_hub_rows(
            pred.confirmed_ensemble,
            location=region,
            target="cum case",
            forecast_start=CAL_DAYS,
            horizons=(7, 14, 21, 28),
        )
        validate_hub_rows(rows)
        all_rows.extend(rows)
        point = [r for r in rows if r.type == "point"]
        print(f"   {pred.n_members}-member ensemble; point forecasts: "
              + ", ".join(f"+{r.horizon_days}d={r.value:.0f}"
                          for r in point))

    out = Path("forecast_submission.csv")
    write_hub_csv(all_rows, out)
    print(f"\nwrote {len(all_rows)} rows "
          f"({len(all_rows) // 24} horizon blocks) to {out}")
    print("submission validates: quantiles monotone, one point per block")


if __name__ == "__main__":
    main()
