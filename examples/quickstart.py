#!/usr/bin/env python
"""Quickstart: build a synthetic state, run EpiHiper, inspect the outputs.

Builds Virginia at 1:1000 scale, runs the COVID-19 model of Figure 12 for
120 days with the paper's base interventions (VHI + SC + SH), and prints
the epidemic curve, forecast targets and transmission-tree statistics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analytics import (
    CONFIRMED,
    DEATHS,
    HOSPITAL_CENSUS,
    VENTILATOR_CENSUS,
    capacity_report,
    summarize,
    target_series,
)
from repro.analytics.transmission import transmission_stats
from repro.epihiper import (
    Simulation,
    build_covid_model,
    dendogram_sizes,
    max_generation,
    uniform_seeds,
)
from repro.epihiper.npi import make_sc, make_sh, make_vhi
from repro.synthpop import build_region_network


def main() -> None:
    print("== building synthetic Virginia (scale 1:1000) ==")
    pop, net = build_region_network("VA", scale=1e-3, seed=1)
    print(f"persons: {pop.size:,}  households: {pop.n_households:,}  "
          f"contacts: {net.n_edges:,}  mean degree: {net.mean_degree():.1f}")

    # Transmissibility is nudged above the paper's 0.18 because the scaled
    # network has a lower mean degree than the national-scale one.
    model = build_covid_model(transmissibility=0.28)
    interventions = [
        make_vhi(0.4),                    # voluntary home isolation
        make_sc(start=25),                # school closure from day 25
        make_sh(0.45, start=30, end=75),  # stay-at-home days 30-75
    ]
    sim = Simulation(model, pop, net, seed=7, interventions=interventions)
    sim.seed_infections(uniform_seeds(pop, 40, sim.rng))

    print("\n== simulating 120 days ==")
    result = sim.run(120)
    summary = summarize(result, model)

    confirmed = target_series(summary, model, CONFIRMED)
    hosp = target_series(summary, model, HOSPITAL_CENSUS)
    deaths = target_series(summary, model, DEATHS)

    print(f"attack rate: {result.attack_rate(model):.1%}   "
          f"peak infectious day: {result.peak_day(model)}")
    print(f"cumulative symptomatic: {confirmed[-1]:,}   "
          f"peak hospital census: {hosp.max():,}   deaths: {deaths[-1]:,}")

    print("\nweekly epicurve (new symptomatic cases):")
    daily_new = np.diff(confirmed, prepend=0)
    for week in range(0, 120, 14):
        n = int(daily_new[week:week + 14].sum())
        bar = "#" * min(60, n // 2)
        print(f"  day {week:>3}-{week + 13:<3} {n:>5}  {bar}")

    vent = target_series(summary, model, VENTILATOR_CENSUS)
    report = capacity_report(hosp, vent, "VA", scale=1e-3)
    beds = report["beds"]
    status = (f"overflows on day {beds.first_overflow_day}"
              if beds.overflows else "never overflows")
    print(f"\nhospital capacity: {beds.capacity} surge beds, "
          f"peak demand {beds.peak_demand} "
          f"({beds.peak_utilization:.0%}) — {status}")

    exposed = model.code("Exposed")
    stats = transmission_stats(result.log, exposed)
    print(f"mean generation interval {stats.mean_generation_interval:.1f}d, "
          f"offspring mean {stats.offspring_mean:.2f} "
          f"(var {stats.offspring_var:.2f}: superspreading)")
    trees = dendogram_sizes(result.log, exposed)
    print(f"\ntransmission trees: {len(trees)} roots, "
          f"largest {max(trees.values())} infections, "
          f"deepest chain {max_generation(result.log, exposed)} generations")
    print(f"raw transition log: {result.log.size:,} events "
          f"({result.log.raw_bytes / 1e6:.1f} MB in the paper's format)")


if __name__ == "__main__":
    main()
