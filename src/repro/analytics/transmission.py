"""Transmission-tree analytics: generation intervals and reproduction
numbers.

EpiHiper's raw output carries full dendograms (who infected whom, when);
the analysts' products built on them include effective-reproduction-number
trajectories and generation-interval distributions, which this module
recovers from a :class:`~repro.epihiper.output.TransitionLog`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..epihiper.output import TransitionLog


@dataclass(frozen=True, slots=True)
class TransmissionStats:
    """Summary statistics of one run's transmission forest.

    Attributes:
        n_transmissions: secondary infections recorded.
        mean_generation_interval: mean ticks between an infector's own
            exposure and the exposures they cause.
        offspring_mean / offspring_var: moments of the offspring
            distribution over ever-infected persons (mean is the empirical
            reproduction number; var >> mean signals superspreading).
        secondary_cases_p90: the offspring count of the 90th-percentile
            infector (dispersion indicator).
    """

    n_transmissions: int
    mean_generation_interval: float
    offspring_mean: float
    offspring_var: float
    secondary_cases_p90: float


def _exposure_times(log: TransitionLog, exposed_code: int) -> dict[int, int]:
    rows = log.entering(exposed_code)
    return dict(zip(log.pid[rows].tolist(), log.tick[rows].tolist()))


def generation_intervals(
    log: TransitionLog, exposed_code: int
) -> np.ndarray:
    """Ticks between each infector's exposure and each caused exposure."""
    exposure = _exposure_times(log, exposed_code)
    rows = log.transmissions()
    out = []
    for pid, tick, infector in zip(
        log.pid[rows], log.tick[rows], log.infector[rows]
    ):
        t0 = exposure.get(int(infector))
        if t0 is not None:
            out.append(int(tick) - t0)
    return np.asarray(out, dtype=np.int64)


def offspring_counts(
    log: TransitionLog, exposed_code: int
) -> np.ndarray:
    """Secondary cases caused by each ever-infected person (incl. zeros)."""
    exposure = _exposure_times(log, exposed_code)
    counts = {pid: 0 for pid in exposure}
    rows = log.transmissions()
    for infector in log.infector[rows]:
        key = int(infector)
        if key in counts:
            counts[key] += 1
    return np.asarray(sorted(counts.values(), reverse=True), dtype=np.int64)


def transmission_stats(
    log: TransitionLog, exposed_code: int
) -> TransmissionStats:
    """Compute the full :class:`TransmissionStats` for a run."""
    gi = generation_intervals(log, exposed_code)
    off = offspring_counts(log, exposed_code)
    return TransmissionStats(
        n_transmissions=int(log.transmissions().size),
        mean_generation_interval=float(gi.mean()) if gi.size else 0.0,
        offspring_mean=float(off.mean()) if off.size else 0.0,
        offspring_var=float(off.var()) if off.size else 0.0,
        secondary_cases_p90=float(np.quantile(off, 0.9)) if off.size else 0.0,
    )


def effective_r_series(
    log: TransitionLog,
    exposed_code: int,
    n_days: int,
    *,
    window: int = 7,
) -> np.ndarray:
    """Cohort-based effective reproduction number R_t per exposure day.

    R_t for day t is the mean number of secondary cases eventually caused
    by persons exposed in the ``window`` days ending at t.  Days whose
    cohort is empty carry NaN.
    """
    exposure = _exposure_times(log, exposed_code)
    secondary = {pid: 0 for pid in exposure}
    rows = log.transmissions()
    for infector in log.infector[rows]:
        key = int(infector)
        if key in secondary:
            secondary[key] += 1

    by_day_total = np.zeros(n_days + 1)
    by_day_count = np.zeros(n_days + 1)
    for pid, day in exposure.items():
        if day <= n_days:
            by_day_total[day] += secondary[pid]
            by_day_count[day] += 1

    out = np.full(n_days + 1, np.nan)
    for t in range(n_days + 1):
        lo = max(0, t - window + 1)
        cohort = by_day_count[lo: t + 1].sum()
        if cohort > 0:
            out[t] = by_day_total[lo: t + 1].sum() / cohort
    return out
