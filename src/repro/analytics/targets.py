"""Forecast targets: confirmed cases, hospitalizations, ventilations, deaths.

The prediction workflow aggregates individual-level output "to obtain future
counts for various forecasting targets (e.g. confirmed cases,
hospitalizations, deaths) at various spatial resolution (state or county
level) with different temporal horizons" (Section II).  A target names the
disease-model states that count toward it and whether the series is an
incidence (new entries) or a census (current occupancy, e.g. beds in use).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..epihiper.disease import DiseaseModel
from .aggregate import RegionSummary


@dataclass(frozen=True, slots=True)
class Target:
    """A named forecast target.

    Attributes:
        name: e.g. ``"confirmed"``.
        flag: DiseaseModel state-mask attribute selecting the states
            (``is_symptomatic``, ``is_hospitalized``, ``is_ventilated``,
            ``is_deceased``).
        census: when true the series is the current occupancy; otherwise
            daily new entries (first entry into any selected state).
        cumulative: report the running total of the incidence.
    """

    name: str
    flag: str
    census: bool = False
    cumulative: bool = False


#: The paper's standard targets.
CONFIRMED = Target("confirmed", "is_symptomatic", cumulative=True)
DAILY_CASES = Target("daily_cases", "is_symptomatic")
HOSPITALIZATIONS = Target("hospitalizations", "is_hospitalized")
HOSPITAL_CENSUS = Target("hospital_census", "is_hospitalized", census=True)
VENTILATIONS = Target("ventilations", "is_ventilated")
VENTILATOR_CENSUS = Target("ventilator_census", "is_ventilated", census=True)
DEATHS = Target("deaths", "is_deceased", cumulative=True)

ALL_TARGETS: tuple[Target, ...] = (
    CONFIRMED, DAILY_CASES, HOSPITALIZATIONS, HOSPITAL_CENSUS,
    VENTILATIONS, VENTILATOR_CENSUS, DEATHS,
)


def target_series(
    summary: RegionSummary, model: DiseaseModel, target: Target
) -> np.ndarray:
    """Extract a target's time series from a region summary.

    Incidence targets count *first* entries into the selected state group by
    using the group's entry state (persons re-entering a group through an
    internal transition, e.g. Hospitalized -> Ventilated, are not double
    counted for the hospitalization target because Ventilated entries are
    summed separately only when selected).

    Args:
        summary: aggregated replicate output.
        model: supplies the state masks.
        target: what to extract.

    Returns:
        ``(T,)`` series.
    """
    mask = getattr(model, target.flag)
    if mask.shape[0] != summary.n_states:
        raise ValueError("summary and model disagree on state count")
    if target.census:
        return summary.current[:, mask].sum(axis=1)
    # Incidence: new entries into the group = entries into member states
    # from non-member states.  The summary's per-state "new" counts include
    # intra-group moves, so subtract transitions between member states by
    # using the group's entry chokepoints where the model has them.
    new = summary.new[:, mask].sum(axis=1)
    internal = _internal_entries(summary, model, mask)
    series = new - internal
    if target.cumulative:
        return np.cumsum(series)
    return series


def _internal_entries(
    summary: RegionSummary, model: DiseaseModel, mask: np.ndarray
) -> np.ndarray:
    """Per-day entries into masked states reachable from masked states.

    Exact whenever every masked state with a masked predecessor has *only*
    masked predecessors, which holds for the COVID-19 model's target groups
    (e.g. Ventilated is entered only from Hospitalized).
    """
    internal = np.zeros(summary.new.shape[0], dtype=np.int64)
    for code, (dsts, _probs, _dwells) in model.out_edges.items():
        if not mask[code]:
            continue
        for dst in dsts:
            if mask[dst]:
                internal += summary.new[:, dst]
    return internal


def peak_demand(summary: RegionSummary, model: DiseaseModel,
                target: Target) -> tuple[int, int]:
    """(day, value) of the peak of a census target (resource planning)."""
    series = target_series(summary, model, target)
    day = int(np.argmax(series))
    return day, int(series[day])
