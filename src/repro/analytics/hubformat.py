"""Forecast-hub submission format.

"Our group submits forecasts to a number of these efforts" (Section VIII:
the CDC / COVID-19 Forecast Hub style community efforts).  Hub submissions
are long-format CSV rows of point and quantile forecasts per target and
horizon.  This module renders a prediction ensemble into that format and
parses it back, so the prediction workflow's output is hub-ready.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: The COVID-19 Forecast Hub's standard quantile set (23 levels).
HUB_QUANTILES: tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45,
    0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.975,
    0.99,
)

HEADER = ["location", "target", "horizon_days", "type", "quantile", "value"]


@dataclass(frozen=True, slots=True)
class HubRow:
    """One submission row."""

    location: str
    target: str
    horizon_days: int
    type: str  #: "point" or "quantile"
    quantile: float | None
    value: float


def ensemble_to_hub_rows(
    ensemble: np.ndarray,
    *,
    location: str,
    target: str,
    forecast_start: int,
    horizons: tuple[int, ...] = (7, 14, 21, 28),
    quantiles: tuple[float, ...] = HUB_QUANTILES,
) -> list[HubRow]:
    """Render an ``(R, T)`` ensemble into hub rows.

    Args:
        ensemble: replicate series including history; column
            ``forecast_start + h`` is horizon ``h``.
        location: hub location code (we use the region postal code).
        target: target label ("cum case").
        forecast_start: column of the last observed day.
        horizons: forecast horizons in days.
        quantiles: quantile levels to emit.
    """
    ensemble = np.asarray(ensemble, dtype=np.float64)
    rows: list[HubRow] = []
    for h in horizons:
        col = forecast_start + h
        if col >= ensemble.shape[1]:
            raise ValueError(f"horizon {h} beyond the simulated window")
        values = ensemble[:, col]
        rows.append(HubRow(location, target, h, "point", None,
                           float(np.median(values))))
        qs = np.quantile(values, quantiles)
        for q, v in zip(quantiles, qs):
            rows.append(HubRow(location, target, h, "quantile", q,
                               float(v)))
    return rows


def write_hub_csv(rows: list[HubRow], path: str | Path | None = None) -> str:
    """Serialise rows to hub CSV; returns the text (and writes if asked)."""
    buf = io.StringIO()
    w = csv.writer(buf, lineterminator="\n")
    w.writerow(HEADER)
    for r in rows:
        w.writerow([
            r.location, r.target, r.horizon_days, r.type,
            "" if r.quantile is None else f"{r.quantile:g}",
            f"{r.value:.3f}",
        ])
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def read_hub_csv(text_or_path: str | Path) -> list[HubRow]:
    """Parse hub CSV text (or a file path) back into rows."""
    if isinstance(text_or_path, Path) or (
        isinstance(text_or_path, str) and "\n" not in text_or_path
        and Path(text_or_path).exists()
    ):
        text = Path(text_or_path).read_text()
    else:
        text = str(text_or_path)
    rows: list[HubRow] = []
    for rec in csv.DictReader(io.StringIO(text)):
        q = rec["quantile"]
        rows.append(HubRow(
            location=rec["location"],
            target=rec["target"],
            horizon_days=int(rec["horizon_days"]),
            type=rec["type"],
            quantile=float(q) if q else None,
            value=float(rec["value"]),
        ))
    return rows


def validate_hub_rows(rows: list[HubRow]) -> None:
    """Hub-side validation: quantile monotonicity and point sanity.

    Raises ``ValueError`` on violations (the hub rejects such files).
    """
    by_key: dict[tuple[str, str, int], list[HubRow]] = {}
    for r in rows:
        by_key.setdefault((r.location, r.target, r.horizon_days),
                          []).append(r)
    for key, group in by_key.items():
        quants = sorted(
            (r for r in group if r.type == "quantile"),
            key=lambda r: r.quantile)
        values = [r.value for r in quants]
        if any(b < a - 1e-9 for a, b in zip(values, values[1:])):
            raise ValueError(f"non-monotone quantiles for {key}")
        points = [r for r in group if r.type == "point"]
        if len(points) != 1:
            raise ValueError(f"expected exactly one point row for {key}")
        if quants and not (
            values[0] - 1e-9 <= points[0].value <= values[-1] + 1e-9
        ):
            raise ValueError(f"point outside quantile envelope for {key}")
