"""Ensemble statistics over replicate simulations (prediction workflow).

"The ensemble of the model configurations and the simulation output provides
uncertainty quantification on the predictions" (Section II).  Given per-
replicate time series this module produces median forecasts and uncertainty
bands — the blue curve and yellow 95% band of Figure 17.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class EnsembleBand:
    """Quantile summary of an ensemble of time series.

    Attributes:
        median: ``(T,)`` pointwise median.
        lower: ``(T,)`` lower quantile bound.
        upper: ``(T,)`` upper quantile bound.
        level: nominal coverage of [lower, upper] (0.95 for a 95% band).
    """

    median: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    level: float

    @property
    def n_days(self) -> int:
        """Length of the band."""
        return int(self.median.shape[0])

    def covers(self, observed: np.ndarray) -> np.ndarray:
        """Pointwise coverage mask of an observed series."""
        observed = np.asarray(observed)
        if observed.shape[0] != self.n_days:
            raise ValueError("observed series length mismatch")
        return (observed >= self.lower) & (observed <= self.upper)

    def empirical_coverage(self, observed: np.ndarray) -> float:
        """Fraction of observed points inside the band."""
        return float(self.covers(observed).mean())


def ensemble_band(
    series: np.ndarray, *, level: float = 0.95
) -> EnsembleBand:
    """Build a quantile band from an ``(R, T)`` stack of replicate series.

    Args:
        series: replicates x time matrix.
        level: central coverage of the band (default the paper's 95%).
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2 or series.shape[0] < 1:
        raise ValueError("series must be (replicates, time) with >= 1 row")
    if not 0.0 < level < 1.0:
        raise ValueError("level must be in (0, 1)")
    alpha = (1.0 - level) / 2.0
    return EnsembleBand(
        median=np.quantile(series, 0.5, axis=0),
        lower=np.quantile(series, alpha, axis=0),
        upper=np.quantile(series, 1.0 - alpha, axis=0),
        level=level,
    )


def pool_cells(cell_series: list[np.ndarray]) -> np.ndarray:
    """Pool replicate series from several cells into one ensemble matrix.

    Prediction workflows pool all replicates of all plausible configurations
    (cells) into a single ensemble; series must share a time axis.
    """
    if not cell_series:
        raise ValueError("no cells given")
    t = cell_series[0].shape[-1]
    rows = []
    for arr in cell_series:
        arr = np.atleast_2d(np.asarray(arr, dtype=np.float64))
        if arr.shape[-1] != t:
            raise ValueError("cells disagree on horizon")
        rows.append(arr)
    return np.vstack(rows)


def quantile_scores(
    series: np.ndarray, observed: np.ndarray, quantiles: np.ndarray
) -> float:
    """Mean pinball loss of an ensemble against observations.

    The score CDC-style forecast hubs use to rank submissions; lower is
    better.  Useful for comparing calibrated against uncalibrated ensembles.
    """
    series = np.asarray(series, dtype=np.float64)
    observed = np.asarray(observed, dtype=np.float64)
    qs = np.asarray(quantiles, dtype=np.float64)
    preds = np.quantile(series, qs, axis=0)  # (Q, T)
    diff = observed[None, :] - preds
    loss = np.where(diff >= 0, qs[:, None] * diff, (qs[:, None] - 1) * diff)
    return float(loss.mean())
