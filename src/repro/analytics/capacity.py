"""Hospital-capacity analytics: resource depletion assessment.

One of the four stated uses of the workflows is "guiding allocation of
scarce resources and assessing depletion of current resources" (Section I),
and case study 2 ingests "hospital bed and ventilator counts obtained from
individual hospitals, as well as from the 2018 American Hospital
Association (AHA) estimates."

We substitute AHA data with per-capita national rates (DESIGN.md rule):
about 2.4 staffed beds, 0.26 ICU beds and 0.10 ventilators per 1,000
residents.  Given a simulated census series, the module reports overflow
timing, magnitude and duration — the analyst-facing depletion products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..synthpop.regions import Region, get_region

#: Per-1,000-resident capacity rates (AHA-like national averages).
BEDS_PER_1000: float = 2.4
ICU_BEDS_PER_1000: float = 0.26
VENTILATORS_PER_1000: float = 0.10

#: Fraction of staffed beds realistically available to a surge (the rest
#: carry baseline non-COVID occupancy).
SURGE_AVAILABLE_FRACTION: float = 0.35


@dataclass(frozen=True, slots=True)
class RegionCapacity:
    """Care capacity of one region (absolute counts)."""

    region_code: str
    beds: int
    icu_beds: int
    ventilators: int

    @property
    def surge_beds(self) -> int:
        """Beds actually available to the epidemic surge."""
        return int(self.beds * SURGE_AVAILABLE_FRACTION)


def region_capacity(
    region: Region | str, *, scale: float = 1.0
) -> RegionCapacity:
    """AHA-substitute capacity for a region.

    ``scale`` shrinks counts to the simulation scale so census series from
    scaled runs compare against matching capacity.
    """
    if isinstance(region, str):
        region = get_region(region)
    pop = region.population * scale
    return RegionCapacity(
        region_code=region.code,
        beds=max(1, round(pop / 1000 * BEDS_PER_1000)),
        icu_beds=max(1, round(pop / 1000 * ICU_BEDS_PER_1000)),
        ventilators=max(1, round(pop / 1000 * VENTILATORS_PER_1000)),
    )


@dataclass(frozen=True, slots=True)
class OverflowReport:
    """Depletion assessment of one census series against one capacity.

    Attributes:
        resource: label ("beds", "ventilators").
        capacity: available units.
        peak_demand: maximum census.
        peak_day: tick of the maximum.
        first_overflow_day: first tick demand exceeds capacity (-1 never).
        overflow_days: ticks spent above capacity.
        excess_patient_days: sum of (demand - capacity) over overflow days.
    """

    resource: str
    capacity: int
    peak_demand: int
    peak_day: int
    first_overflow_day: int
    overflow_days: int
    excess_patient_days: int

    @property
    def overflows(self) -> bool:
        """Whether demand ever exceeds capacity."""
        return self.overflow_days > 0

    @property
    def peak_utilization(self) -> float:
        """Peak demand over capacity."""
        return self.peak_demand / self.capacity if self.capacity else np.inf


def assess_overflow(
    census: np.ndarray, capacity: int, *, resource: str
) -> OverflowReport:
    """Compare a census series against a capacity."""
    census = np.asarray(census)
    over = census > capacity
    first = int(np.argmax(over)) if over.any() else -1
    excess = np.maximum(census - capacity, 0)
    return OverflowReport(
        resource=resource,
        capacity=int(capacity),
        peak_demand=int(census.max()) if census.size else 0,
        peak_day=int(np.argmax(census)) if census.size else 0,
        first_overflow_day=first,
        overflow_days=int(over.sum()),
        excess_patient_days=int(excess.sum()),
    )


def capacity_report(
    hospital_census: np.ndarray,
    ventilator_census: np.ndarray,
    region: Region | str,
    *,
    scale: float = 1.0,
) -> dict[str, OverflowReport]:
    """Assess bed and ventilator depletion for one simulated region.

    Beds are compared against surge-available capacity; ventilators
    against the full inventory.
    """
    cap = region_capacity(region, scale=scale)
    return {
        "beds": assess_overflow(hospital_census, cap.surge_beds,
                                resource="beds"),
        "ventilators": assess_overflow(
            ventilator_census, cap.ventilators, resource="ventilators"),
    }
