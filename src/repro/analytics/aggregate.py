"""Aggregation of individual-level output to county / state summaries.

"From the individual-level output data, we can aggregate simulation results
to the county level for different health states, and use the summary data
for calibration and prediction" (Section III).  The summary layout follows
the paper's accounting: per day x health state, three counts — *new*
entries, *current* census, and *cumulative* entries — which is the
"365 days x 90 health states x 3 counts" of Figures 3-5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..epihiper.disease import DiseaseModel
from ..epihiper.engine import SimulationResult
from ..epihiper.output import TransitionLog
from ..params import BYTES_PER_SUMMARY_ENTRY
from ..synthpop.persons import Population

#: The three per-(day, state) counts of the paper's summary format.
COUNT_KINDS: tuple[str, ...] = ("new", "current", "cumulative")


@dataclass(frozen=True, slots=True)
class RegionSummary:
    """Aggregated output of one simulation replicate.

    Attributes:
        region_code: region simulated.
        n_days: ticks covered.
        new: ``(T, S)`` persons entering each state per day.
        current: ``(T, S)`` census per state per day.
        cumulative: ``(T, S)`` running total of ``new``.
    """

    region_code: str
    n_days: int
    new: np.ndarray
    current: np.ndarray
    cumulative: np.ndarray

    @property
    def n_states(self) -> int:
        """Number of health states covered."""
        return int(self.new.shape[1])

    @property
    def summary_bytes(self) -> int:
        """Paper-format size of this summary (entries x bytes/entry)."""
        return 3 * self.new.size * BYTES_PER_SUMMARY_ENTRY

    def series(self, kind: str, state_code: int) -> np.ndarray:
        """One (kind, state) time series; ``kind`` in COUNT_KINDS."""
        if kind not in COUNT_KINDS:
            raise KeyError(f"kind must be one of {COUNT_KINDS}")
        return getattr(self, kind if kind != "new" else "new")[:, state_code]


def summarize(result: SimulationResult, model: DiseaseModel) -> RegionSummary:
    """Aggregate a simulation result into the paper's summary format."""
    t_len = result.n_days + 1
    n_states = model.n_states
    new = np.zeros((t_len, n_states), dtype=np.int64)
    log = result.log
    if log.size:
        np.add.at(new, (log.tick, log.state.astype(np.int64)), 1)
    cumulative = np.cumsum(new, axis=0)
    return RegionSummary(
        region_code=result.region_code,
        n_days=result.n_days,
        new=new,
        current=result.state_counts.astype(np.int64),
        cumulative=cumulative,
    )


def county_daily_counts(
    log: TransitionLog,
    pop: Population,
    state_code: int,
    n_days: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Daily new entries into ``state_code`` per county.

    Returns:
        ``(county_fips, counts)`` where counts is ``(C, n_days + 1)``.
        This is the series compared against surveillance during calibration
        ("the time series of daily cumulative counts of symptomatic cases at
        the state or county level are compared to the ground truth").
    """
    fips = pop.county_codes
    index = {int(c): i for i, c in enumerate(fips)}
    counts = np.zeros((fips.size, n_days + 1), dtype=np.int64)
    rows = log.entering(state_code)
    if rows.size:
        persons = log.pid[rows]
        ticks = log.tick[rows]
        c_idx = np.asarray([index[int(c)] for c in pop.county[persons]])
        np.add.at(counts, (c_idx, ticks), 1)
    return fips, counts


def county_cumulative_counts(
    log: TransitionLog, pop: Population, state_code: int, n_days: int
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative variant of :func:`county_daily_counts`."""
    fips, daily = county_daily_counts(log, pop, state_code, n_days)
    return fips, np.cumsum(daily, axis=1)


def state_cumulative_curve(
    log: TransitionLog, state_code: int, n_days: int
) -> np.ndarray:
    """State-level cumulative entries into ``state_code`` per day."""
    daily = np.zeros(n_days + 1, dtype=np.int64)
    rows = log.entering(state_code)
    if rows.size:
        np.add.at(daily, log.tick[rows], 1)
    return np.cumsum(daily)


def conservation_check(summary: RegionSummary, population: int) -> bool:
    """Invariant: the census always sums to the population size."""
    return bool((summary.current.sum(axis=1) == population).all())
