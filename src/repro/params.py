"""Global constants and unit helpers shared across the reproduction.

The paper operates at national scale (about 300 million synthetic people and
7.9 billion contact edges).  This reproduction runs the same code paths at a
configurable *scale factor*: ``DEFAULT_SCALE`` of ``1e-4`` yields roughly
30,000 people and a proportionally sized network, which a laptop simulates in
seconds while preserving the relative per-state distribution of Figure 6.

All byte-size accounting (Tables I and II) is done at *paper scale* so the
reported volumes match the publication, independent of the simulated scale.
"""

from __future__ import annotations

# --- scale -----------------------------------------------------------------

#: Fraction of the real population synthesised per region by default.
DEFAULT_SCALE: float = 1e-4

#: Paper-scale totals used for accounting (Section I).
PAPER_TOTAL_NODES: int = 300_000_000
PAPER_TOTAL_EDGES: int = 7_900_000_000

# --- time ------------------------------------------------------------------

#: Temporal resolution of EpiHiper: one tick is one day (Section III).
TICKS_PER_DAY: int = 1

#: Default horizon used by the nightly workflows (Figures 3-5: 365 days).
DEFAULT_SIM_DAYS: int = 365

#: Length of the nightly remote-cluster window, 10pm-8am (Section I).
NIGHTLY_WINDOW_HOURS: float = 10.0

# --- experiment design (Table I) --------------------------------------------

N_REGIONS: int = 51  # 50 states + DC

#: Health-state count used in the summary-size accounting of Figures 3-5
#: ("365 days x 90 health states x 3 counts").
N_SUMMARY_HEALTH_STATES: int = 90
N_SUMMARY_COUNTS: int = 3

# --- bytes -----------------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

#: Bytes per record in EpiHiper's transition output
#: (tick, person id, exit state, contact id): Section III, "Output data".
BYTES_PER_TRANSITION: int = 16

#: Bytes per aggregated summary entry (day, state, count triple member).
BYTES_PER_SUMMARY_ENTRY: int = 2

# --- randomness -------------------------------------------------------------

#: Seed used by deterministic entry points when the caller supplies none.
DEFAULT_SEED: int = 20200325  # first day of uninterrupted weekly delivery


def fmt_bytes(n: float) -> str:
    """Render a byte count with the unit the paper would use (``2.5GB``)."""
    for unit, div in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if n >= div:
            return f"{n / div:.1f}{unit}"
    return f"{n:.0f}B"
