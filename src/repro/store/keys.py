"""Canonical, salted cache keys for simulation instances.

A key must satisfy two properties the nightly pipeline depends on:

- **Canonical** — two specs that provably produce the same result hash to
  the same key.  Parameter order is irrelevant, numeric types are
  normalised, and *speed-only* knobs (the transmission ``backend``, which
  is bit-identical across choices) and display labels are excluded.
- **Salted by code version** — results are only as reusable as the kernel
  that produced them.  The salt hashes the source of every result-affecting
  module (simulator, disease model, synthetic-population builder,
  surveillance generator, aggregation), so editing any of them silently
  invalidates the whole store instead of serving stale series.
"""

from __future__ import annotations

import hashlib
import importlib
import inspect
import os
from functools import lru_cache
from typing import Any, Mapping

#: Key namespace for memoized :class:`~repro.core.parallel.InstanceOutcome`
#: payloads.  Bump the version when the payload layout changes.
INSTANCE_NAMESPACE: str = "instance-outcome/v1"

#: Parameters that change how fast a result is computed but not the result
#: itself (all transmission backends are RNG-stream identical).
SPEED_ONLY_PARAMS: frozenset[str] = frozenset({"backend", "BACKEND"})

#: Modules whose source participates in the code-version salt: everything
#: between an :class:`InstanceSpec` and the confirmed series it produces.
SALT_MODULES: tuple[str, ...] = (
    "repro.analytics.aggregate",
    "repro.core.runner",
    "repro.epihiper.batch",
    "repro.epihiper.covid",
    "repro.epihiper.disease",
    "repro.epihiper.engine",
    "repro.epihiper.initialization",
    "repro.epihiper.interventions",
    "repro.epihiper.npi",
    "repro.epihiper.progression",
    "repro.epihiper.states",
    "repro.epihiper.transmission",
    "repro.surveillance.sources",
    "repro.surveillance.truth",
    "repro.synthpop.activities",
    "repro.synthpop.contacts",
    "repro.synthpop.ipf",
    "repro.synthpop.locations",
    "repro.synthpop.persons",
    "repro.synthpop.regions",
    "repro.synthpop.week",
)


def canonical_value(value: Any) -> str:
    """Normalise one parameter value to a typed, unambiguous token.

    Booleans, ints, floats and strings each get a distinct prefix so
    ``1``, ``1.0``, ``True`` and ``"1"`` cannot collide; floats go through
    ``repr`` which round-trips exactly.
    """
    if isinstance(value, bool):
        return f"b:{bool(value)}"
    if isinstance(value, int):
        return f"i:{int(value)}"
    if isinstance(value, float):
        # Coerce before repr: np.float64 subclasses float but reprs as
        # "np.float64(...)", which would give the same number two keys
        # (and break spec round-trips through the JSON ledger).
        return f"f:{float(value)!r}"
    if isinstance(value, str):
        return f"s:{str(value)}"
    if value is None:
        return "none"
    raise TypeError(
        f"unsupported parameter type for cache key: {type(value).__name__}")


def canonical_params(params: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    """Sorted (name, canonical value) pairs, speed-only knobs dropped."""
    return tuple(
        (name, canonical_value(params[name]))
        for name in sorted(params)
        if name not in SPEED_ONLY_PARAMS
    )


@lru_cache(maxsize=1)
def _source_salt() -> str:
    """SHA-256 over the source text of every result-affecting module."""
    digest = hashlib.sha256()
    for name in SALT_MODULES:
        module = importlib.import_module(name)
        digest.update(name.encode())
        digest.update(inspect.getsource(module).encode())
    return digest.hexdigest()


def code_version_salt() -> str:
    """The store salt: ``REPRO_STORE_SALT`` if set, else the source hash."""
    return os.environ.get("REPRO_STORE_SALT") or _source_salt()


def instance_key(
    spec,
    *,
    salt: str | None = None,
    namespace: str = INSTANCE_NAMESPACE,
) -> str:
    """Content key of one :class:`~repro.core.parallel.InstanceSpec`.

    The key covers everything that determines the simulation output —
    region, result-affecting parameters, horizon, scale, both seeds, and
    the code-version salt — and nothing that does not (``label``,
    ``backend``).

    Args:
        spec: the instance spec (any object with the ``InstanceSpec``
            fields; duck-typed so callers can key ad-hoc requests).
        salt: override the code-version salt (tests, forced invalidation).
        namespace: payload-layout namespace.

    Returns:
        A 64-character hex digest, usable as a filename.
    """
    if salt is None:
        salt = code_version_salt()
    parts = [
        f"ns={namespace}",
        f"salt={salt}",
        f"region={spec.region_code}",
        f"params={canonical_params(spec.params)}",
        f"n_days=i:{int(spec.n_days)}",
        f"scale=f:{float(spec.scale)!r}",
        f"seed=i:{int(spec.seed)}",
        f"asset_seed=i:{int(spec.asset_seed)}",
    ]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()
