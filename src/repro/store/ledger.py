"""Append-only JSONL run ledger: what happened, and what can be skipped.

The paper's pipeline ran nightly inside a fixed 10-hour window; a crash at
hour nine must not forfeit nine hours of completed replicates.  The ledger
is the crash-safe record that makes that recovery possible: every event is
one JSON line appended and flushed immediately, so the journal survives the
process dying mid-run (at worst the final line is truncated, and replay
skips unparseable lines).  Replaying a ledger yields the set of completed
instances, which the orchestrator subtracts from a re-run of the same
night and the memoizer can cross-check against the blob store.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, IO


class RunLedger:
    """An append-only event journal backed by one JSONL file.

    The file handle is opened lazily and every append is flushed, so a
    ledger object can be long-lived and still lose at most the event being
    written when the process dies.

    Args:
        path: the JSONL journal file.
        run_id: stamped on every event when given.
        faults: optional :class:`~repro.resilience.faults.FaultPlan`; a
            firing ``ledger.torn`` rule truncates that event's line
            mid-write — the record is lost exactly as a crash would lose
            it, and replay must skip it.  ``torn_events`` counts the
            injections.
    """

    def __init__(self, path: str | Path, *, run_id: str | None = None,
                 faults=None) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.faults = faults
        self.torn_events = 0
        self._event_seq: Counter = Counter()
        self._fh: IO[str] | None = None

    def append(self, event: str, **fields: Any) -> dict[str, Any]:
        """Record one event.  Returns the record written."""
        record: dict[str, Any] = {"event": event, "ts": time.time()}
        if self.run_id is not None:
            record["run_id"] = self.run_id
        record.update(fields)
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        line = json.dumps(record, sort_keys=True)
        if self.faults is not None:
            attempt = self._event_seq[event]
            self._event_seq[event] += 1
            if self.faults.fires("ledger.torn", event, attempt):
                # A torn write: half the line reaches disk, the record is
                # gone.  The newline keeps subsequent appends parseable,
                # mimicking a crash-then-restart journal.
                self.torn_events += 1
                self._fh.write(line[: max(1, len(line) // 2)] + "\n")
                self._fh.flush()
                return record
        self._fh.write(line + "\n")
        self._fh.flush()
        return record

    def work_shed(self, key: str, **fields: Any) -> dict[str, Any]:
        """One planned instance was shed by deadline-aware degradation."""
        return self.append("work_shed", key=key, **fields)

    # Typed conveniences: the event vocabulary the pipeline emits.

    def run_started(self, **fields: Any) -> dict[str, Any]:
        """A run (calibration batch, nightly cycle) began."""
        return self.append("run_started", **fields)

    def run_completed(self, **fields: Any) -> dict[str, Any]:
        """A run finished; carries batch-level counters."""
        return self.append("run_completed", **fields)

    def instance_started(self, key: str, **fields: Any) -> dict[str, Any]:
        """One instance was handed to an executor."""
        return self.append("instance_started", key=key, **fields)

    def instance_completed(self, key: str, **fields: Any) -> dict[str, Any]:
        """One instance finished and its result is durable."""
        return self.append("instance_completed", key=key, **fields)

    def instance_failed(self, key: str, error: str,
                        **fields: Any) -> dict[str, Any]:
        """One instance raised; the error is recorded, not swallowed."""
        return self.append("instance_failed", key=key, error=error, **fields)

    def cache_hit(self, key: str, **fields: Any) -> dict[str, Any]:
        """One instance was served from the store instead of executed."""
        return self.append("cache_hit", key=key, **fields)

    def close(self) -> None:
        """Close the underlying file (appends reopen it)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class LedgerReplay:
    """The parsed view of a ledger file."""

    events: tuple[dict[str, Any], ...]

    def count(self, event: str) -> int:
        """Occurrences of one event type."""
        return sum(1 for e in self.events if e["event"] == event)

    def counts(self) -> dict[str, int]:
        """Event-type histogram."""
        return dict(Counter(e["event"] for e in self.events))

    def completed(self, field: str = "key",
                  **match: Any) -> set[Any]:
        """Values of ``field`` across ``instance_completed`` events.

        Keyword filters restrict to events whose fields match (e.g.
        ``night="prediction:FFDT-DC:seed0"`` scopes resume to one night).
        """
        out = set()
        for e in self.events:
            if e["event"] != "instance_completed":
                continue
            if any(e.get(k) != v for k, v in match.items()):
                continue
            if field in e:
                out.add(e[field])
        return out

    def wall_seconds(self, event: str = "instance_completed") -> float:
        """Total recorded wall-clock over events carrying ``wall_s``."""
        return float(sum(e.get("wall_s", 0.0) for e in self.events
                         if e["event"] == event))

    def summary(self) -> str:
        """Human-readable replay digest."""
        parts = [f"{name}={n}" for name, n in sorted(self.counts().items())]
        return f"{len(self.events)} events: " + ", ".join(parts)


def replay_ledger(path: str | Path) -> LedgerReplay:
    """Parse a ledger file into a :class:`LedgerReplay`.

    A missing file replays as empty (a first run is a resume from
    nothing); unparseable lines — a torn final write — are skipped.
    """
    path = Path(path)
    if not path.exists():
        return LedgerReplay(events=())
    events: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "event" in record:
                events.append(record)
    return LedgerReplay(events=tuple(events))
