"""Content-addressed result store + resumable run ledger.

The paper's nightly pipeline re-executes heavily overlapping
<cell, region, replicate> sets night after night, and a failure inside the
10-hour window must not forfeit completed work (Sections II, IV).  This
subsystem is the reproduction's durability layer:

- :mod:`~repro.store.keys` — canonical, code-version-salted cache keys;
- :mod:`~repro.store.cas` — the content-addressed npz blob store;
- :mod:`~repro.store.ledger` — the append-only JSONL run journal;
- :mod:`~repro.store.memo` — cache-aware instance execution.
"""

from .cas import (
    LEASE_DONE,
    LEASE_TIMEOUT,
    LEASE_VACATED,
    CASStats,
    ContentStore,
    LeaseTable,
    StoreStats,
    default_store,
)
from .keys import (
    INSTANCE_NAMESPACE,
    SPEED_ONLY_PARAMS,
    canonical_params,
    canonical_value,
    code_version_salt,
    instance_key,
)
from .ledger import LedgerReplay, RunLedger, replay_ledger
from .memo import (
    outcome_from_payload,
    outcome_payload,
    run_instances_memoized,
    supervise_instances_memoized,
)

__all__ = [
    "CASStats",
    "ContentStore",
    "INSTANCE_NAMESPACE",
    "LEASE_DONE",
    "LEASE_TIMEOUT",
    "LEASE_VACATED",
    "LeaseTable",
    "LedgerReplay",
    "RunLedger",
    "SPEED_ONLY_PARAMS",
    "StoreStats",
    "canonical_params",
    "canonical_value",
    "code_version_salt",
    "default_store",
    "instance_key",
    "outcome_from_payload",
    "outcome_payload",
    "replay_ledger",
    "run_instances_memoized",
    "supervise_instances_memoized",
]
