"""Cache-aware instance execution: fan out only what the store lacks.

``run_instances_memoized`` is the drop-in replacement for
:func:`repro.core.parallel.run_instances` that gives iterative calibration
rounds and repeated nightly designs their near-free overlap: specs are
partitioned into store hits and misses, only the misses cross the process
pool, results are written back as content-addressed blobs, and the output
list is restored to input order.  Cached and executed results are
bit-identical because the payload stores the exact float64 series the
worker produced.

:func:`supervise_instances_memoized` is the same partition-execute-publish
cycle with quarantine semantics: misses run under the resilient fan-out,
specs that exhaust their retry budget come back as ``None`` positions plus
:class:`~repro.resilience.retry.QuarantineRecord` entries instead of
aborting the batch.  The scenario service broker
(:mod:`repro.service.broker`) is built on it.

Imports of :mod:`repro.core.parallel` are deferred into the functions —
``core.calibration_wf`` imports this module at its top level, so a
module-level import back into ``repro.core`` would be circular (mirroring
how ``core.parallel`` defers its own ``runner`` imports).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from ..obs.registry import MetricsRegistry, Stopwatch, global_registry
from ..resilience.retry import QuarantineRecord
from ..resilience.supervisor import QUARANTINE, RAISE, FanoutResult
from .cas import LEASE_DONE, LEASE_TIMEOUT, ContentStore, LeaseTable
from .keys import INSTANCE_NAMESPACE, instance_key
from .ledger import RunLedger

if TYPE_CHECKING:  # pragma: no cover - type-only import, see module doc
    from ..core.parallel import InstanceOutcome, InstanceSpec


def outcome_payload(outcome: "InstanceOutcome") -> dict[str, np.ndarray]:
    """The storable arrays of one outcome (spec fields live in the key)."""
    return {
        "confirmed": np.asarray(outcome.confirmed, dtype=np.float64),
        "attack_rate": np.asarray(outcome.attack_rate, dtype=np.float64),
        "transitions": np.asarray(outcome.transitions, dtype=np.int64),
    }


def outcome_from_payload(
    spec: "InstanceSpec", payload: dict[str, np.ndarray]
) -> "InstanceOutcome":
    """Rebuild an outcome for ``spec`` from a stored payload."""
    from ..core.parallel import InstanceOutcome

    return InstanceOutcome(
        spec=spec,
        confirmed=np.asarray(payload["confirmed"], dtype=np.float64),
        attack_rate=float(payload["attack_rate"]),
        transitions=int(payload["transitions"]),
    )


def _resolve_remote(
    spec: "InstanceSpec",
    key: str,
    *,
    store: ContentStore,
    leases: LeaseTable,
    ledger: RunLedger | None,
    registry: MetricsRegistry,
    retry,
    faults,
    timeout_s: float,
    checkpoint=None,
) -> tuple["InstanceOutcome | None", QuarantineRecord | None]:
    """Resolve a miss whose lease another process holds.

    The happy path is pure coalescing: wait for the remote executor's
    blob and serve it (bit-identical — the blob *is* the result).  If the
    lease vacates without a blob (the holder crashed or quarantined the
    spec), contend for the lease and execute locally.  Bounded attempts:
    the loop cannot live-lock even under adversarial lease churn.
    """
    from ..core.parallel import supervise_instances

    for _ in range(3):
        state = leases.wait(key, lambda: store.contains(key),
                            timeout_s=timeout_s)
        if state != LEASE_TIMEOUT:
            payload = store.get(key)
            if payload is not None:
                registry.inc("memo.remote_hits")
                if ledger is not None:
                    ledger.cache_hit(key, label=spec.label, remote=True)
                return outcome_from_payload(spec, payload), None
        if state == LEASE_TIMEOUT:
            break
        # LEASE_VACATED without a blob (or a corrupt blob read as a
        # miss): the remote executor failed — run it here.
        if not leases.acquire(key):
            continue  # somebody else got there first; wait again
        try:
            res = supervise_instances(
                [spec], parallel=False, registry=registry, retry=retry,
                faults=faults, ledger=ledger, on_failure=QUARANTINE,
                checkpoint=checkpoint)
            outcome = res.results[0]
            if outcome is None:
                return None, res.quarantined[0]
            store.put(key, outcome_payload(outcome),
                      family=INSTANCE_NAMESPACE)
            if checkpoint is not None and checkpoint.enabled:
                checkpoint.manager(metrics=registry).discard(key)
            if ledger is not None:
                from ..surrogate.corpus import spec_record

                ledger.instance_completed(key, label=outcome.spec.label,
                                          spec=spec_record(outcome.spec))
            return outcome, None
        finally:
            leases.release(key)
    return None, QuarantineRecord(
        key=spec.label or key[:12], item=spec,
        error=f"gave up waiting on remote lease for {key[:12]}",
        kind="lease", attempts=1)


def supervise_instances_memoized(
    specs: list["InstanceSpec"],
    *,
    store: ContentStore | None = None,
    ledger: RunLedger | None = None,
    salt: str | None = None,
    max_workers: int | None = None,
    parallel: bool = True,
    registry: MetricsRegistry | None = None,
    retry=None,
    faults=None,
    on_failure: str = QUARANTINE,
    leases: LeaseTable | None = None,
    lease_timeout_s: float = 300.0,
    checkpoint=None,
) -> FanoutResult:
    """Execute instances through the result store, under supervision.

    The cache-aware twin of
    :func:`~repro.core.parallel.supervise_instances`: specs are
    partitioned into store hits and misses, only the misses cross the
    process pool (retried and quarantined per the policy), completed
    results are written back as content-addressed blobs, and the batch
    always returns — ``results[i] is None`` marks a quarantined position
    and ``quarantined`` carries one record per affected input position.
    This is the execution primitive of the scenario service broker, which
    must map every request to a terminal state even when workers die.

    Args:
        specs: the instances (order of results matches the input).
        store: the content store; None falls back to plain execution.
        ledger: optional run journal; records a ``cache_hit`` per served
            instance, an ``instance_completed`` per executed one,
            ``instance_failed`` per quarantine, and run-level
            start/complete events with the batch counters.
        salt: cache-key salt override (defaults to the code-version salt).
        max_workers / parallel: forwarded to the supervised fan-out for
            the misses.
        registry: receives the batch's ``memo.*`` accounting, the
            supervisor's ``retry.*`` / ``faults.*`` counters, plus every
            worker's merged telemetry; defaults to the process
            :func:`~repro.obs.registry.global_registry`.
        retry: optional :class:`~repro.resilience.retry.RetryPolicy` for
            transient worker failures among the misses.
        faults: optional :class:`~repro.resilience.faults.FaultPlan`
            threaded to the workers (chaos testing); the store's own
            ``cas.corrupt`` site is configured on the store handle.
        on_failure: ``"quarantine"`` (default) or ``"raise"``.
        leases: optional :class:`~repro.store.cas.LeaseTable` making the
            execution of misses exclusive *across processes*: a miss whose
            lease another live process holds is not executed here — we
            wait for that process's blob instead (cross-process
            coalescing), falling back to local execution if the holder
            vanishes without publishing.
        lease_timeout_s: per-key bound on waiting for a remote executor.
        checkpoint: optional :class:`~repro.checkpoint.CheckpointPlan`
            forwarded to the fan-out; once a miss's terminal result blob
            is durable, its checkpoint chain is discarded (snapshots of
            a finished instance are pure disk overhead) and the
            reclaimed bytes counted under ``checkpoint.reclaimed_bytes``.

    Returns:
        A :class:`~repro.resilience.supervisor.FanoutResult` whose
        ``results`` are :class:`~repro.core.parallel.InstanceOutcome` (or
        None), in input order — bit-identical whether served or executed.
    """
    from ..core.parallel import supervise_instances

    reg = registry if registry is not None else global_registry()
    if not specs:
        return FanoutResult(results=[])
    watch = Stopwatch()
    if ledger is not None:
        ledger.run_started(n_instances=len(specs),
                           cached=store is not None)
    if store is None:
        res = supervise_instances(
            specs, parallel=parallel, max_workers=max_workers,
            registry=reg, retry=retry, faults=faults, ledger=ledger,
            on_failure=on_failure, checkpoint=checkpoint)
        reg.inc("memo.misses", len(specs))
        reg.observe("memo.batch_s", watch.elapsed())
        if ledger is not None:
            from ..surrogate.corpus import spec_record

            for o in res.completed():
                ledger.instance_completed(
                    instance_key(o.spec, salt=salt), label=o.spec.label,
                    spec=spec_record(o.spec))
            ledger.run_completed(hits=0, misses=len(specs),
                                 wall_s=watch.elapsed())
        return res

    keys = [instance_key(s, salt=salt) for s in specs]
    # One store lookup per unique key: duplicate specs in a batch are
    # executed once and fanned back out to every position.
    payload_of = {k: store.get(k) for k in dict.fromkeys(keys)}

    out: list["InstanceOutcome" | None] = [None] * len(specs)
    exec_of: dict[str, int] = {}
    n_hits = 0
    for i, (spec, key) in enumerate(zip(specs, keys)):
        payload = payload_of[key]
        if payload is not None:
            out[i] = outcome_from_payload(spec, payload)
            n_hits += 1
            if ledger is not None:
                ledger.cache_hit(key, label=spec.label)
        else:
            exec_of.setdefault(key, i)

    from ..surrogate.corpus import spec_record

    base_of: dict[str, "InstanceOutcome"] = {}
    # Cross-process exclusivity: a miss whose lease another live process
    # holds becomes a *remote* key — that process is computing it right
    # now, and waiting for its blob is strictly cheaper than re-running.
    remote_of: dict[str, int] = {}
    owned: list[str] = []
    if leases is not None:
        for key in list(exec_of):
            if not leases.acquire(key):
                remote_of[key] = exec_of.pop(key)
                continue
            # Double-check under the lease: another process may have
            # executed, published, *and released* between our store
            # lookup above and this acquire (on a busy host that window
            # is easily tens of milliseconds) — re-running would be
            # wasted work, not a correctness bug, but "executes once
            # fleet-wide" is the contract.
            payload = store.get(key)
            if payload is None:
                owned.append(key)
                continue
            leases.release(key)
            i = exec_of.pop(key)
            base_of[key] = outcome_from_payload(specs[i], payload)
            reg.inc("memo.remote_hits")
            if ledger is not None:
                ledger.cache_hit(key, label=specs[i].label, remote=True)

    exec_idx = sorted(exec_of.values())
    ck_manager = (checkpoint.manager(metrics=reg)
                  if checkpoint is not None and checkpoint.enabled
                  else None)
    # Quarantine records arrive sorted by position, so pairing them with
    # the None slots of the execution results is a simple in-order walk.
    failed_of: dict[str, object] = {}
    try:
        res = supervise_instances(
            [specs[i] for i in exec_idx], parallel=parallel,
            max_workers=max_workers, registry=reg, retry=retry,
            faults=faults, ledger=ledger, on_failure=on_failure,
            checkpoint=checkpoint)
        qiter = iter(res.quarantined)
        for i, outcome in zip(exec_idx, res.results):
            if outcome is None:
                failed_of[keys[i]] = next(qiter)
                continue
            store.put(keys[i], outcome_payload(outcome),
                      family=INSTANCE_NAMESPACE)
            base_of[keys[i]] = outcome
            if ck_manager is not None:
                # Terminal blob is durable: the checkpoint chain is now
                # dead weight — reclaim it.
                ck_manager.discard(keys[i])
            if ledger is not None:
                # Completion events carry the spec itself: the surrogate
                # corpus builder replays these to recover (features, output)
                # training pairs — CAS keys alone are not invertible.
                ledger.instance_completed(keys[i], label=outcome.spec.label,
                                          spec=spec_record(outcome.spec))
    finally:
        # Release *before* waiting on anyone else's keys: every process
        # finishes its own work first, so lease waits can never form a
        # cycle (A holding k1 while waiting on k2 held by B waiting on k1).
        for key in owned:
            leases.release(key)

    for key, i in sorted(remote_of.items(), key=lambda kv: kv[1]):
        outcome, rec = _resolve_remote(
            specs[i], key, store=store, leases=leases, ledger=ledger,
            registry=reg, retry=retry, faults=faults,
            timeout_s=lease_timeout_s, checkpoint=checkpoint)
        if outcome is not None:
            base_of[key] = outcome
        else:
            failed_of[key] = rec

    quarantined = []
    for i, (spec, key) in enumerate(zip(specs, keys)):
        if out[i] is not None:
            continue
        base = base_of.get(key)
        if base is not None:
            out[i] = base if base.spec is spec else replace(base, spec=spec)
        else:
            rec = failed_of[key]
            quarantined.append(rec if rec.item is spec
                               else replace(rec, item=spec))
    if quarantined and on_failure == RAISE:
        # Local failures already raised inside the fan-out; only a remote
        # executor's failure can reach here, and RAISE callers expect an
        # exception, not a None position.
        raise RuntimeError(
            f"remote execution failed: {quarantined[0].describe()}")
    # memo.* counts are per-batch deltas; the store's cumulative session
    # counters stay on store.metrics (merging them here would double-count
    # across batches sharing a sink).
    reg.inc("memo.hits", n_hits)
    reg.inc("memo.misses", len(exec_idx))
    reg.observe("memo.batch_s", watch.elapsed())
    if ledger is not None:
        extra = {"store_" + k: v
                 for k, v in store.stats.snapshot().items()}
        if quarantined:
            extra["quarantined"] = len(quarantined)
        if remote_of:
            extra["remote"] = len(remote_of)
        ledger.run_completed(hits=n_hits, misses=len(exec_idx),
                             wall_s=watch.elapsed(), **extra)
    return FanoutResult(results=out, quarantined=quarantined,
                        attempts=res.attempts, retries=res.retries,
                        pool_rebuilds=res.pool_rebuilds,
                        ticks_saved=res.ticks_saved)


def run_instances_memoized(
    specs: list["InstanceSpec"],
    *,
    store: ContentStore | None = None,
    ledger: RunLedger | None = None,
    salt: str | None = None,
    max_workers: int | None = None,
    parallel: bool = True,
    registry: MetricsRegistry | None = None,
    retry=None,
    faults=None,
    leases: LeaseTable | None = None,
    checkpoint=None,
) -> list["InstanceOutcome"]:
    """Execute instances through the result store.

    The historical all-or-nothing contract on top of
    :func:`supervise_instances_memoized`: every spec's outcome in input
    order, or the first unrecoverable exception (``on_failure="raise"``).
    Callers that need partial results plus a quarantine report — the
    scenario service broker, chaos runs — use the supervised variant
    directly.

    Args:
        specs: the instances (order of results matches the input).
        store: the content store; None falls back to plain execution.
        ledger: optional run journal; records a ``cache_hit`` per served
            instance, an ``instance_completed`` per executed one, and
            run-level start/complete events with the batch counters.
        salt: cache-key salt override (defaults to the code-version salt).
        max_workers / parallel: forwarded to
            :func:`~repro.core.parallel.run_instances` for the misses.
        registry: receives the batch's ``memo.*`` accounting plus every
            worker's merged telemetry; defaults to the process
            :func:`~repro.obs.registry.global_registry`.
        retry: optional :class:`~repro.resilience.retry.RetryPolicy` for
            transient worker failures among the misses.
        faults: optional :class:`~repro.resilience.faults.FaultPlan`
            threaded to the workers (chaos testing); the store's own
            ``cas.corrupt`` site is configured on the store handle.

    Returns:
        One :class:`~repro.core.parallel.InstanceOutcome` per spec, in
        input order — bit-identical whether served or executed.
    """
    res = supervise_instances_memoized(
        specs, store=store, ledger=ledger, salt=salt,
        max_workers=max_workers, parallel=parallel, registry=registry,
        retry=retry, faults=faults, on_failure=RAISE, leases=leases,
        checkpoint=checkpoint)
    return res.results  # type: ignore[return-value] — RAISE means no Nones
