"""Cache-aware instance execution: fan out only what the store lacks.

``run_instances_memoized`` is the drop-in replacement for
:func:`repro.core.parallel.run_instances` that gives iterative calibration
rounds and repeated nightly designs their near-free overlap: specs are
partitioned into store hits and misses, only the misses cross the process
pool, results are written back as content-addressed blobs, and the output
list is restored to input order.  Cached and executed results are
bit-identical because the payload stores the exact float64 series the
worker produced.

Imports of :mod:`repro.core.parallel` are deferred into the functions —
``core.calibration_wf`` imports this module at its top level, so a
module-level import back into ``repro.core`` would be circular (mirroring
how ``core.parallel`` defers its own ``runner`` imports).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from ..obs.registry import MetricsRegistry, Stopwatch, global_registry
from .cas import ContentStore
from .keys import instance_key
from .ledger import RunLedger

if TYPE_CHECKING:  # pragma: no cover - type-only import, see module doc
    from ..core.parallel import InstanceOutcome, InstanceSpec


def outcome_payload(outcome: "InstanceOutcome") -> dict[str, np.ndarray]:
    """The storable arrays of one outcome (spec fields live in the key)."""
    return {
        "confirmed": np.asarray(outcome.confirmed, dtype=np.float64),
        "attack_rate": np.asarray(outcome.attack_rate, dtype=np.float64),
        "transitions": np.asarray(outcome.transitions, dtype=np.int64),
    }


def outcome_from_payload(
    spec: "InstanceSpec", payload: dict[str, np.ndarray]
) -> "InstanceOutcome":
    """Rebuild an outcome for ``spec`` from a stored payload."""
    from ..core.parallel import InstanceOutcome

    return InstanceOutcome(
        spec=spec,
        confirmed=np.asarray(payload["confirmed"], dtype=np.float64),
        attack_rate=float(payload["attack_rate"]),
        transitions=int(payload["transitions"]),
    )


def run_instances_memoized(
    specs: list["InstanceSpec"],
    *,
    store: ContentStore | None = None,
    ledger: RunLedger | None = None,
    salt: str | None = None,
    max_workers: int | None = None,
    parallel: bool = True,
    registry: MetricsRegistry | None = None,
    retry=None,
    faults=None,
) -> list["InstanceOutcome"]:
    """Execute instances through the result store.

    Args:
        specs: the instances (order of results matches the input).
        store: the content store; None falls back to plain execution.
        ledger: optional run journal; records a ``cache_hit`` per served
            instance, an ``instance_completed`` per executed one, and
            run-level start/complete events with the batch counters.
        salt: cache-key salt override (defaults to the code-version salt).
        max_workers / parallel: forwarded to
            :func:`~repro.core.parallel.run_instances` for the misses.
        registry: receives the batch's ``memo.*`` accounting plus every
            worker's merged telemetry; defaults to the process
            :func:`~repro.obs.registry.global_registry`.
        retry: optional :class:`~repro.resilience.retry.RetryPolicy` for
            transient worker failures among the misses.
        faults: optional :class:`~repro.resilience.faults.FaultPlan`
            threaded to the workers (chaos testing); the store's own
            ``cas.corrupt`` site is configured on the store handle.

    Returns:
        One :class:`~repro.core.parallel.InstanceOutcome` per spec, in
        input order — bit-identical whether served or executed.
    """
    from ..core.parallel import run_instances

    reg = registry if registry is not None else global_registry()
    if not specs:
        return []
    watch = Stopwatch()
    if ledger is not None:
        ledger.run_started(n_instances=len(specs),
                           cached=store is not None)
    if store is None:
        outcomes = run_instances(specs, parallel=parallel,
                                 max_workers=max_workers, registry=reg,
                                 retry=retry, faults=faults)
        reg.inc("memo.misses", len(specs))
        reg.observe("memo.batch_s", watch.elapsed())
        if ledger is not None:
            for o in outcomes:
                ledger.instance_completed(
                    instance_key(o.spec, salt=salt), label=o.spec.label)
            ledger.run_completed(hits=0, misses=len(specs),
                                 wall_s=watch.elapsed())
        return outcomes

    keys = [instance_key(s, salt=salt) for s in specs]
    # One store lookup per unique key: duplicate specs in a batch are
    # executed once and fanned back out to every position.
    payload_of = {k: store.get(k) for k in dict.fromkeys(keys)}

    out: list["InstanceOutcome" | None] = [None] * len(specs)
    exec_of: dict[str, int] = {}
    n_hits = 0
    for i, (spec, key) in enumerate(zip(specs, keys)):
        payload = payload_of[key]
        if payload is not None:
            out[i] = outcome_from_payload(spec, payload)
            n_hits += 1
            if ledger is not None:
                ledger.cache_hit(key, label=spec.label)
        else:
            exec_of.setdefault(key, i)

    exec_idx = sorted(exec_of.values())
    executed = run_instances([specs[i] for i in exec_idx],
                             parallel=parallel, max_workers=max_workers,
                             registry=reg, retry=retry, faults=faults)
    base_of: dict[str, "InstanceOutcome"] = {}
    for i, outcome in zip(exec_idx, executed):
        store.put(keys[i], outcome_payload(outcome))
        base_of[keys[i]] = outcome
        if ledger is not None:
            ledger.instance_completed(keys[i], label=outcome.spec.label)
    for i, (spec, key) in enumerate(zip(specs, keys)):
        if out[i] is None:
            base = base_of[key]
            out[i] = base if base.spec is spec else replace(base, spec=spec)
    # memo.* counts are per-batch deltas; the store's cumulative session
    # counters stay on store.metrics (merging them here would double-count
    # across batches sharing a sink).
    reg.inc("memo.hits", n_hits)
    reg.inc("memo.misses", len(exec_idx))
    reg.observe("memo.batch_s", watch.elapsed())
    if ledger is not None:
        ledger.run_completed(hits=n_hits, misses=len(exec_idx),
                             wall_s=watch.elapsed(),
                             **{"store_" + k: v
                                for k, v in store.stats.snapshot().items()})
    return out  # type: ignore[return-value]
