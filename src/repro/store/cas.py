"""Content-addressed on-disk blob store for simulation results.

Blobs are compressed npz payloads stored under ``objects/<k[:2]>/<key>.npz``
(two-level fan-out keeps directories small at hundreds of thousands of
objects).  The store is safe against the failure modes a 30-week nightly
pipeline actually meets:

- **Torn writes** — payloads are written to a temp file in the same
  directory and published with an atomic ``os.replace``; readers never see
  a half-written blob, and concurrent writers of the same key are
  last-writer-wins with identical content.
- **Corrupt blobs** — an unreadable npz is treated as a miss and deleted,
  so one bad object costs one recomputation, not an operator intervention.
- **Disk growth** — an optional size bound is enforced by LRU eviction on
  access time (reads touch the blob's mtime), with eviction counted in the
  stats alongside hits and misses.
"""

from __future__ import annotations

import os
import tempfile
import warnings
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from ..obs.registry import MetricsRegistry

#: Default size bound (bytes) for the user-level default store.
DEFAULT_MAX_BYTES: int = 4 * 1024**3

#: The registry names one store handle publishes.
_STAT_NAMES = ("hits", "misses", "puts", "evictions")


class StoreStats:
    """Deprecated read-only view over a store's ``store.*`` metrics.

    The counters themselves live in the store's
    :class:`~repro.obs.registry.MetricsRegistry` under ``store.hits``,
    ``store.misses``, ``store.puts`` and ``store.evictions``; this class
    survives one release so code written against ``store.stats.hits``
    keeps reading the same numbers.  Constructing it directly (rather
    than reading it off :attr:`ContentStore.stats`) warns.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        if metrics is None:
            warnings.warn(
                "StoreStats is deprecated: store counters now live in the "
                "store's MetricsRegistry (store.metrics / repro.obs)",
                DeprecationWarning, stacklevel=2)
            metrics = MetricsRegistry()
        self._metrics = metrics

    @property
    def hits(self) -> int:
        return int(self._metrics.value("store.hits"))

    @property
    def misses(self) -> int:
        return int(self._metrics.value("store.misses"))

    @property
    def puts(self) -> int:
        return int(self._metrics.value("store.puts"))

    @property
    def evictions(self) -> int:
        return int(self._metrics.value("store.evictions"))

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (1.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 1.0

    def snapshot(self) -> dict[str, int]:
        """Counters as a plain dict (for ledger events and reports)."""
        return {name: int(self._metrics.value(f"store.{name}"))
                for name in _STAT_NAMES}


#: The issue-era name for the store counters; same deprecation shim.
CASStats = StoreStats


@dataclass
class ContentStore:
    """A content-addressed result store rooted at ``root``.

    Attributes:
        root: store directory (created on first use).
        max_bytes: size bound enforced after each put (None = unbounded).
        metrics: per-handle ``store.*`` counters (disk state is shared
            across handles, counters are not).
    """

    root: Path
    max_bytes: int | None = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._objects = self.root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        for name in _STAT_NAMES:
            self.metrics.counter(f"store.{name}")

    @property
    def stats(self) -> StoreStats:
        """Legacy read-only counter view (see :class:`StoreStats`)."""
        return StoreStats(self.metrics)

    def path_of(self, key: str) -> Path:
        """On-disk location of ``key`` (whether or not it exists)."""
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"not a hex content key: {key!r}")
        return self._objects / key[:2] / f"{key}.npz"

    def contains(self, key: str) -> bool:
        """Whether a blob for ``key`` is present (does not count as a hit)."""
        return self.path_of(key).exists()

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """Load a payload, or None on miss.  Hits refresh LRU recency."""
        path = self.path_of(key)
        try:
            with np.load(path) as npz:
                payload = {name: npz[name] for name in npz.files}
        except FileNotFoundError:
            self.metrics.inc("store.misses")
            return None
        except (OSError, ValueError, zipfile.BadZipFile, KeyError):
            # A torn or corrupt blob: drop it and recompute.
            path.unlink(missing_ok=True)
            self.metrics.inc("store.misses")
            return None
        os.utime(path, None)
        self.metrics.inc("store.hits")
        return payload

    def put(self, key: str, payload: Mapping[str, np.ndarray]) -> Path:
        """Atomically publish a payload under ``key``.

        An existing blob is left untouched (content-addressed: same key,
        same bytes), so concurrent writers race harmlessly.
        """
        path = self.path_of(key)
        if path.exists():
            return path
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **payload)
            os.replace(tmp_name, path)
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        self.metrics.inc("store.puts")
        if self.max_bytes is not None:
            self.gc(self.max_bytes)
        return path

    def keys(self) -> Iterator[str]:
        """All stored content keys."""
        for blob in self._objects.glob("??/*.npz"):
            yield blob.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def total_bytes(self) -> int:
        """Bytes consumed by stored blobs."""
        return sum(b.stat().st_size
                   for b in self._objects.glob("??/*.npz"))

    def gc(self, max_bytes: int | None = None) -> list[str]:
        """Evict least-recently-used blobs until under ``max_bytes``.

        Returns the evicted keys (oldest first).
        """
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None:
            raise ValueError("gc needs a size bound")
        blobs = []
        for blob in self._objects.glob("??/*.npz"):
            st = blob.stat()
            blobs.append((st.st_mtime, st.st_size, blob))
        total = sum(size for _, size, _ in blobs)
        evicted: list[str] = []
        for _mtime, size, blob in sorted(blobs):
            if total <= bound:
                break
            blob.unlink(missing_ok=True)
            total -= size
            evicted.append(blob.stem)
            self.metrics.inc("store.evictions")
        return evicted

    def clear(self) -> int:
        """Delete every blob.  Returns how many were removed."""
        removed = 0
        for blob in self._objects.glob("??/*.npz"):
            blob.unlink(missing_ok=True)
            removed += 1
        return removed

    def summary(self) -> str:
        """One-line disk + counter summary (the CLI ``store stats`` body)."""
        n = len(self)
        size = self.total_bytes()
        bound = "unbounded" if self.max_bytes is None else f"{self.max_bytes:,}"
        m = self.metrics
        return (f"{self.root}: {n} blobs, {size:,} bytes (bound {bound}); "
                f"session hits {int(m.value('store.hits'))} "
                f"misses {int(m.value('store.misses'))} "
                f"puts {int(m.value('store.puts'))} "
                f"evictions {int(m.value('store.evictions'))}")


def default_store() -> ContentStore:
    """The user-level store: ``REPRO_STORE_DIR`` or ``~/.cache/repro/store``.

    The size bound comes from ``REPRO_STORE_MAX_BYTES`` (default 4 GiB).
    """
    root = os.environ.get("REPRO_STORE_DIR")
    path = Path(root) if root else Path.home() / ".cache" / "repro" / "store"
    max_bytes = int(os.environ.get("REPRO_STORE_MAX_BYTES", DEFAULT_MAX_BYTES))
    return ContentStore(path, max_bytes=max_bytes)
