"""Content-addressed on-disk blob store for simulation results.

Blobs are compressed npz payloads stored under ``objects/<k[:2]>/<key>.npz``
(two-level fan-out keeps directories small at hundreds of thousands of
objects).  The store is safe against the failure modes a 30-week nightly
pipeline actually meets:

- **Torn writes** — payloads are written to a temp file in the same
  directory and published with an atomic ``os.replace``; readers never see
  a half-written blob, and concurrent writers of the same key are
  last-writer-wins with identical content.
- **Corrupt blobs** — every payload is published with an integrity digest
  (checksum on write) that is verified on read; an unreadable or
  digest-mismatched blob is quarantined under ``quarantine/`` and treated
  as a miss, so one bad object costs one recomputation (and leaves the
  evidence behind), not an operator intervention.
- **Disk growth** — an optional size bound is enforced by LRU eviction on
  access time (reads touch the blob's mtime), with eviction counted in the
  stats alongside hits and misses.
- **Concurrent executors** — a :class:`LeaseTable` on the store directory
  is the cross-process in-flight table: before executing a miss, a worker
  process acquires a per-key lease (atomic ``O_EXCL`` create), so two
  processes racing toward the same key run it once — the loser waits for
  the winner's blob instead of recomputing.  Leases are crash-tolerant:
  a lease whose owner pid is dead, whose TTL has lapsed, or whose record
  is torn mid-write is breakable by any contender.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import warnings
import zipfile
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Mapping

import numpy as np

from ..obs.registry import MetricsRegistry
from ..resilience.faults import FaultPlan

#: Default size bound (bytes) for the user-level default store.
DEFAULT_MAX_BYTES: int = 4 * 1024**3

#: The registry names one store handle publishes.
_STAT_NAMES = ("hits", "misses", "puts", "evictions", "corrupt")

#: Reserved payload entry carrying the integrity digest.
DIGEST_KEY = "__digest__"

#: Key family of in-flight simulation checkpoints (written by
#: :mod:`repro.checkpoint`); fresh members are exempt from LRU eviction.
CHECKPOINT_FAMILY = "checkpoint/v1"

#: How long a checkpoint blob stays gc-exempt after its last touch.
#: Matched to the :class:`LeaseTable` default TTL: while the executing
#: worker heartbeats (one checkpoint write per interval), its snapshots
#: stay younger than this and the LRU sweep cannot evict the very blobs
#: a crash recovery is about to need.
CHECKPOINT_EXEMPT_TTL_S = 120.0


def payload_digest(payload: Mapping[str, np.ndarray]) -> np.ndarray:
    """SHA-256 over a payload's names, dtypes, shapes and bytes.

    Computed over the decoded arrays (not the compressed file), so it
    catches exactly what the zip layer's CRC cannot: payloads that still
    decompress but no longer say what was written — a truncated array, a
    partially applied write, a tampered entry.
    """
    h = hashlib.sha256()
    for name in sorted(payload):
        if name == DIGEST_KEY:
            continue
        arr = np.ascontiguousarray(payload[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return np.frombuffer(h.digest(), dtype=np.uint8).copy()


class StoreStats:
    """Deprecated read-only view over a store's ``store.*`` metrics.

    The counters themselves live in the store's
    :class:`~repro.obs.registry.MetricsRegistry` under ``store.hits``,
    ``store.misses``, ``store.puts`` and ``store.evictions``; this class
    survives one release so code written against ``store.stats.hits``
    keeps reading the same numbers.  Constructing it directly (rather
    than reading it off :attr:`ContentStore.stats`) warns.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        if metrics is None:
            warnings.warn(
                "StoreStats is deprecated: store counters now live in the "
                "store's MetricsRegistry (store.metrics / repro.obs)",
                DeprecationWarning, stacklevel=2)
            metrics = MetricsRegistry()
        self._metrics = metrics

    @property
    def hits(self) -> int:
        return int(self._metrics.value("store.hits"))

    @property
    def misses(self) -> int:
        return int(self._metrics.value("store.misses"))

    @property
    def puts(self) -> int:
        return int(self._metrics.value("store.puts"))

    @property
    def evictions(self) -> int:
        return int(self._metrics.value("store.evictions"))

    @property
    def corrupt(self) -> int:
        return int(self._metrics.value("store.corrupt"))

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (1.0 when nothing was looked up)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 1.0

    def snapshot(self) -> dict[str, int]:
        """Counters as a plain dict (for ledger events and reports)."""
        return {name: int(self._metrics.value(f"store.{name}"))
                for name in _STAT_NAMES}


#: The issue-era name for the store counters; same deprecation shim.
CASStats = StoreStats


@dataclass
class ContentStore:
    """A content-addressed result store rooted at ``root``.

    Attributes:
        root: store directory (created on first use).
        max_bytes: size bound enforced after each put (None = unbounded).
        metrics: per-handle ``store.*`` counters (disk state is shared
            across handles, counters are not).
        faults: optional fault plan; a firing ``cas.corrupt`` rule makes
            :meth:`put` publish a blob whose digest does not match, so the
            read-side integrity path is exercisable on real runs.
    """

    root: Path
    max_bytes: int | None = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._objects = self.root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._put_seq: Counter = Counter()
        for name in _STAT_NAMES:
            self.metrics.counter(f"store.{name}")

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt blobs are moved for post-mortem inspection."""
        return self.root / "quarantine"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt blob out of the object tree (best effort)."""
        self.metrics.inc("store.corrupt")
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            path.unlink(missing_ok=True)

    def quarantined_keys(self) -> list[str]:
        """Content keys currently held in quarantine (sorted)."""
        return sorted(b.stem for b in self.quarantine_dir.glob("*.npz"))

    @property
    def stats(self) -> StoreStats:
        """Legacy read-only counter view (see :class:`StoreStats`)."""
        return StoreStats(self.metrics)

    def path_of(self, key: str) -> Path:
        """On-disk location of ``key`` (whether or not it exists)."""
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise ValueError(f"not a hex content key: {key!r}")
        return self._objects / key[:2] / f"{key}.npz"

    def contains(self, key: str) -> bool:
        """Whether a blob for ``key`` is present (does not count as a hit)."""
        return self.path_of(key).exists()

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """Load and verify a payload, or None on miss.

        Integrity is checked against the digest embedded at
        :meth:`put` time; an unreadable blob or a digest mismatch is
        quarantined and reads as a miss, so corruption costs one
        recomputation instead of propagating bad arrays downstream.
        Hits refresh LRU recency.
        """
        path = self.path_of(key)
        try:
            with np.load(path) as npz:
                payload = {name: npz[name] for name in npz.files}
        except FileNotFoundError:
            self.metrics.inc("store.misses")
            return None
        except (OSError, ValueError, zipfile.BadZipFile, KeyError):
            # A torn or unreadable blob: quarantine it and recompute.
            self._quarantine(path)
            self.metrics.inc("store.misses")
            return None
        digest = payload.pop(DIGEST_KEY, None)
        if digest is not None and not np.array_equal(
                np.asarray(digest), payload_digest(payload)):
            # Decompressed fine but does not say what was written.
            self._quarantine(path)
            self.metrics.inc("store.misses")
            return None
        os.utime(path, None)
        self.metrics.inc("store.hits")
        return payload

    def put(self, key: str, payload: Mapping[str, np.ndarray], *,
            family: str | None = None) -> Path:
        """Atomically publish a payload under ``key``, digest included.

        An existing blob is left untouched (content-addressed: same key,
        same bytes), so concurrent writers race harmlessly.  The payload
        is stored alongside its :func:`payload_digest` so :meth:`get` can
        verify integrity; a firing ``cas.corrupt`` fault inverts the
        stored digest, planting a corruption the read path must catch.

        Args:
            key: hex content key.
            payload: named arrays to store.
            family: optional key-family label (e.g. the key namespace the
                producer salted into the hash); recorded in the store's
                family index so ``repro store stats`` can break the blob
                population down by producer.
        """
        path = self.path_of(key)
        if path.exists():
            if family is not None and key not in self._family_index():
                self._append_family(key, family)
            return path
        digest = payload_digest(payload)
        if self.faults is not None:
            # Re-puts of a quarantined key advance the rule's attempt
            # count, so a times-bounded corruption heals on rewrite.
            attempt = self._put_seq[key]
            self._put_seq[key] += 1
            if self.faults.fires("cas.corrupt", key, attempt):
                digest = np.bitwise_xor(digest, np.uint8(0xFF))
                self.metrics.inc("faults.cas.corrupt")
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **dict(payload),
                                    **{DIGEST_KEY: digest})
            os.replace(tmp_name, path)
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        self.metrics.inc("store.puts")
        if family is not None:
            self._append_family(key, family)
        if self.max_bytes is not None:
            self.gc(self.max_bytes)
        return path

    # -- key families ----------------------------------------------------------

    @property
    def family_path(self) -> Path:
        """The append-only ``{key, family}`` JSONL index."""
        return self.root / "families.jsonl"

    def _append_family(self, key: str, family: str) -> None:
        """Record one key→family assignment (append-only, last wins)."""
        with self.family_path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps({"key": key, "family": family}) + "\n")

    def _family_index(self) -> dict[str, str]:
        """Current key→family map (torn trailing lines tolerated)."""
        index: dict[str, str] = {}
        try:
            lines = self.family_path.read_text(encoding="utf-8").splitlines()
        except FileNotFoundError:
            return index
        for line in lines:
            try:
                rec = json.loads(line)
                index[rec["key"]] = rec["family"]
            except (json.JSONDecodeError, KeyError, TypeError):
                continue
        return index

    def family_counts(self) -> dict[str, int]:
        """Live blob counts per key family (sorted by family name).

        Only blobs still on disk are counted — evicted or cleared keys
        drop out even though the index line remains.  Blobs written
        without a family label are grouped under ``"(unlabelled)"``.
        """
        index = self._family_index()
        counts: Counter = Counter()
        for key in self.keys():
            counts[index.get(key, "(unlabelled)")] += 1
        return dict(sorted(counts.items()))

    def keys(self) -> Iterator[str]:
        """All stored content keys."""
        for blob in self._objects.glob("??/*.npz"):
            yield blob.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def total_bytes(self) -> int:
        """Bytes consumed by stored blobs."""
        return sum(b.stat().st_size
                   for b in self._objects.glob("??/*.npz"))

    def gc(self, max_bytes: int | None = None) -> list[str]:
        """Evict least-recently-used blobs until under ``max_bytes``.

        Returns the evicted keys (oldest first).
        """
        bound = self.max_bytes if max_bytes is None else max_bytes
        if bound is None:
            raise ValueError("gc needs a size bound")
        index = self._family_index()
        now = time.time()
        blobs = []
        exempt_bytes = 0
        for blob in self._objects.glob("??/*.npz"):
            st = blob.stat()
            # In-flight checkpoints are not eviction fodder: losing one
            # turns a cheap resume into a tick-0 re-execution.  They still
            # count toward the bound (disk is disk); once the instance
            # finishes they are discarded outright, and once abandoned
            # (older than the lease TTL) they rejoin the LRU order.
            if (index.get(blob.stem) == CHECKPOINT_FAMILY
                    and now - st.st_mtime <= CHECKPOINT_EXEMPT_TTL_S):
                exempt_bytes += st.st_size
                continue
            blobs.append((st.st_mtime, st.st_size, blob))
        total = exempt_bytes + sum(size for _, size, _ in blobs)
        evicted: list[str] = []
        for _mtime, size, blob in sorted(blobs):
            if total <= bound:
                break
            blob.unlink(missing_ok=True)
            total -= size
            evicted.append(blob.stem)
            self.metrics.inc("store.evictions")
        return evicted

    def clear(self) -> int:
        """Delete every blob.  Returns how many were removed."""
        removed = 0
        for blob in self._objects.glob("??/*.npz"):
            blob.unlink(missing_ok=True)
            removed += 1
        return removed

    def summary(self) -> str:
        """One-line disk + counter summary (the CLI ``store stats`` body)."""
        n = len(self)
        size = self.total_bytes()
        bound = "unbounded" if self.max_bytes is None else f"{self.max_bytes:,}"
        m = self.metrics
        return (f"{self.root}: {n} blobs, {size:,} bytes (bound {bound}); "
                f"session hits {int(m.value('store.hits'))} "
                f"misses {int(m.value('store.misses'))} "
                f"puts {int(m.value('store.puts'))} "
                f"evictions {int(m.value('store.evictions'))} "
                f"corrupt {int(m.value('store.corrupt'))}")


#: Outcomes of :meth:`LeaseTable.wait`.
LEASE_DONE = "done"  #: the awaited artefact appeared
LEASE_VACATED = "vacated"  #: the holder released (or was broken) first
LEASE_TIMEOUT = "timeout"  #: neither happened within the deadline


@dataclass
class LeaseTable:
    """Cross-process in-flight execution table on a shared directory.

    One lease file per content key under ``root``; holding the lease means
    "I am computing this key right now".  Acquisition is an atomic
    ``O_CREAT | O_EXCL`` create, so exactly one process wins a race.  The
    table is the service plane's cross-shard coalescing primitive: shard
    workers (and any memoized fan-out pointed at the same store) acquire
    before executing a miss, and contenders that lose the race wait for
    the winner's blob instead of duplicating work.

    Liveness never depends on the holder behaving: a lease is *stale* —
    and breakable by anyone — when its owner pid is dead (same-host
    check), its TTL has lapsed, or its record is torn/unparseable (the
    crash-mid-write case, handled exactly like a torn ledger line).

    Attributes:
        root: the lease directory (shared across processes).
        owner: identity stamped into acquired leases (diagnostics).
        ttl_s: staleness bound on lease age.
        poll_s: sleep between :meth:`wait` checks.
        metrics: ``lease.*`` counters (acquired/busy/broken/waits).
    """

    root: Path
    owner: str = ""
    ttl_s: float = 120.0
    poll_s: float = 0.01
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        if not self.owner:
            self.owner = f"pid:{os.getpid()}"

    def path_of(self, key: str) -> Path:
        """On-disk lease file for ``key``."""
        return self.root / f"{key}.lease"

    # -- acquisition -----------------------------------------------------------

    def acquire(self, key: str) -> bool:
        """Try to take the lease for ``key``; True when this process owns it.

        A held-but-stale lease is broken and re-contended (bounded
        retries, so two breakers racing cannot loop forever).  The
        record is published atomically — written in full to a private
        temp file, then hard-linked into place — so a contender never
        observes a half-written lease (which would read as torn, i.e.
        stale, and let two contenders win the same race).
        """
        record = json.dumps({"owner": self.owner, "pid": os.getpid(),
                             "ts": time.time()})
        path = self.path_of(key)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(record)
                fh.flush()
            for _ in range(8):
                try:
                    os.link(tmp, path)  # atomic: fails if the lease exists
                except FileExistsError:
                    holder = self.holder(key)
                    if holder is None:
                        continue  # released between exists and read: re-race
                    if self._stale(holder):
                        self._break(key)
                        continue
                    self.metrics.inc("lease.busy")
                    return False
                self.metrics.inc("lease.acquired")
                return True
            self.metrics.inc("lease.busy")
            return False
        finally:
            os.unlink(tmp)

    def renew(self, key: str) -> bool:
        """Heartbeat: re-stamp the lease's timestamp, keeping its holder.

        Called from the process actually executing the key (a pool worker
        writing a checkpoint), which is generally *not* the lease owner
        (the broker's memoized fan-out acquired it) — so unlike
        :meth:`release` this deliberately rewrites another owner's record,
        preserving its ``owner``/``pid`` fields.  A slow-but-alive
        instance thereby outlives the TTL stale-break, while a holder
        whose pid is dead stays breakable regardless of freshness (the
        pid liveness check runs whenever the TTL has not lapsed).
        """
        path = self.path_of(key)
        holder = self.holder(key)
        if not holder:
            return False  # free or torn: nothing worth re-stamping
        record = json.dumps({**holder, "ts": time.time()})
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(record)
            os.replace(tmp, path)
        except OSError:
            Path(tmp).unlink(missing_ok=True)
            return False
        self.metrics.inc("lease.renewed")
        return True

    def release(self, key: str) -> bool:
        """Drop the lease if this table's owner holds it (lock hygiene:
        never unlink another process's live lease)."""
        holder = self.holder(key)
        if holder is None or holder.get("owner") != self.owner:
            return False
        self.path_of(key).unlink(missing_ok=True)
        return True

    def _break(self, key: str) -> None:
        """Remove a stale lease (best effort; breakers may race)."""
        self.metrics.inc("lease.broken")
        self.path_of(key).unlink(missing_ok=True)

    # -- inspection ------------------------------------------------------------

    def holder(self, key: str) -> dict | None:
        """The lease record, ``{}`` when torn/unparseable, None when free."""
        try:
            text = self.path_of(key).read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return {}
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            return {}  # torn mid-write: breakable, like a torn ledger line
        return record if isinstance(record, dict) else {}

    def held(self, key: str) -> bool:
        """Whether a live (non-stale) lease exists for ``key``."""
        holder = self.holder(key)
        return holder is not None and not self._stale(holder)

    def _stale(self, record: dict) -> bool:
        """A lease nobody should keep waiting on."""
        pid = record.get("pid")
        ts = record.get("ts")
        if not isinstance(pid, int) or not isinstance(ts, (int, float)):
            return True  # torn or malformed record
        if time.time() - ts > self.ttl_s:
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True  # owner died without releasing
        except PermissionError:  # pragma: no cover - other-uid process
            pass
        return False

    # -- waiting ---------------------------------------------------------------

    def wait(self, key: str, done: Callable[[], bool], *,
             timeout_s: float | None = None) -> str:
        """Block until ``done()`` or the lease vacates; returns the outcome.

        ``LEASE_DONE`` when the predicate turned true (the usual case: the
        holder published its blob), ``LEASE_VACATED`` when the lease was
        released or broken without the predicate turning true (the holder
        failed — the caller should contend for the lease itself), or
        ``LEASE_TIMEOUT``.
        """
        watch_t0 = time.time()
        self.metrics.inc("lease.waits")
        while True:
            if done():
                self.metrics.observe("lease.wait_s", time.time() - watch_t0)
                return LEASE_DONE
            holder = self.holder(key)
            if holder is None:
                self.metrics.observe("lease.wait_s", time.time() - watch_t0)
                return LEASE_VACATED
            if self._stale(holder):
                self._break(key)
                self.metrics.observe("lease.wait_s", time.time() - watch_t0)
                return LEASE_VACATED
            if timeout_s is not None and time.time() - watch_t0 > timeout_s:
                self.metrics.observe("lease.wait_s", time.time() - watch_t0)
                return LEASE_TIMEOUT
            time.sleep(self.poll_s)


def default_store() -> ContentStore:
    """The user-level store: ``REPRO_STORE_DIR`` or ``~/.cache/repro/store``.

    The size bound comes from ``REPRO_STORE_MAX_BYTES`` (default 4 GiB).
    """
    root = os.environ.get("REPRO_STORE_DIR")
    path = Path(root) if root else Path.home() / ".cache" / "repro" / "store"
    max_bytes = int(os.environ.get("REPRO_STORE_MAX_BYTES", DEFAULT_MAX_BYTES))
    return ContentStore(path, max_bytes=max_bytes)
