"""Medical-cost model for the economic workflow (Case study 1, ref [9]).

"The medical costs include costs incurred by COVID-19 patients for medical
attention, hospitalization, ventilator support, etc.  For each patient, the
total costs depend on the disease severity."

Costs are charged per event (a medical attendance) and per occupied day
(hospital beds, ventilators); unit costs follow published US COVID-19 cost
estimates of the period.  Simulation-scale counts are grossed up by the
inverse scale so reported totals are paper-scale dollars.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analytics.aggregate import RegionSummary
from ..analytics.targets import (
    DAILY_CASES,
    HOSPITAL_CENSUS,
    HOSPITALIZATIONS,
    Target,
    VENTILATOR_CENSUS,
    target_series,
)
from ..epihiper.disease import DiseaseModel

#: A medical-attendance target (every attended case incurs outpatient cost).
_ATTENDANCE = Target("attended", "is_symptomatic")


@dataclass(frozen=True, slots=True)
class CostParameters:
    """Unit medical costs (2020 US dollars).

    Attributes:
        outpatient_visit: per medically attended case.
        hospital_day: per inpatient bed-day (non-ICU average).
        ventilator_day: ICU increment per ventilated day.
        hospital_admission: fixed admission cost.
    """

    outpatient_visit: float = 330.0
    hospital_day: float = 2_500.0
    ventilator_day: float = 4_000.0
    hospital_admission: float = 3_000.0


@dataclass(frozen=True, slots=True)
class MedicalCosts:
    """Cost breakdown of one scenario, in paper-scale dollars."""

    outpatient: float
    hospital: float
    ventilator: float
    admissions: float

    @property
    def total(self) -> float:
        """Total medical cost."""
        return (self.outpatient + self.hospital
                + self.ventilator + self.admissions)


def compute_medical_costs(
    summary: RegionSummary,
    model: DiseaseModel,
    *,
    scale: float,
    params: CostParameters | None = None,
) -> MedicalCosts:
    """Cost a simulated scenario.

    Args:
        summary: aggregated simulation output.
        model: the disease model (state flags).
        scale: the simulation scale; counts are multiplied by ``1 / scale``
            to report paper-scale totals.
        params: unit costs.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    p = params or CostParameters()
    gross = 1.0 / scale

    attended = float(target_series(summary, model, DAILY_CASES).sum())
    bed_days = float(target_series(summary, model, HOSPITAL_CENSUS).sum())
    vent_days = float(target_series(summary, model, VENTILATOR_CENSUS).sum())
    admissions = float(target_series(summary, model, HOSPITALIZATIONS).sum())

    return MedicalCosts(
        outpatient=attended * p.outpatient_visit * gross,
        hospital=bed_days * p.hospital_day * gross,
        ventilator=vent_days * p.ventilator_day * gross,
        admissions=admissions * p.hospital_admission * gross,
    )


def cost_per_capita(costs: MedicalCosts, population: float) -> float:
    """Total cost per (paper-scale) resident."""
    if population <= 0:
        raise ValueError("population must be positive")
    return costs.total / population
