"""Medical-cost analytics (Case study 1)."""

from .costs import (
    CostParameters,
    MedicalCosts,
    compute_medical_costs,
    cost_per_capita,
)

__all__ = [
    "CostParameters",
    "MedicalCosts",
    "compute_medical_costs",
    "cost_per_capita",
]
