"""The five Case-study-2 scenarios (Appendix F).

"We model five different scenarios.  One is the worst-case scenario, where
limited social distancing is observed.  The remaining four assume a start
date of March 15, 2020 for intense social distancing, and are further
differentiated by the proposed end date for intense social distancing
(April 30, 2020 and June 10, 2020) and reduced transmissibility rates
(25% and 50%)."

Dates are expressed as day offsets from the surveillance epoch
(January 21, 2020): March 15 = day 54, April 30 = day 100,
June 10 = day 141.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: Day offsets from the 2020-01-21 epoch.
MARCH_15: int = 54
APRIL_30: int = 100
JUNE_10: int = 141


@dataclass(frozen=True, slots=True)
class Scenario:
    """One social-distancing scenario.

    Attributes:
        name: scenario label.
        start: distancing start day (None = no distancing).
        end: distancing end day.
        reduction: fractional transmissibility reduction while active.
    """

    name: str
    start: int | None
    end: int | None
    reduction: float

    def beta_modifier(self) -> Callable[[int], float]:
        """Time-varying beta multiplier implementing the scenario."""
        if self.start is None:
            return lambda t: 1.0
        start, end, factor = self.start, self.end, 1.0 - self.reduction

        def modifier(t: int) -> float:
            if t < start:
                return 1.0
            if end is not None and t >= end:
                return 1.0
            return factor

        return modifier


#: The paper's five scenarios.
WORST_CASE = Scenario("worst-case", None, None, 0.0)
DISTANCE_APR30_25 = Scenario("distancing-to-Apr30-25pct",
                             MARCH_15, APRIL_30, 0.25)
DISTANCE_APR30_50 = Scenario("distancing-to-Apr30-50pct",
                             MARCH_15, APRIL_30, 0.50)
DISTANCE_JUN10_25 = Scenario("distancing-to-Jun10-25pct",
                             MARCH_15, JUNE_10, 0.25)
DISTANCE_JUN10_50 = Scenario("distancing-to-Jun10-50pct",
                             MARCH_15, JUNE_10, 0.50)

ALL_SCENARIOS: tuple[Scenario, ...] = (
    WORST_CASE,
    DISTANCE_APR30_25,
    DISTANCE_APR30_50,
    DISTANCE_JUN10_25,
    DISTANCE_JUN10_50,
)
