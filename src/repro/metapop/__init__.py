"""County-level metapopulation SEIR modelling (Case study 2)."""

from .calibration import (
    MetapopCalibration,
    calibrate_metapop,
    county_log_likelihood,
)
from .scenarios import (
    ALL_SCENARIOS,
    DISTANCE_APR30_25,
    DISTANCE_APR30_50,
    DISTANCE_JUN10_25,
    DISTANCE_JUN10_50,
    WORST_CASE,
    Scenario,
)
from .seir import (
    MetapopModel,
    MetapopResult,
    SEIRParams,
    gravity_coupling,
)

__all__ = [
    "ALL_SCENARIOS",
    "DISTANCE_APR30_25",
    "DISTANCE_APR30_50",
    "DISTANCE_JUN10_25",
    "DISTANCE_JUN10_50",
    "MetapopCalibration",
    "MetapopModel",
    "MetapopResult",
    "SEIRParams",
    "Scenario",
    "WORST_CASE",
    "calibrate_metapop",
    "county_log_likelihood",
    "gravity_coupling",
]
