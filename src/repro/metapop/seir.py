"""County-level metapopulation SEIR model (Case study 2, Appendix F).

"Our model represents SEIR disease dynamics across counties", with disease
dynamics "modified to reflect the transmissivity of asymptomatic and
pre-symptomatic COVID-19 patients".  Counties are coupled by a
gravity-style mixing matrix (a stand-in for commute flows); transmission
within county i follows a frequency-dependent force of infection::

    lambda_i = beta(t) * sum_j C_ij * I_j / N_j

The model runs deterministically (for use inside the MCMC calibration loop
— "calibration is carried out by directly simulating from the model in the
MCMC loop") or stochastically with binomial transitions (for projection
ensembles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..params import DEFAULT_SEED
from ..synthpop.regions import Region, get_region

#: Fraction of a county's contacts made with other counties.
DEFAULT_MIXING: float = 0.08


@dataclass(frozen=True, slots=True)
class SEIRParams:
    """Disease parameters of the metapopulation model.

    Attributes:
        beta: transmission rate per day.
        incubation_days: mean latent period (1 / sigma).
        infectious_days: mean infectious period (1 / gamma).
        ascertainment: fraction of new infections observed as confirmed
            cases (links model incidence to surveillance counts).
        report_delay: mean reporting delay in days.
    """

    beta: float
    incubation_days: float = 5.0
    infectious_days: float = 6.0
    ascertainment: float = 0.25
    report_delay: int = 7

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.incubation_days <= 0 or self.infectious_days <= 0:
            raise ValueError("periods must be positive")

    @property
    def r0(self) -> float:
        """Basic reproduction number beta / gamma."""
        return self.beta * self.infectious_days


@dataclass(frozen=True, slots=True)
class MetapopResult:
    """Trajectories of one metapopulation run.

    All arrays are ``(T + 1, C)`` (time x county); ``new_infections`` and
    ``confirmed`` are ``(T, C)`` daily counts.
    """

    s: np.ndarray
    e: np.ndarray
    i: np.ndarray
    r: np.ndarray
    new_infections: np.ndarray
    confirmed: np.ndarray

    @property
    def n_days(self) -> int:
        """Simulated horizon."""
        return int(self.new_infections.shape[0])

    def state_confirmed_cumulative(self) -> np.ndarray:
        """State-level cumulative confirmed cases, length ``n_days``."""
        return np.cumsum(self.confirmed.sum(axis=1))

    def county_confirmed_cumulative(self) -> np.ndarray:
        """``(C, T)`` per-county cumulative confirmed cases."""
        return np.cumsum(self.confirmed, axis=0).T

    def conservation_error(self) -> float:
        """Max deviation of S+E+I+R from the initial total (should be ~0)."""
        totals = (self.s + self.e + self.i + self.r).sum(axis=1)
        return float(np.abs(totals - totals[0]).max())


def gravity_coupling(
    county_pop: np.ndarray, mixing: float = DEFAULT_MIXING
) -> np.ndarray:
    """Row-stochastic county contact matrix.

    Diagonal mass ``1 - mixing``; the remaining mass spreads over other
    counties proportionally to their population (a gravity model with unit
    distance, standing in for ACS commute flows).
    """
    county_pop = np.asarray(county_pop, dtype=np.float64)
    c = county_pop.shape[0]
    if c == 1:
        return np.ones((1, 1))
    w = np.tile(county_pop, (c, 1))
    np.fill_diagonal(w, 0.0)
    w /= w.sum(axis=1, keepdims=True)
    return (1.0 - mixing) * np.eye(c) + mixing * w


class MetapopModel:
    """A region's county-coupled SEIR system."""

    def __init__(
        self,
        county_pop: np.ndarray,
        *,
        coupling: np.ndarray | None = None,
        mixing: float = DEFAULT_MIXING,
    ) -> None:
        self.county_pop = np.asarray(county_pop, dtype=np.float64)
        if (self.county_pop <= 0).any():
            raise ValueError("county populations must be positive")
        self.coupling = (
            coupling if coupling is not None
            else gravity_coupling(self.county_pop, mixing)
        )
        c = self.county_pop.shape[0]
        if self.coupling.shape != (c, c):
            raise ValueError("coupling matrix shape mismatch")
        if not np.allclose(self.coupling.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("coupling matrix must be row-stochastic")

    @classmethod
    def for_region(
        cls, region: Region | str, *, mixing: float = DEFAULT_MIXING,
        seed: int = DEFAULT_SEED,
    ) -> "MetapopModel":
        """Build a model from a region's heavy-tailed county populations."""
        if isinstance(region, str):
            region = get_region(region)
        rng = np.random.default_rng((seed, region.fips, 7))
        ranks = np.arange(1, region.counties + 1, dtype=np.float64)
        w = ranks ** -0.9 * rng.lognormal(0.0, 0.25, size=region.counties)
        pops = np.maximum(w / w.sum() * region.population, 100.0)
        return cls(pops, mixing=mixing)

    @property
    def n_counties(self) -> int:
        """Number of counties."""
        return int(self.county_pop.shape[0])

    def run(
        self,
        params: SEIRParams,
        n_days: int,
        *,
        initial_infected: np.ndarray | float = 10.0,
        beta_modifier: Callable[[int], float] | None = None,
        stochastic: bool = False,
        rng: np.random.Generator | None = None,
    ) -> MetapopResult:
        """Integrate the system for ``n_days`` daily steps.

        Args:
            params: disease parameters.
            n_days: horizon.
            initial_infected: per-county initial I (scalar spreads it
                proportionally to population).
            beta_modifier: optional time-varying multiplier on beta — the
                hook the Case-study-2 scenarios use for social distancing.
            stochastic: binomial transitions instead of expectations.
            rng: required when ``stochastic``.
        """
        c = self.n_counties
        n = self.county_pop
        if np.isscalar(initial_infected):
            i0 = float(initial_infected) * n / n.sum()
        else:
            i0 = np.asarray(initial_infected, dtype=np.float64)
            if i0.shape != (c,):
                raise ValueError("initial_infected shape mismatch")
        i0 = np.minimum(i0, n)
        if stochastic and rng is None:
            raise ValueError("stochastic runs need an rng")

        sigma = 1.0 / params.incubation_days
        gamma = 1.0 / params.infectious_days

        s = np.empty((n_days + 1, c))
        e = np.empty((n_days + 1, c))
        i = np.empty((n_days + 1, c))
        r = np.empty((n_days + 1, c))
        new_inf = np.zeros((n_days, c))

        s[0] = n - i0
        e[0] = 0.0
        i[0] = i0
        r[0] = 0.0

        for t in range(n_days):
            beta_t = params.beta
            if beta_modifier is not None:
                beta_t = beta_t * beta_modifier(t)
            foi = beta_t * (self.coupling @ (i[t] / n))
            p_inf = -np.expm1(-foi)
            p_prog = -np.expm1(-sigma)
            p_rec = -np.expm1(-gamma)
            if stochastic:
                assert rng is not None
                inf = rng.binomial(s[t].astype(np.int64), p_inf)
                prog = rng.binomial(e[t].astype(np.int64), p_prog)
                rec = rng.binomial(i[t].astype(np.int64), p_rec)
            else:
                inf = s[t] * p_inf
                prog = e[t] * p_prog
                rec = i[t] * p_rec
            s[t + 1] = s[t] - inf
            e[t + 1] = e[t] + inf - prog
            i[t + 1] = i[t] + prog - rec
            r[t + 1] = r[t] + rec
            new_inf[t] = inf

        confirmed = new_inf * params.ascertainment
        if params.report_delay > 0:
            confirmed = np.roll(confirmed, params.report_delay, axis=0)
            confirmed[: params.report_delay] = 0.0

        return MetapopResult(s, e, i, r, new_inf, confirmed)
