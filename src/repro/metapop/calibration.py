"""Direct-MCMC calibration of the metapopulation model (Appendix E, Eq. 6).

"Unlike Agent-Based Models, the metapopulation model is cheap to run, hence,
calibration is carried out by directly simulating from the model in the
Markov Chain Monte Carlo loop."  The likelihood is a product of per-county
multivariate Gaussians with "noise standard deviation ... assumed to be 20%
of the daily case counts", independence between counties, and uniform
priors on the parameters of interest (transmissibility and infectious
duration — "Transmissibility and infectious duration parameters are
calibrated based on county-level confirmed cases").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import DEFAULT_SEED
from ..surveillance.truth import GroundTruth
from .seir import MetapopModel, SEIRParams
from ..calibration.lhs import ParameterSpace
from ..calibration.mcmc import MCMCResult, metropolis

#: Eq. 6: observation noise sd as a fraction of daily counts.
NOISE_FRACTION: float = 0.20
#: Noise floor so zero-count days do not produce a degenerate likelihood.
NOISE_FLOOR: float = 1.0


@dataclass(frozen=True)
class MetapopCalibration:
    """Posterior of a metapopulation calibration.

    Attributes:
        space: parameter space of (beta, infectious_days).
        mcmc: raw MCMC output.
        map_params: highest-posterior sample, as :class:`SEIRParams`.
        onset_day: surveillance day the model clock was aligned to (the
            day the outbreak first appears in the data; simulations of the
            calibrated model should start at this day).
        initial_infected: per-county seeding used during calibration.
    """

    space: ParameterSpace
    mcmc: MCMCResult
    map_params: SEIRParams
    onset_day: int = 0
    initial_infected: float | None = None

    def posterior_params(
        self, n: int, rng: np.random.Generator
    ) -> list[SEIRParams]:
        """Draw ``n`` parameter sets from the posterior sample."""
        idx = rng.choice(self.mcmc.samples.shape[0], size=n, replace=True)
        return [
            SEIRParams(beta=float(b), infectious_days=float(g))
            for b, g in self.mcmc.samples[idx]
        ]


def county_log_likelihood(
    model_confirmed: np.ndarray, observed_daily: np.ndarray
) -> float:
    """Eq. 6 log likelihood over all counties and days.

    Args:
        model_confirmed: ``(T, C)`` simulated daily confirmed cases.
        observed_daily: ``(C, T)`` observed daily counts (surveillance
            layout).

    The per-county error covariance Sigma^(c) is diagonal with sd equal to
    20% of the observed daily count (floored), so the product of C
    multivariate Gaussian pdfs factorises over days.
    """
    obs = observed_daily.T  # (T, C)
    if model_confirmed.shape != obs.shape:
        raise ValueError("model and observation shapes differ")
    sd = np.maximum(NOISE_FRACTION * obs, NOISE_FLOOR)
    z = (obs - model_confirmed) / sd
    return float(-0.5 * np.sum(z ** 2) - np.sum(np.log(sd))
                 - 0.5 * obs.size * np.log(2 * np.pi))


def calibrate_metapop(
    model: MetapopModel,
    truth: GroundTruth,
    *,
    beta_bounds: tuple[float, float] = (0.1, 0.8),
    infectious_bounds: tuple[float, float] = (3.0, 10.0),
    n_samples: int = 1000,
    burn_in: int = 600,
    seed: int = DEFAULT_SEED,
    initial_infected: float = 20.0,
) -> MetapopCalibration:
    """Calibrate (beta, infectious_days) against county surveillance.

    Runs the deterministic model inside the Metropolis loop, exactly as the
    paper describes for the metapopulation pathway.

    Args:
        model: the county system (county count must match ``truth``).
        truth: the observed series.
        beta_bounds / infectious_bounds: uniform prior ranges.
        n_samples / burn_in: MCMC budget.
        seed: RNG seed.
        initial_infected: total initial infections spread over counties.
    """
    if model.n_counties != truth.n_counties:
        raise ValueError("model and truth county counts differ")
    space = ParameterSpace(
        ("beta", "infectious_days"),
        np.asarray([beta_bounds[0], infectious_bounds[0]]),
        np.asarray([beta_bounds[1], infectious_bounds[1]]),
    )
    rng = np.random.default_rng(seed)

    # Align the model clock with the outbreak: surveillance series lead
    # with a quiet importation period, so the model is seeded at the first
    # observed case and compared against the post-onset window.  Without
    # this alignment a high-beta fit peaks during the quiet period and the
    # posterior degenerates to near-zero transmission.
    state_daily = truth.daily.sum(axis=0)
    nz = np.flatnonzero(state_daily > 0)
    onset = int(nz[0]) if nz.size else 0
    obs_daily = truth.daily[:, onset:]
    n_days = obs_daily.shape[1]

    def log_post(theta: np.ndarray) -> float:
        if not space.contains(theta)[0]:
            return -np.inf
        params = SEIRParams(beta=float(theta[0]),
                            infectious_days=float(theta[1]))
        result = model.run(params, n_days,
                           initial_infected=initial_infected)
        return county_log_likelihood(result.confirmed, obs_daily)

    theta0 = np.asarray([
        (beta_bounds[0] + beta_bounds[1]) / 2,
        (infectious_bounds[0] + infectious_bounds[1]) / 2,
    ])
    mcmc = metropolis(
        log_post, theta0,
        n_samples=n_samples, burn_in=burn_in,
        init_scales=np.asarray([0.03, 0.3]), rng=rng,
    )
    best = mcmc.samples[np.argmax(mcmc.log_posts)]
    return MetapopCalibration(
        space=space,
        mcmc=mcmc,
        map_params=SEIRParams(beta=float(best[0]),
                              infectious_days=float(best[1])),
        onset_day=onset,
        initial_infected=initial_infected,
    )
