"""Vectorised transmission kernel implementing Eq. (1) of Appendix D.

For a contact edge e between susceptible person P_s (state X_i) and
infectious person P_i (state X_k), the propensity of the transition into the
exposed state X_j is::

    rho(P_s, P_i, T_ijk) = [ T * w_e * sigma(P_s) * iota(P_i) * omega(T_ijk) ]

with T the contact duration, w_e the edge weight, sigma / iota the person
susceptibility / infectivity (state value times per-node scaling trait), and
omega the transmission rate, scaled by the model's global transmissibility.
Under the independence assumption the paper states, summing propensities and
running Gillespie over one tick is equivalent to an independent Bernoulli per
contact with p = 1 - exp(-rho); we use the per-contact form because it also
yields the causing contact directly (EpiHiper records which contact caused
each transmission).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .disease import DiseaseModel

#: Contact durations in the network are minutes; propensities use days.
MINUTES_PER_DAY: float = 24.0 * 60.0


@dataclass(frozen=True, slots=True)
class TransmissionEvents:
    """Newly exposed persons of one tick, with attribution."""

    pids: np.ndarray  #: persons leaving a susceptible state
    exposed_codes: np.ndarray  #: state each person enters
    infectors: np.ndarray  #: the contact that caused each transition
    n_candidates: int  #: directed susceptible-infectious contacts evaluated


def transmission_step(
    model: DiseaseModel,
    health: np.ndarray,
    node_susceptibility: np.ndarray,
    node_infectivity: np.ndarray,
    edge_source: np.ndarray,
    edge_target: np.ndarray,
    edge_active: np.ndarray,
    edge_weight: np.ndarray,
    edge_duration_min: np.ndarray,
    rng: np.random.Generator,
) -> TransmissionEvents:
    """Evaluate all active contacts for one tick and sample transmissions.

    Args:
        model: the disease model supplying state-level sigma / iota / omega.
        health: per-person state codes.
        node_susceptibility / node_infectivity: per-person scaling traits
            (the rw ``susceptibility`` / ``infectivity`` values of Table V).
        edge_*: the contact-network columns; only ``active`` edges transmit.
        rng: the simulation's random stream.

    Returns:
        One event per newly exposed person.  A person reachable through
        several firing contacts is exposed once, attributed to a uniformly
        random firing contact.
    """
    sus_state = model.is_susceptible[health]
    inf_state = model.is_infectious[health]

    src, tgt = edge_source, edge_target
    fwd = edge_active & inf_state[src] & sus_state[tgt]  # src infects tgt
    bwd = edge_active & inf_state[tgt] & sus_state[src]  # tgt infects src

    sus_ids = np.concatenate([tgt[fwd], src[bwd]])
    inf_ids = np.concatenate([src[fwd], tgt[bwd]])
    if sus_ids.size == 0:
        empty = np.empty(0, np.int64)
        return TransmissionEvents(empty, np.empty(0, np.int8), empty.copy(), 0)

    dur = np.concatenate([edge_duration_min[fwd], edge_duration_min[bwd]])
    w = np.concatenate([edge_weight[fwd], edge_weight[bwd]])

    sigma = model.susceptibility[health[sus_ids]] * node_susceptibility[sus_ids]
    iota = model.infectivity[health[inf_ids]] * node_infectivity[inf_ids]
    omega = model.omega[health[sus_ids], health[inf_ids]]

    rho = (dur / MINUTES_PER_DAY) * w * sigma * iota * omega
    rho *= model.transmissibility
    p = -np.expm1(-rho)  # 1 - exp(-rho), numerically stable for small rho

    fired = rng.random(p.shape[0]) < p
    if not fired.any():
        empty = np.empty(0, np.int64)
        return TransmissionEvents(
            empty, np.empty(0, np.int8), empty.copy(), int(sus_ids.size))

    f_sus = sus_ids[fired]
    f_inf = inf_ids[fired]

    # Deduplicate per susceptible person; pick the attributed contact
    # uniformly among firing contacts by shuffling before the unique pass.
    perm = rng.permutation(f_sus.shape[0])
    f_sus, f_inf = f_sus[perm], f_inf[perm]
    uniq, first = np.unique(f_sus, return_index=True)
    infectors = f_inf[first]

    return TransmissionEvents(
        pids=uniq,
        exposed_codes=model.exposed_of[health[uniq]],
        infectors=infectors,
        n_candidates=int(sus_ids.size),
    )
