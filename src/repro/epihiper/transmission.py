"""Vectorised transmission kernel implementing Eq. (1) of Appendix D.

For a contact edge e between susceptible person P_s (state X_i) and
infectious person P_i (state X_k), the propensity of the transition into the
exposed state X_j is::

    rho(P_s, P_i, T_ijk) = [ T * w_e * sigma(P_s) * iota(P_i) * omega(T_ijk) ]

with T the contact duration, w_e the edge weight, sigma / iota the person
susceptibility / infectivity (state value times per-node scaling trait), and
omega the transmission rate, scaled by the model's global transmissibility.
Under the independence assumption the paper states, summing propensities and
running Gillespie over one tick is equivalent to an independent Bernoulli per
contact with p = 1 - exp(-rho); we use the per-contact form because it also
yields the causing contact directly (EpiHiper records which contact caused
each transmission).

Two interchangeable kernels produce the candidate contacts:

``dense``
    Scan every edge: O(|E|) boolean masks, best once a sizeable fraction of
    the population is infectious.

``frontier``
    Gather only the edges incident to the currently-infectious set through
    the :class:`~repro.epihiper.interventions.IncidentEdges` CSR, then sort
    the gathered edge rows into ascending (dense enumeration) order.  Early
    in an epidemic — the common case in calibration sweeps — this does
    O(frontier degree) work instead of O(|E|).

Because a candidate contact requires an infectious endpoint, both kernels
enumerate *exactly* the same contacts, and the ascending sort makes the
frontier kernel emit them in the same order the dense scan does.  The RNG
consumption (one uniform per candidate, then one permutation over firing
contacts) is therefore identical, and the two kernels produce bit-identical
:class:`TransmissionEvents` for the same RNG stream — equivalence is exact,
not statistical.

``auto`` picks per tick: frontier while the gathered incident-slot count
(the sum of the infectious set's degrees) stays below
``FRONTIER_DENSE_CROSSOVER`` of the edge count, dense afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

from .disease import DiseaseModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .interventions import IncidentEdges

#: Contact durations in the network are minutes; propensities use days.
MINUTES_PER_DAY: float = 24.0 * 60.0

#: ``auto`` crossover: use the frontier kernel while the infectious set's
#: degree sum (gathered CSR slots) is below this fraction of |E|.  The
#: frontier pays a sort over the gathered rows but skips the O(|E|) boolean
#: masks and O(|E|)-sized mask-indexing of the dense scan; measured on
#: scaled state networks the break-even sits around 0.6 gathered slots per
#: edge (~30% prevalence on a degree-homogeneous network), and the two
#: kernels are within ~10% of each other well around it, so a misprediction
#: near the boundary is cheap.
FRONTIER_DENSE_CROSSOVER: float = 0.6


class TransmissionBackend(Enum):
    """Which kernel enumerates candidate contacts each tick."""

    DENSE = "dense"
    FRONTIER = "frontier"
    AUTO = "auto"

    @classmethod
    def coerce(cls, value: "TransmissionBackend | str") -> "TransmissionBackend":
        """Accept an enum member or its string value (cell-parameter form)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            names = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown transmission backend {value!r}; expected one of "
                f"{names}") from None


@dataclass(frozen=True, slots=True)
class TransmissionEvents:
    """Newly exposed persons of one tick, with attribution."""

    pids: np.ndarray  #: persons leaving a susceptible state
    exposed_codes: np.ndarray  #: state each person enters
    infectors: np.ndarray  #: the contact that caused each transition
    n_candidates: int  #: directed susceptible-infectious contacts evaluated


def _unique_sorted(values: np.ndarray) -> np.ndarray:
    """Ascending deduplication via sort + adjacent-difference flags.

    Equivalent to ``np.unique`` on 1-D integer input but noticeably faster
    (np.unique pays for its generality), which matters here: the dedup of
    gathered frontier rows is the frontier kernel's dominant cost.
    """
    if values.size == 0:
        return values
    values = np.sort(values)
    keep = np.empty(values.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def _empty_events(n_candidates: int) -> TransmissionEvents:
    return TransmissionEvents(
        pids=np.empty(0, np.int64),
        exposed_codes=np.empty(0, np.int8),
        infectors=np.empty(0, np.int64),
        n_candidates=int(n_candidates),
    )


def resolve_backend(
    backend: TransmissionBackend | str,
    incident: "IncidentEdges | None",
    infectious_pids: np.ndarray,
    n_edges: int,
) -> TransmissionBackend:
    """Resolve ``auto`` into a concrete kernel for this tick.

    The decision compares the exact work the frontier gather would do (the
    infectious set's degree sum, an O(frontier) lookup in the CSR offsets)
    against the dense scan's O(|E|); ``dense`` and ``frontier`` pass
    through unchanged.
    """
    backend = TransmissionBackend.coerce(backend)
    if backend is not TransmissionBackend.AUTO:
        return backend
    if incident is None:
        return TransmissionBackend.DENSE
    gathered = incident.degree_sum(infectious_pids)
    if gathered <= FRONTIER_DENSE_CROSSOVER * n_edges:
        return TransmissionBackend.FRONTIER
    return TransmissionBackend.DENSE


def frontier_workload(inf_state: np.ndarray,
                      incident: "IncidentEdges") -> float:
    """Exact frontier gather workload (degree sum) from a boolean mask.

    One dot product over the cached float64 degree column — a few
    microseconds regardless of prevalence, versus the flatnonzero + CSR
    offset gather of :meth:`IncidentEdges.degree_sum`, whose cost grows
    with the infectious count and used to make ``auto`` lose to ``dense``
    at high prevalence.  Degree sums are integers far below 2**53, so the
    float result equals ``degree_sum(flatnonzero(inf_state))`` exactly and
    the ``auto`` decision is unchanged.
    """
    return float(np.dot(inf_state, incident.degrees))


def _dense_candidates(sus_state, inf_state, edge_source, edge_target,
                      edge_active, edge_weight, edge_duration_min):
    """Candidate contacts by scanning every edge (both directions)."""
    src, tgt = edge_source, edge_target
    fwd = edge_active & inf_state[src] & sus_state[tgt]  # src infects tgt
    bwd = edge_active & inf_state[tgt] & sus_state[src]  # tgt infects src

    sus_ids = np.concatenate([tgt[fwd], src[bwd]])
    if sus_ids.size == 0:
        return None
    inf_ids = np.concatenate([src[fwd], tgt[bwd]])
    dur = np.concatenate([edge_duration_min[fwd], edge_duration_min[bwd]])
    w = np.concatenate([edge_weight[fwd], edge_weight[bwd]])
    return sus_ids, inf_ids, dur, w


def dense_candidate_tables(edge_source, edge_target, edge_duration_min):
    """Static doubled-edge lookups for :func:`batched_dense_candidates`.

    Column ``c`` of the doubled layout is the forward direction of edge
    ``c`` for ``c < E`` and the backward direction of edge ``c - E``
    otherwise; the returned ``(inf_of, sus_of, dur_of)`` map a doubled
    column straight to its infectious endpoint, susceptible endpoint, and
    contact duration.  Build once per network and reuse every tick.
    """
    inf_of = np.concatenate([edge_source, edge_target])
    sus_of = np.concatenate([edge_target, edge_source])
    dur_of = np.concatenate([edge_duration_min, edge_duration_min])
    return inf_of, sus_of, dur_of


def batched_dense_candidates(sus_stack, inf_stack, edge_source, edge_target,
                             active_stack, weight_stack, edge_duration_min,
                             tables=None, scratch=None):
    """Dense candidates of ``K`` stacked replicate lanes, in flat form.

    ``sus_stack`` / ``inf_stack`` are ``(K, N)`` boolean state masks,
    ``active_stack`` is the ``(K, E)`` per-lane effective edge activity,
    and ``weight_stack`` the ``(K, E)`` per-lane (possibly NPI-modified)
    weight columns.  Both contact directions are evaluated in one
    ``(K, 2E)`` scan over the doubled-edge layout (forward columns then
    backward columns); ``np.flatnonzero`` over it is row-major, so each
    lane's candidates come out forward-then-backward in ascending edge
    order — exactly the enumeration :func:`_dense_candidates` produces —
    and the per-lane segments are bit-identical to K solo calls.

    Args:
        tables: optional precomputed :func:`dense_candidate_tables`.
        scratch: optional ``(2, K, 2E)`` boolean scratch reused across
            ticks.

    Returns:
        ``(sus_ids, inf_ids, dur, w, counts)``: lane-local person ids and
        per-contact columns concatenated lane by lane, plus the ``(K,)``
        per-lane candidate counts.
    """
    n_lanes = sus_stack.shape[0]
    n_edges = edge_source.shape[0]
    if tables is None:
        tables = dense_candidate_tables(
            edge_source, edge_target, edge_duration_min)
    inf_of, sus_of, dur_of = tables
    if scratch is None:
        scratch = np.empty((2, n_lanes, 2 * n_edges), dtype=bool)
    cand, other = scratch[0], scratch[1]
    np.take(inf_stack, inf_of, axis=1, out=cand)
    np.take(sus_stack, sus_of, axis=1, out=other)
    cand &= other
    cand[:, :n_edges] &= active_stack
    cand[:, n_edges:] &= active_stack

    flat = np.flatnonzero(cand)
    # Per-lane counts from the sorted flat indices (row k occupies
    # [k*2E, (k+1)*2E)) — a log-time search instead of a (K, 2E) sum.
    bounds = np.searchsorted(flat, np.arange(1, n_lanes + 1) * (2 * n_edges))
    counts = np.diff(bounds, prepend=0)
    lane = np.repeat(np.arange(n_lanes, dtype=np.int64), counts)
    col = flat - lane * (2 * n_edges)
    sus_ids = sus_of[col]
    inf_ids = inf_of[col]
    dur = dur_of[col]
    edge = np.where(col < n_edges, col, col - n_edges)
    w = weight_stack.reshape(-1)[lane * n_edges + edge]
    return sus_ids, inf_ids, dur, w, counts


def _frontier_candidates_from_rows(model, health, inf_state, rows,
                                   edge_source, edge_target, edge_active,
                                   edge_weight, edge_duration_min):
    """Frontier candidate evaluation over pre-gathered unique-sorted rows."""
    src = edge_source[rows]
    tgt = edge_target[rows]
    act = edge_active[rows]
    sus_of = model.is_susceptible
    fwd = act & inf_state[src] & sus_of[health[tgt]]
    bwd = act & inf_state[tgt] & sus_of[health[src]]

    sus_ids = np.concatenate([tgt[fwd], src[bwd]])
    if sus_ids.size == 0:
        return None
    inf_ids = np.concatenate([src[fwd], tgt[bwd]])
    frows, brows = rows[fwd], rows[bwd]
    dur = np.concatenate([edge_duration_min[frows], edge_duration_min[brows]])
    w = np.concatenate([edge_weight[frows], edge_weight[brows]])
    return sus_ids, inf_ids, dur, w


def _frontier_candidates(model, health, inf_state, infectious_pids, incident,
                         edge_source, edge_target, edge_active, edge_weight,
                         edge_duration_min):
    """Candidate contacts gathered from the infectious frontier.

    The sort-dedup both drops rows whose two endpoints are infectious and
    puts the gathered rows in ascending — dense enumeration — order, which
    is what guarantees RNG-stream equivalence with the dense kernel.
    State flags are looked up on the gathered endpoints only, so nothing
    here scales with |E| or |V| except the one flatnonzero the caller did.
    """
    rows = incident.edge_rows_of(infectious_pids)
    if rows.size == 0:
        return None
    rows = _unique_sorted(rows)
    return _frontier_candidates_from_rows(
        model, health, inf_state, rows, edge_source, edge_target,
        edge_active, edge_weight, edge_duration_min)


def _sample_transmissions(model, health, node_susceptibility,
                          node_infectivity, sus_ids, inf_ids, dur, w,
                          rng) -> TransmissionEvents:
    """Eq. (1) propensities + per-contact Bernoulli over the candidates."""
    sigma = model.susceptibility[health[sus_ids]] * node_susceptibility[sus_ids]
    iota = model.infectivity[health[inf_ids]] * node_infectivity[inf_ids]
    omega = model.omega[health[sus_ids], health[inf_ids]]

    rho = (dur / MINUTES_PER_DAY) * w * sigma * iota * omega
    rho *= model.transmissibility
    p = -np.expm1(-rho)  # 1 - exp(-rho), numerically stable for small rho

    fired = rng.random(p.shape[0]) < p
    if not fired.any():
        return _empty_events(sus_ids.size)

    f_sus = sus_ids[fired]
    f_inf = inf_ids[fired]

    # Deduplicate per susceptible person; pick the attributed contact
    # uniformly among firing contacts by shuffling before the unique pass.
    perm = rng.permutation(f_sus.shape[0])
    f_sus, f_inf = f_sus[perm], f_inf[perm]
    uniq, first = np.unique(f_sus, return_index=True)
    infectors = f_inf[first]

    return TransmissionEvents(
        pids=uniq,
        exposed_codes=model.exposed_of[health[uniq]],
        infectors=infectors,
        n_candidates=int(sus_ids.size),
    )


def transmission_step(
    model: DiseaseModel,
    health: np.ndarray,
    node_susceptibility: np.ndarray,
    node_infectivity: np.ndarray,
    edge_source: np.ndarray,
    edge_target: np.ndarray,
    edge_active: np.ndarray,
    edge_weight: np.ndarray,
    edge_duration_min: np.ndarray,
    rng: np.random.Generator,
    *,
    backend: TransmissionBackend | str = TransmissionBackend.DENSE,
    incident: "IncidentEdges | None" = None,
) -> TransmissionEvents:
    """Evaluate the active contacts of one tick and sample transmissions.

    Args:
        model: the disease model supplying state-level sigma / iota / omega.
        health: per-person state codes.
        node_susceptibility / node_infectivity: per-person scaling traits
            (the rw ``susceptibility`` / ``infectivity`` values of Table V).
        edge_*: the contact-network columns; only ``active`` edges transmit.
        rng: the simulation's random stream.
        backend: candidate-enumeration kernel; all choices consume the RNG
            stream identically and return bit-identical events.
        incident: the person -> incident-edge CSR; required by ``frontier``
            and used by ``auto`` (``auto`` without it degrades to dense).

    Returns:
        One event per newly exposed person.  A person reachable through
        several firing contacts is exposed once, attributed to a uniformly
        random firing contact.
    """
    inf_state = model.is_infectious[health]

    backend = TransmissionBackend.coerce(backend)
    if backend is TransmissionBackend.AUTO:
        # Resolve from the boolean mask alone — the flatnonzero is deferred
        # until (and unless) the frontier kernel is chosen, so a dense tick
        # at high prevalence no longer pays an O(infectious) index build
        # just to discover it didn't need one.
        if incident is None:
            backend = TransmissionBackend.DENSE
        else:
            threshold = FRONTIER_DENSE_CROSSOVER * edge_source.shape[0]
            n_inf = np.count_nonzero(inf_state)
            if n_inf * incident.max_degree <= threshold:
                # The workload upper bound is already below the crossover,
                # so one popcount settles the tick — the early-epidemic
                # common case never touches the degree column.
                backend = TransmissionBackend.FRONTIER
            else:
                gathered = frontier_workload(inf_state, incident)
                backend = (
                    TransmissionBackend.FRONTIER if gathered <= threshold
                    else TransmissionBackend.DENSE)
    if backend is TransmissionBackend.FRONTIER:
        if incident is None:
            raise ValueError(
                "frontier backend requires an IncidentEdges index")
        cand = _frontier_candidates(
            model, health, inf_state, np.flatnonzero(inf_state), incident,
            edge_source, edge_target, edge_active, edge_weight,
            edge_duration_min)
    else:
        cand = _dense_candidates(
            model.is_susceptible[health], inf_state, edge_source,
            edge_target, edge_active, edge_weight, edge_duration_min)

    if cand is None:
        return _empty_events(0)
    sus_ids, inf_ids, dur, w = cand
    return _sample_transmissions(
        model, health, node_susceptibility, node_infectivity,
        sus_ids, inf_ids, dur, w, rng)
