"""Disease-model container: states, progressions, and transmissions.

A :class:`DiseaseModel` bundles the PTTS of Appendix D: a set of
:class:`~repro.epihiper.states.HealthState`, age-stratified progression
edges (probability + dwell time per Table III), and transmission rules
(susceptible state x infectious state -> exposed state, with a rate
omega per Eq. 1).  Models are specified independently of the population
and network, exactly as in EpiHiper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .states import DwellTime, HealthState

#: Number of age groups the progression probabilities are stratified by.
N_AGE_GROUPS: int = 5


@dataclass(frozen=True)
class Progression:
    """One directed PTTS edge ``src -> dst``.

    ``prob`` holds one probability per age group (a scalar in Table III
    means "applies to all age groups").
    """

    src: str
    dst: str
    prob: tuple[float, ...]  #: length N_AGE_GROUPS
    dwell: DwellTime

    def __post_init__(self) -> None:
        if len(self.prob) != N_AGE_GROUPS:
            raise ValueError(
                f"{self.src}->{self.dst}: need {N_AGE_GROUPS} probabilities"
            )
        if any(p < 0 or p > 1 for p in self.prob):
            raise ValueError(f"{self.src}->{self.dst}: probability out of range")


def uniform(p: float) -> tuple[float, ...]:
    """Expand a single Table III value to all age groups."""
    return (p,) * N_AGE_GROUPS


@dataclass(frozen=True)
class Transmission:
    """A transmission rule T_{i,j,k} (Appendix D).

    A contact between a person in susceptible state ``susceptible`` and one
    in infectious state ``infectious`` may move the former into ``exposed``
    with rate ``omega`` (the transmission rate omega(T_{i,j,k}) of Eq. 1,
    scaled globally by the model's transmissibility).
    """

    susceptible: str
    infectious: str
    exposed: str
    omega: float = 1.0


class DiseaseModelError(ValueError):
    """Raised when a disease model is structurally invalid."""


class DiseaseModel:
    """A validated PTTS disease model with fast array lookups.

    After construction the model exposes integer state codes and dense
    per-state arrays (infectivity, susceptibility, flags) that the simulation
    engine indexes with the population's health-state vector — the layout
    that keeps the engine fully vectorised.
    """

    def __init__(
        self,
        name: str,
        states: list[HealthState],
        progressions: list[Progression],
        transmissions: list[Transmission],
        transmissibility: float = 1.0,
    ) -> None:
        self.name = name
        self.states = list(states)
        self.progressions = list(progressions)
        self.transmissions = list(transmissions)
        self.transmissibility = float(transmissibility)

        self.index: dict[str, int] = {s.name: i for i, s in enumerate(states)}
        if len(self.index) != len(states):
            raise DiseaseModelError("duplicate state names")

        self._validate()

        n = len(states)
        self.infectivity = np.asarray(
            [s.infectivity for s in states], dtype=np.float64)
        self.susceptibility = np.asarray(
            [s.susceptibility for s in states], dtype=np.float64)
        self.is_infectious = self.infectivity > 0
        self.is_susceptible = self.susceptibility > 0
        self.is_symptomatic = np.asarray(
            [s.symptomatic for s in states], dtype=bool)
        self.is_hospitalized = np.asarray(
            [s.hospitalized for s in states], dtype=bool)
        self.is_ventilated = np.asarray(
            [s.ventilated for s in states], dtype=bool)
        self.is_deceased = np.asarray(
            [s.deceased for s in states], dtype=bool)

        # Per-state outgoing edges, as (dst codes, (n_out x n_age) probs),
        # plus the column-wise cumulative probabilities the scheduler's
        # inverse-cdf edge choice uses (precomputed here because cumsum of
        # a column equals the column of the cumsum — gathering age columns
        # out of this table is bit-identical to cumsumming after the
        # gather, at none of the per-call cost).
        self.out_edges: dict[int, tuple[np.ndarray, np.ndarray, list[DwellTime]]] = {}
        self.out_cum: dict[int, np.ndarray] = {}
        #: ``out_cum`` transposed into plain-python rows (``[age][edge]``)
        #: plus the destination codes as python ints — the scalar
        #: small-batch scheduler walks these without numpy scalar boxing.
        self.out_cum_age: dict[int, list[list[float]]] = {}
        self.out_dsts: dict[int, list[int]] = {}
        for code in range(n):
            outs = [p for p in progressions if self.index[p.src] == code]
            if not outs:
                continue
            dsts = np.asarray([self.index[p.dst] for p in outs], np.int8)
            probs = np.asarray([p.prob for p in outs], np.float64)
            self.out_edges[code] = (dsts, probs, [p.dwell for p in outs])
            self.out_cum[code] = np.cumsum(probs, axis=0)
            self.out_cum_age[code] = self.out_cum[code].T.tolist()
            self.out_dsts[code] = dsts.tolist()

        # Exposure map: susceptible-state code -> exposed-state code, and the
        # per-(sus, inf) omega matrix used by the transmission kernel.
        self.exposed_of = np.full(n, -1, dtype=np.int8)
        self.omega = np.zeros((n, n), dtype=np.float64)
        for t in transmissions:
            s, i, e = (self.index[t.susceptible], self.index[t.infectious],
                       self.index[t.exposed])
            self.exposed_of[s] = e
            self.omega[s, i] = t.omega

    # -- validation ----------------------------------------------------------

    def _validate(self) -> None:
        for p in self.progressions:
            for end in (p.src, p.dst):
                if end not in self.index:
                    raise DiseaseModelError(f"unknown state {end!r}")
        for t in self.transmissions:
            for end in (t.susceptible, t.infectious, t.exposed):
                if end not in self.index:
                    raise DiseaseModelError(f"unknown state {end!r}")
            if not self.states[self.index[t.susceptible]].susceptible:
                raise DiseaseModelError(
                    f"{t.susceptible} has zero susceptibility but is the "
                    "susceptible side of a transmission")
            if not self.states[self.index[t.infectious]].infectious:
                raise DiseaseModelError(
                    f"{t.infectious} has zero infectivity but is the "
                    "infectious side of a transmission")

        # Appendix D: out-probabilities of every state must sum to 1 (or 0
        # for terminal states), per age group.
        sums = np.zeros((len(self.states), N_AGE_GROUPS))
        for p in self.progressions:
            sums[self.index[p.src]] += np.asarray(p.prob)
        for i, s in enumerate(self.states):
            row = sums[i]
            ok = np.allclose(row, 1.0, atol=1e-9) or np.allclose(row, 0.0)
            if not ok:
                raise DiseaseModelError(
                    f"state {s.name}: outgoing probabilities sum to {row}, "
                    "must be 1 or 0 for every age group")

    # -- queries --------------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Number of health states."""
        return len(self.states)

    def code(self, name: str) -> int:
        """Integer code of state ``name``."""
        return self.index[name]

    def terminal_states(self) -> list[str]:
        """States with no outgoing progression (Recovered, Death, ...)."""
        return [s.name for i, s in enumerate(self.states)
                if i not in self.out_edges]

    def expected_path_lengths(self) -> dict[str, float]:
        """Expected ticks from each state to absorption (age-group mean).

        Computed by solving the linear system of the embedded Markov chain;
        useful for sanity-checking model edits against Table III.
        """
        n = self.n_states
        probs = np.zeros((n, n))
        holding = np.zeros(n)
        for code, (dsts, pmat, dwells) in self.out_edges.items():
            mean_p = pmat.mean(axis=1)
            for k, dst in enumerate(dsts):
                probs[code, dst] += mean_p[k]
                holding[code] += mean_p[k] * dwells[k].mean()
        # t = holding + P t  ->  (I - P) t = holding
        t = np.linalg.solve(np.eye(n) - probs, holding)
        return {s.name: float(t[i]) for i, s in enumerate(self.states)}
