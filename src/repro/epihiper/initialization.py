"""Simulation initialization: county-level seeding.

The workflows seed each region's simulation from the most recent
county-level confirmed-case counts (Section VII, economic case study:
"county-level seeding derived from county-level confirmed case counts").
Given per-county case counts — from :mod:`repro.surveillance` or real data —
we infect a proportional number of synthetic persons in each county.
"""

from __future__ import annotations

import numpy as np

from ..synthpop.persons import Population
from .engine import Simulation


def proportional_county_seeds(
    pop: Population,
    county_cases: dict[int, float],
    total_seeds: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Choose ``total_seeds`` persons, distributed like ``county_cases``.

    Args:
        pop: the region's synthetic population.
        county_cases: recent confirmed-case count per county FIPS; counties
            missing from the map get weight 0.  If all weights are 0 the
            seeds are spread uniformly.
        total_seeds: number of persons to infect (capped at the population).
        rng: random stream.

    Returns:
        Unique person ids to seed.
    """
    if total_seeds <= 0:
        return np.empty(0, dtype=np.int64)
    total_seeds = min(total_seeds, pop.size)
    # Look the case count up once per distinct county and broadcast through
    # the inverse index: same float64 weights as a per-person dict lookup
    # (so the rng.choice draw is unchanged) without the O(|V|) Python loop.
    counties, inverse = np.unique(pop.county, return_inverse=True)
    per_county = np.asarray(
        [max(0.0, county_cases.get(int(c), 0.0)) for c in counties],
        dtype=np.float64,
    )
    weights = per_county[inverse]
    if weights.sum() <= 0:
        weights[:] = 1.0
    weights /= weights.sum()
    return rng.choice(pop.size, size=total_seeds, replace=False, p=weights)


def uniform_seeds(
    pop: Population, total_seeds: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly random persons to seed (used by scaling benchmarks)."""
    total_seeds = min(max(0, total_seeds), pop.size)
    return rng.choice(pop.size, size=total_seeds, replace=False)


def initialize_from_surveillance(
    sim: Simulation,
    county_cases: dict[int, float],
    *,
    seed_fraction: float = 0.002,
    minimum: int = 5,
) -> np.ndarray:
    """Seed a simulation proportionally to surveillance case counts.

    ``seed_fraction`` of the population (at least ``minimum`` persons) enters
    the Exposed state at tick 0.  Returns the seeded person ids.
    """
    n_seeds = max(minimum, int(round(sim.pop.size * seed_fraction)))
    pids = proportional_county_seeds(sim.pop, county_cases, n_seeds, sim.rng)
    sim.seed_infections(pids)
    return pids
