"""EpiHiper: agent-based network epidemic simulation (paper Appendix D).

Public entry points:

- :func:`repro.epihiper.build_covid_model` — the Figure 12 COVID-19 PTTS.
- :class:`repro.epihiper.Simulation` — run a model over a region.
- :mod:`repro.epihiper.npi` — the eight named interventions of Figure 7.
- :func:`repro.epihiper.partition_threshold` — the paper's edge partitioner.
"""

from .batch import BatchedSimulation, BatchIncompatible
from .covid import (
    build_covid_model,
    build_covid_model_with_symp_fraction,
)
from .disease import (
    DiseaseModel,
    DiseaseModelError,
    Progression,
    Transmission,
    uniform,
)
from .engine import Simulation, SimulationResult
from .initialization import (
    initialize_from_surveillance,
    proportional_county_seeds,
    uniform_seeds,
)
from .interventions import (
    Intervention,
    at_tick,
    between_ticks,
    from_tick,
    sample_subset,
)
from .modelio import (
    model_from_dict,
    model_to_dict,
    read_model_json,
    write_model_json,
)
from .output import (
    TransitionLog,
    dendogram_roots,
    dendogram_sizes,
    max_generation,
    transmission_forest,
)
from .partition import (
    Partition,
    partition_cached,
    partition_degree_greedy,
    partition_round_robin,
    partition_threshold,
)
from .ranks import RankProfile, simulate_rank_execution, strong_scaling_curve
from .states import DiscreteDwell, FixedDwell, HealthState, NormalDwell
from .transmission import TransmissionBackend, TransmissionEvents

__all__ = [
    "BatchIncompatible",
    "BatchedSimulation",
    "model_from_dict",
    "model_to_dict",
    "read_model_json",
    "write_model_json",
    "DiscreteDwell",
    "DiseaseModel",
    "DiseaseModelError",
    "FixedDwell",
    "HealthState",
    "Intervention",
    "NormalDwell",
    "Partition",
    "Progression",
    "RankProfile",
    "Simulation",
    "SimulationResult",
    "Transmission",
    "TransmissionBackend",
    "TransmissionEvents",
    "TransitionLog",
    "at_tick",
    "between_ticks",
    "build_covid_model",
    "build_covid_model_with_symp_fraction",
    "dendogram_roots",
    "dendogram_sizes",
    "from_tick",
    "initialize_from_surveillance",
    "max_generation",
    "partition_cached",
    "partition_degree_greedy",
    "partition_round_robin",
    "partition_threshold",
    "proportional_county_seeds",
    "sample_subset",
    "simulate_rank_execution",
    "strong_scaling_curve",
    "transmission_forest",
    "uniform",
    "uniform_seeds",
]
