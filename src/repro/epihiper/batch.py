"""Batched multi-replicate execution: K replicates per vectorized tick.

Calibration sweeps, ensemble designs, and the scenario service all run many
*replicates* of the same region — identical population, network, and
horizon, differing only in RNG seed and cell parameters.  At calibration
scales the per-tick numpy kernels are dispatch-bound: every whole-array
operation pays a fixed interpreter + ufunc-setup cost that dwarfs the
arithmetic.  :class:`BatchedSimulation` amortises that cost by advancing K
replicates through each tick phase together, operating on ``(K, N)`` /
``(K, E)`` stacks instead of K separate ``(N,)`` / ``(E,)`` arrays.

The batching is *lane-view* based: each replicate remains a full
:class:`~repro.epihiper.engine.Simulation` ("lane") whose state arrays are
rebound to row views of the shared stacks.  Everything that consumes
randomness — interventions, transmission Bernoulli draws, progression
scheduling, seeding — keeps running per lane against the lane's own
``Generator``, in the exact order a solo run executes it; only the
RNG-free heavy work (candidate enumeration, Eq. 1 propensities, dwell
decrements, state writes, the census bincount) runs over the stacks.
Because lanes draw from independent generators, interleaving their phases
is free, and each lane's stream consumption is untouched — a replicate
batched alongside others emits exactly the bytes it emits alone.
Equivalence is exact, not statistical.

Kernel choice inside a batch is a pure speed decision: the dense and
frontier kernels enumerate identical candidates in identical order with
identical RNG consumption, so ``auto`` lanes may resolve differently
batched than solo without changing a single output byte.  The batch
resolves all its ``auto`` lanes *together* (one decision over the summed
frontier workload) so they land on the same kernel and the candidate scan
stays one stacked operation.

Interventions and NPIs need no porting: they reach state only through the
lane's public surface (``health``, ``enter_state``, ``suppressor``,
``edge_weight``, ``node_susceptibility``, ``rng``), all of which resolve to
the lane's row views.
"""

from __future__ import annotations

import numpy as np

from ..obs.registry import GAUGE, TIMER, MetricsRegistry
from .engine import (
    EDGE_OP_BYTES,
    ENGINE_TIMERS,
    SCHEDULED_CHANGE_BYTES,
    TRANSITION_BYTES,
    Simulation,
    SimulationResult,
)
from .progression import batched_progression_step, schedule_entries
from .states import (
    DiscreteDwell,
    FixedDwell,
    NormalDwell,
    inverse_normal_cdf,
    inverse_normal_cdf_scalar,
)
from .transmission import (
    FRONTIER_DENSE_CROSSOVER,
    MINUTES_PER_DAY,
    TransmissionBackend,
    _frontier_candidates,
    _sample_transmissions,
    batched_dense_candidates,
    dense_candidate_tables,
)

#: Per-phase timers (``batch.<name>``) the batched driver publishes — the
#: stacked-kernel counterpart of the engine's Figure 7 breakdown.
BATCH_TIMERS: tuple[str, ...] = (
    "interventions_s",
    "transmission_s",
    "progression_s",
    "census_s",
)

#: How much cheaper one stacked dense scan is, per auto lane, than a solo
#: dense scan — the dense kernel's cost is one dispatch for the whole
#: batch plus per-element arithmetic, while the frontier kernel pays a
#: fixed per-lane gather cost K times.  ``auto`` inside a batch therefore
#: abandons frontier at a per-lane workload of roughly ``1 / (A * K)`` of
#: the solo crossover, where K is the number of auto lanes (measured on
#: scaled state networks; at K=16 frontier only wins in the first few
#: seeded ticks).
BATCH_DENSE_AMORTIZATION: float = 4.0


class BatchIncompatible(ValueError):
    """The given lanes cannot share one batched tick loop.

    Raised on construction when lanes disagree on assets, tick position,
    or state-space size.  Callers (the parallel fan-out) treat this as a
    signal to fall back to per-instance serial execution.
    """


def _dwell_equal(a, b) -> bool:
    """Value equality of two dwell-time distributions."""
    if type(a) is not type(b):
        return False
    if isinstance(a, FixedDwell):
        return a.days == b.days
    if isinstance(a, NormalDwell):
        return a.mu == b.mu and a.sd == b.sd
    if isinstance(a, DiscreteDwell):
        return a.days == b.days and a.probs == b.probs
    return a is b


def _dwell_key(d):
    """Hashable value identity of a dwell distribution (for dedup)."""
    if isinstance(d, FixedDwell):
        return ("f", d.days)
    if isinstance(d, NormalDwell):
        return ("n", d.mu, d.sd)
    if isinstance(d, DiscreteDwell):
        return ("d", d.days, d.probs)
    return id(d)


class _SchedTables:
    """Padded global tables for the cross-lane batched scheduler.

    Every per-state choice/dwell lookup is flattened into arrays indexed
    by ``(code, lane, edge, age)`` so one gather serves entries of every
    state at once:

    - ``cum_pad``: ``(n_states, K, n_out_max, n_age)`` cumulative choice
      columns, padded with ``+inf`` (never selected).  Single-edge states
      are all-``inf`` — their choice is forced to edge 0, exactly like the
      solo scheduler's short-circuit.
    - ``top``: ``(n_states, K, n_age)`` — each state's last cumulative
      value (the solo scheduler's ``cum[-1]`` normaliser).
    - ``dst_pad`` / ``dist_id``: ``(n_states, n_out_max)`` destination
      codes and indices into ``dists``, the value-deduplicated dwell
      distributions (lanes must agree on dwell values; dedup means e.g.
      both EXPOSED out-edges' Normal(5, 1) evaluate as one batch).
    """

    __slots__ = ("has_out", "cum_pad", "top", "dst_pad", "dist_id",
                 "dists", "n_out_max", "fam", "fixed_days", "mu", "sd",
                 "other_dists")

    def __init__(self, lanes) -> None:
        first = lanes[0].model
        n_states = first.n_states
        k = len(lanes)
        outs = {c: first.out_edges[c] for c in first.out_edges}
        n_out_max = max(
            (len(o[2]) for o in outs.values()), default=1)
        n_age = next(
            (first.out_cum[c].shape[1] for c in outs), 1)
        self.has_out = np.zeros(n_states, dtype=bool)
        self.cum_pad = np.full(
            (n_states, k, n_out_max, n_age), np.inf, dtype=np.float64)
        self.top = np.zeros((n_states, k, n_age), dtype=np.float64)
        self.dst_pad = np.full((n_states, n_out_max), -1, dtype=np.int8)
        self.dist_id = np.zeros((n_states, n_out_max), dtype=np.int64)
        self.dists: list = []
        self.n_out_max = n_out_max
        keymap: dict = {}
        for code, (dsts, _probs, dwells) in outs.items():
            n_out = len(dwells)
            self.has_out[code] = True
            for i, sim in enumerate(lanes):
                cum = sim.model.out_cum[code]
                self.top[code, i] = cum[-1]
                if n_out > 1:
                    self.cum_pad[code, i, :n_out] = cum
            self.dst_pad[code, :n_out] = dsts
            self.dst_pad[code, n_out:] = dsts[-1]
            for e, dw in enumerate(dwells):
                key = _dwell_key(dw)
                if key not in keymap:
                    keymap[key] = len(self.dists)
                    self.dists.append(dw)
                self.dist_id[code, e] = keymap[key]
            self.dist_id[code, n_out:] = self.dist_id[code, n_out - 1]
        # Family split so the whole batch's dwell draws evaluate in a
        # constant number of vectorised passes: fixed is a table lookup,
        # all normals share one CDF inversion (parametrised by gathered
        # mu/sd), anything else (discrete, custom) loops per distinct
        # distribution — family code 2.
        fams, days, mus, sds = [], [], [], []
        self.other_dists: list = []
        for d_id, dw in enumerate(self.dists):
            if isinstance(dw, FixedDwell):
                fams.append(0), days.append(dw.days)
                mus.append(0.0), sds.append(0.0)
            elif isinstance(dw, NormalDwell):
                fams.append(1), days.append(0)
                mus.append(dw.mu), sds.append(dw.sd)
            else:
                fams.append(2), days.append(0)
                mus.append(0.0), sds.append(0.0)
                self.other_dists.append((d_id, dw))
        self.fam = np.asarray(fams, dtype=np.int8)
        self.fixed_days = np.asarray(days, dtype=np.int32)
        self.mu = np.asarray(mus, dtype=np.float64)
        self.sd = np.asarray(sds, dtype=np.float64)


def _build_sched_tables(lanes):
    """Shared scheduling tables, or ``None`` if lanes are incompatible.

    Lanes may differ in transition *probabilities* (calibration moves the
    symptomatic fraction) but must agree on the PTTS graph structure and
    dwell-distribution values so the padded tables and canonical dwell
    objects serve every lane; on disagreement callers fall back to
    per-lane scheduling.
    """
    first = lanes[0].model
    for code in range(first.n_states):
        out0 = first.out_edges.get(code)
        for sim in lanes[1:]:
            out = sim.model.out_edges.get(code)
            if (out0 is None) != (out is None):
                return None
            if out0 is None:
                continue
            if (not np.array_equal(out0[0], out[0])
                    or sim.model.out_cum[code].shape
                    != first.out_cum[code].shape
                    or len(out0[2]) != len(out[2])
                    or any(not _dwell_equal(x, y)
                           for x, y in zip(out0[2], out[2]))):
                return None
    return _SchedTables(lanes)


def _tables_shared(a, b) -> bool:
    """Whether two models share the arrays the propensity kernel reads."""
    if a is b:
        return True
    return (
        np.array_equal(a.susceptibility, b.susceptibility)
        and np.array_equal(a.infectivity, b.infectivity)
        and np.array_equal(a.omega, b.omega)
    )


class BatchedSimulation:
    """Advance K replicate :class:`Simulation` lanes through shared ticks.

    Lanes must share their population and network objects (same region
    assets), sit at the same tick, and have models with equal state-space
    size; seeds, cell parameters (model transmissibility, symptomatic
    fraction), interventions, and backends may differ per lane.

    After construction each lane's ``health``, ``sched.dwell``,
    ``sched.next_state``, ``suppressor.count``, ``edge_weight``,
    ``node_susceptibility``, and ``node_infectivity`` arrays are row views
    into stacks owned by this driver; the lanes remain fully functional
    Simulations and assemble their own per-replicate results.
    """

    def __init__(
        self,
        lanes: list[Simulation],
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not lanes:
            raise BatchIncompatible("batched simulation needs at least one lane")
        first = lanes[0]
        for sim in lanes[1:]:
            if sim.pop is not first.pop or sim.net is not first.net:
                raise BatchIncompatible(
                    "lanes must share population and network assets")
            if sim.tick != first.tick:
                raise BatchIncompatible("lanes must sit at the same tick")
            if sim.model.n_states != first.model.n_states:
                raise BatchIncompatible(
                    "lane models must share a state-space size")
        self.lanes = list(lanes)
        k = len(self.lanes)
        n = first.pop.size
        e = first.net.n_edges
        self._n_edges = e
        self._n_states = first.model.n_states

        # Stack the per-lane state and rebind the lanes to row views; all
        # existing state (mid-run batching included) is preserved.  NPIs
        # mutate these arrays only in place, so the views stay live.
        self._health = np.empty((k, n), dtype=np.int8)
        self._dwell = np.empty((k, n), dtype=np.int32)
        self._next_state = np.empty((k, n), dtype=np.int8)
        self._supp_count = np.empty((k, e), dtype=np.int16)
        self._edge_weight = np.empty((k, e), dtype=np.float64)
        self._node_sus = np.empty((k, n), dtype=np.float64)
        self._node_inf = np.empty((k, n), dtype=np.float64)
        for i, sim in enumerate(self.lanes):
            self._health[i] = sim.health
            self._dwell[i] = sim.sched.dwell
            self._next_state[i] = sim.sched.next_state
            self._supp_count[i] = sim.suppressor.count
            self._edge_weight[i] = sim.edge_weight
            self._node_sus[i] = sim.node_susceptibility
            self._node_inf[i] = sim.node_infectivity
            sim.health = self._health[i]
            sim.sched.dwell = self._dwell[i]
            sim.sched.next_state = self._next_state[i]
            sim.suppressor.count = self._supp_count[i]
            sim.edge_weight = self._edge_weight[i]
            sim.node_susceptibility = self._node_sus[i]
            sim.node_infectivity = self._node_inf[i]

        # Flat aliases for lane-offset indexing (row-major views).
        self._health_flat = self._health.reshape(-1)
        self._dwell_flat = self._dwell.reshape(-1)
        self._next_flat = self._next_state.reshape(-1)
        self._node_sus_flat = self._node_sus.reshape(-1)
        self._node_inf_flat = self._node_inf.reshape(-1)
        self._lane_arange = np.arange(k, dtype=np.int64)
        self._lane_offsets = self._lane_arange * n
        self._n_pop = n

        # Shared per-code scheduling tables for the cross-lane scheduler;
        # None when lane models disagree structurally (falls back to
        # per-lane ``schedule_entries``, still bit-identical).
        self._sched_tables = _build_sched_tables(self.lanes)

        # When every lane reads the same sigma / iota / omega tables the
        # whole batch shares one Eq. 1 propensity evaluation; calibration
        # sweeps hit this (TAU moves the scalar transmissibility, SYMP the
        # progression probabilities — neither touches these tables).
        self._shared_tables = all(
            _tables_shared(sim.model, first.model) for sim in self.lanes[1:])
        # Shared susceptible-state -> exposed-state mapping lets the fired
        # transmissions of all lanes resolve their entry codes in one
        # stacked gather.
        self._exposed_shared = self._shared_tables and all(
            np.array_equal(sim.model.exposed_of, first.model.exposed_of)
            for sim in self.lanes[1:])

        # One incident CSR serves every lane (it is read-only and the
        # lanes share the network); build it eagerly so frontier/auto
        # resolution never pays the lazy construction mid-run.
        incident = first.incident
        for sim in self.lanes:
            sim._incident = incident
        self._incident = incident
        self._degrees = incident.degrees
        self._duration_f64 = first._duration_f64

        # Per-tick scratch stacks (allocated once, reused every tick), plus
        # the static doubled-edge lookups the stacked dense scan indexes.
        self._cand_tables = dense_candidate_tables(
            first.net.source, first.net.target, self._duration_f64)
        self._cand_scratch = np.empty((2, k, 2 * e), dtype=bool)
        self._active = np.empty((k, e), dtype=bool)
        self._sus = np.empty((k, n), dtype=bool)
        self._inf = np.empty((k, n), dtype=bool)
        self._workload_scratch = np.empty((k, n), dtype=np.float64)
        self._census_scratch = np.empty((k, n), dtype=np.int32)
        self._census_offsets = (
            np.arange(k, dtype=np.int32) * self._n_states)[:, None]

        # Lanes share the network, so their base edge-activity copies are
        # equal byte for byte; one row then serves the whole stacked
        # active-mask evaluation.  (Nothing mutates base_active — NPIs act
        # through the suppressor — but verify, cheaply, once.)
        self._base_active = (
            first.base_active
            if all(np.array_equal(sim.base_active, first.base_active)
                   for sim in self.lanes[1:])
            else None)

        # Census bookkeeping is deferred: per-tick snapshots of the cheap
        # python counters accumulate here and expand into each lane's
        # counts / memory history once, at the end of the run (nothing
        # reads those histories mid-run; results are assembled after).
        self._census_rows: list[np.ndarray] = []
        self._pend_snap: list[list[int]] = []
        self._trans_snap: list[list[int]] = []
        self._ops_snap: list[list[int]] = []

        # Per-lane work counters kept as plain python ints during the run
        # and flushed into each lane's ``engine.*`` registry at the end —
        # registry increments are dict lookups and cost more than the
        # counting itself at K-lane per-tick frequency.
        self._ct_contacts = [0] * k
        self._ct_transitions = [0] * k
        self._ct_transmissions = [0] * k
        self._ct_iv_fired = [0] * k
        self._ct_iv_ops = [0] * k
        #: transitions already in each lane's registry when batching began
        #: (seeding, pre-batch solo ticks) — the deferred memory estimate
        #: adds the live python counter on top of this base.
        self._trans_base = [
            sim.metrics.value("engine.transitions") for sim in self.lanes]

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.declare("batch.size", GAUGE)
        self.metrics.gauge("batch.size", k)
        for name in BATCH_TIMERS:
            self.metrics.declare(f"batch.{name}", TIMER)
        #: batch phase seconds already credited back to the lanes'
        #: ``engine.*_s`` timers (supports repeated :meth:`run` calls on
        #: one batch without double counting).
        self._timer_flushed = {name: 0.0 for name in ENGINE_TIMERS}

    @property
    def n_lanes(self) -> int:
        """Number of replicate lanes in the batch."""
        return len(self.lanes)

    def _resolve_backends(self) -> list[TransmissionBackend]:
        """Per-lane kernel choice for this tick (``auto`` resolved).

        All ``auto`` lanes resolve *together*: frontier while the summed
        frontier workload of the auto lanes stays below the solo crossover
        threshold, dense afterwards.  Either kernel yields bit-identical
        events, so grouping the decision is free correctness-wise and
        keeps the candidate scan a single stacked dense pass once any
        meaningful fraction of the batch has left the early-epidemic
        regime (K per-lane frontier gathers pay K dispatch overheads; the
        stacked dense scan pays one).
        """
        resolved = [sim.backend for sim in self.lanes]
        auto = [i for i, b in enumerate(resolved)
                if b is TransmissionBackend.AUTO]
        if auto:
            np.copyto(self._workload_scratch, self._inf, casting="unsafe")
            workloads = self._workload_scratch @ self._degrees
            mean = float(workloads[auto].sum()) / len(auto)
            threshold = (FRONTIER_DENSE_CROSSOVER * self._n_edges
                         / (BATCH_DENSE_AMORTIZATION * len(auto)))
            choice = (TransmissionBackend.FRONTIER if mean <= threshold
                      else TransmissionBackend.DENSE)
            for i in auto:
                resolved[i] = choice
        return resolved

    def _candidate_segments(self, resolved):
        """Per-lane candidate contacts as one lane-concatenated flat batch.

        Returns ``(sus, inf, dur, w, counts)`` with lane segments in lane
        order; ``counts[i]`` is lane i's candidate count (its solo
        ``n_candidates``).  Dense lanes are enumerated by one stacked
        scan; frontier lanes gather per lane (their work is tiny by
        construction when frontier is chosen).
        """
        net = self.lanes[0].net
        k = len(self.lanes)
        dense = [i for i, b in enumerate(resolved)
                 if b is not TransmissionBackend.FRONTIER]
        if len(dense) == k:
            return batched_dense_candidates(
                self._sus, self._inf, net.source, net.target,
                self._active, self._edge_weight, self._duration_f64,
                tables=self._cand_tables, scratch=self._cand_scratch)

        seg: list[tuple | None] = [None] * k
        counts = np.zeros(k, dtype=np.int64)
        if dense:
            sel = np.asarray(dense)
            d_sus, d_inf, d_dur, d_w, d_counts = batched_dense_candidates(
                self._sus[sel], self._inf[sel], net.source, net.target,
                self._active[sel], self._edge_weight[sel],
                self._duration_f64, tables=self._cand_tables,
                scratch=self._cand_scratch[:, :len(dense)])
            offs = np.concatenate(([0], np.cumsum(d_counts)))
            for j, i in enumerate(dense):
                lo, hi = offs[j], offs[j + 1]
                seg[i] = (d_sus[lo:hi], d_inf[lo:hi], d_dur[lo:hi],
                          d_w[lo:hi])
                counts[i] = d_counts[j]
        for i, backend in enumerate(resolved):
            if backend is not TransmissionBackend.FRONTIER:
                continue
            sim = self.lanes[i]
            cand = _frontier_candidates(
                sim.model, sim.health, self._inf[i],
                np.flatnonzero(self._inf[i]), self._incident,
                net.source, net.target, self._active[i],
                sim.edge_weight, self._duration_f64)
            if cand is not None:
                seg[i] = cand
                counts[i] = cand[0].shape[0]
        parts = [s for s in seg if s is not None]
        if not parts:
            empty = np.empty(0, np.int64)
            return (empty, empty, np.empty(0, np.float64),
                    np.empty(0, np.float64), counts)
        return (
            np.concatenate([s[0] for s in parts]),
            np.concatenate([s[1] for s in parts]),
            np.concatenate([s[2] for s in parts]),
            np.concatenate([s[3] for s in parts]),
            counts,
        )

    def _batched_propensities(self, sus_cat, inf_cat, dur_cat, w_cat, counts):
        """Eq. 1 firing probabilities for the whole flat candidate batch.

        Requires shared model tables.  The arithmetic chain matches
        :func:`~repro.epihiper.transmission._sample_transmissions` term
        for term (float multiplication is order-sensitive), so each lane's
        slice of ``p`` is bit-identical to its solo propensities.
        """
        model = self.lanes[0].model
        rep = np.repeat(self._lane_offsets, counts)
        gsus = sus_cat + rep
        ginf = inf_cat + rep
        hs = self._health_flat[gsus]
        hi = self._health_flat[ginf]
        sigma = model.susceptibility[hs] * self._node_sus_flat[gsus]
        iota = model.infectivity[hi] * self._node_inf_flat[ginf]
        omega = model.omega[hs, hi]
        rho = (dur_cat / MINUTES_PER_DAY) * w_cat * sigma * iota * omega
        rho *= np.repeat(
            np.array([sim.model.transmissibility for sim in self.lanes]),
            counts)
        return -np.expm1(-rho)

    def _apply_entries(self, entries) -> None:
        """Batched :meth:`Simulation.enter_state` over several lanes.

        ``entries`` is ``[(lane, pids, codes, infectors-or-None), ...]``
        in lane order; pids are int64, codes int8 (the dtypes
        ``TransitionRecorder.record`` would coerce to).  One flat write
        updates every lane's health row; recording and next-hop
        scheduling (the RNG consumer) then run per lane, exactly as the
        lane's own ``enter_state`` would.
        """
        if not entries:
            return
        sizes = [entry[1].shape[0] for entry in entries]
        total = sum(sizes)
        if len(entries) == 1:
            lane, pids, codes, infectors = entries[0]
            pids_cat, codes_cat = pids, codes
            flat = pids + self._lane_offsets[lane]
            inf_cat = (infectors if infectors is not None
                       else np.full(total, -1, dtype=np.int64))
        else:
            pids_cat = np.concatenate([entry[1] for entry in entries])
            codes_cat = np.concatenate([entry[2] for entry in entries])
            flat = pids_cat + np.repeat(
                self._lane_offsets[[entry[0] for entry in entries]], sizes)
            inf_cat = np.concatenate([
                entry[3] if entry[3] is not None
                else np.full(entry[1].shape[0], -1, dtype=np.int64)
                for entry in entries])
        self._health_flat[flat] = codes_cat
        ticks = np.full(total, self.lanes[0].tick, dtype=np.int32)
        off = 0
        for (lane, pids, codes, _), size in zip(entries, sizes):
            sim = self.lanes[lane]
            sim.recorder.record_chunks(
                ticks[off:off + size], pids, codes, inf_cat[off:off + size])
            self._ct_transitions[lane] += size
            off += size
        if self._sched_tables is None or len(entries) < 4:
            # Few lanes fired (or incompatible models): the per-lane
            # scheduler's python is cheaper than the batched machinery.
            for lane, pids, codes, _ in entries:
                sim = self.lanes[lane]
                schedule_entries(sim.model, sim.sched, pids, codes,
                                 sim.pop.age_group, sim.rng)
        else:
            lane_cat = np.repeat(
                np.asarray([entry[0] for entry in entries], dtype=np.int64),
                sizes)
            self._schedule_batch(lane_cat, pids_cat, codes_cat)

    def _apply_flat(self, sizes, pids_cat, codes_cat, inf_cat) -> None:
        """Batched ``enter_state`` from lane-major flat entry arrays.

        ``sizes[i]`` is lane i's entry count; ``pids_cat``/``codes_cat``
        are the per-lane entries concatenated in lane order (each lane's
        solo order).  ``inf_cat`` is the flat infector column or ``None``
        for progression entries.  One flat write updates every lane's
        health row; recording runs per lane (each lane owns its
        recorder), and next-hop scheduling goes through the cross-lane
        batched scheduler when the lane models share tables.
        """
        total = pids_cat.shape[0]
        if total == 0:
            return
        sl = sizes.tolist()
        lane_rep = np.repeat(self._lane_arange, sizes)
        flat = pids_cat + lane_rep * self._n_pop
        self._health_flat[flat] = codes_cat
        ticks = np.full(total, self.lanes[0].tick, dtype=np.int32)
        if inf_cat is None:
            inf_cat = np.full(total, -1, dtype=np.int64)
        off = 0
        active = 0
        for i, n_k in enumerate(sl):
            if n_k == 0:
                continue
            active += 1
            sim = self.lanes[i]
            sim.recorder.record_chunks(
                ticks[off:off + n_k], pids_cat[off:off + n_k],
                codes_cat[off:off + n_k], inf_cat[off:off + n_k])
            self._ct_transitions[i] += n_k
            off += n_k
        if self._sched_tables is None or active < 4:
            off = 0
            for i, n_k in enumerate(sl):
                if n_k == 0:
                    continue
                sim = self.lanes[i]
                schedule_entries(
                    sim.model, sim.sched, pids_cat[off:off + n_k],
                    codes_cat[off:off + n_k], sim.pop.age_group, sim.rng)
                off += n_k
        else:
            self._schedule_batch(lane_rep, pids_cat, codes_cat)

    def _schedule_batch(self, lane_cat, pids_cat, codes_cat) -> None:
        """Cross-lane vectorised twin of per-lane ``schedule_entries``.

        Exploits the dwell families' one-uniform-per-draw contract: a
        (lane, code) group of ``n`` entries consumes exactly ``2n``
        uniforms (``n`` edge choices, then ``n`` dwell draws ordered by
        chosen edge), so each group's block is pre-drawn in a single
        generator call — per lane in ascending-code order, the solo
        stream layout — and every choice comparison and dwell-value
        transform then runs vectorised over all lanes at once.  Outputs
        are bit-identical to K solo ``schedule_entries`` calls.
        """
        k = len(self.lanes)
        t = self._sched_tables
        n_states = self._n_states
        m_all = pids_cat.shape[0]
        # (lane, code)-major stable sort: each lane's groups come out in
        # ascending-code order (the solo scheduler's visit order, which is
        # also the lane's stream-consumption order) with original person
        # order preserved inside each group — the solo grouping.
        key = lane_cat * n_states + codes_cat
        if bool((key[1:] >= key[:-1]).all()):
            # Already (lane, code)-grouped — the transmission path always
            # is (one entry code per lane, lanes ascending).
            s_key, s_lane, s_pid, s_code = key, lane_cat, pids_cat, codes_cat
        else:
            order = np.argsort(key, kind="stable")
            s_key = key[order]
            s_lane = lane_cat[order]
            s_pid = pids_cat[order]
            s_code = codes_cat[order]
        cuts = np.flatnonzero(s_key[1:] != s_key[:-1]) + 1
        bounds = np.concatenate(([0], cuts, [m_all]))
        g_start = bounds[:-1]
        g_size = np.diff(bounds)
        g_lane = s_lane[g_start]
        g_out = t.has_out[s_code[g_start]]

        # Draw phase: each non-terminal group owns a contiguous 2n slice
        # of the buffer (n choice uniforms, then n dwell uniforms).
        # Groups are lane-major, so one generator call per lane fills all
        # its slices — a single ``random(out=...)`` over consecutive
        # blocks consumes the stream exactly like the solo scheduler's
        # sequence of smaller per-group draws.
        draw_sizes = np.where(g_out, 2 * g_size, 0)
        g_ustart = np.concatenate(([0], np.cumsum(draw_sizes)))
        total_draw = int(g_ustart[-1])
        g_ustart = g_ustart[:-1]
        ubuf = np.empty(total_draw, dtype=np.float64)
        lane_first = np.flatnonzero(
            np.concatenate(([True], g_lane[1:] != g_lane[:-1])))
        ext = np.append(g_ustart[lane_first], total_draw).tolist()
        for j, lane in enumerate(g_lane[lane_first].tolist()):
            lo, hi = ext[j], ext[j + 1]
            if hi > lo:
                self.lanes[lane].rng.random(out=ubuf[lo:hi])

        # Transform phase: one vectorised pass over every lane and code
        # at once, via the padded (code, lane, edge, age) tables.
        flat_idx = s_lane * self._n_pop + s_pid
        was = self._dwell_flat[flat_idx] > 0
        pend_minus = (np.bincount(s_lane[was], minlength=k)
                      if was.any() else None)
        p_gid = np.repeat(np.arange(g_start.shape[0]), g_size)
        p_out = g_out[p_gid]
        all_out = bool(p_out.all())
        if not all_out:
            # Terminal entries: clear any schedule.
            term = ~p_out
            self._dwell_flat[flat_idx[term]] = 0
            self._next_flat[flat_idx[term]] = -1
            sel = np.flatnonzero(p_out)
            if sel.size:
                s_lane, s_pid, s_code = s_lane[sel], s_pid[sel], s_code[sel]
                flat_idx, p_gid = flat_idx[sel], p_gid[sel]
        if all_out or sel.size:
            # Local position of each person inside its group: its global
            # sorted index minus the group's start (``sel`` IS the global
            # sorted index once terminal entries were filtered out).
            if all_out:
                within = np.arange(m_all, dtype=np.int64) - g_start[p_gid]
            else:
                within = sel - g_start[p_gid]
            ustarts = g_ustart[p_gid]
            u = ubuf[ustarts + within]
            ages = self.lanes[0].pop.age_group[s_pid]
            u2 = u * t.top[s_code, s_lane, ages]
            # Padded columns are +inf (single-edge states entirely so),
            # so the count-of-crossed-thresholds is exactly the solo
            # scheduler's choice for every state at once.
            cum_cols = t.cum_pad[s_code, s_lane, :, ages]
            choice = (u2[:, None] >= cum_cols).sum(axis=1)
            # Solo draws dwells per chosen edge in ascending-edge order
            # inside each group; a stable sort by (group, choice) ranks
            # persons in exactly that consumption order.  Groups occupy
            # the same contiguous ranges sorted as unsorted (group is the
            # major key), so the stream indices below serve sorted
            # positions too.
            ord2 = np.argsort(p_gid * t.n_out_max + choice, kind="stable")
            dwell_u = np.empty(choice.shape[0], dtype=np.float64)
            dwell_u[ord2] = ubuf[ustarts + g_size[p_gid] + within]
            did = t.dist_id[s_code, choice]
            fam = t.fam[did]
            vals = np.empty(choice.shape[0], dtype=np.int32)
            mk = fam == 0
            if mk.any():
                vals[mk] = t.fixed_days[did[mk]]
            mk = fam == 1
            n_norm = int(mk.sum())
            if n_norm:
                # One CDF inversion for every normal draw in the batch,
                # parametrised by gathered mu/sd — elementwise identical
                # to each dist's own values_from_uniforms (small subsets
                # take the bit-identical scalar twin, mirroring its
                # small-batch path's cost profile).
                sub = did[mk]
                u_n = dwell_u[mk]
                if n_norm <= 24:
                    mus = t.mu[sub].tolist()
                    sds = t.sd[sub].tolist()
                    vals[mk] = np.asarray(
                        [max(1, round(m_ + s_ * inverse_normal_cdf_scalar(v)))
                         for m_, s_, v in zip(mus, sds, u_n.tolist())],
                        dtype=np.int32)
                else:
                    draws = t.mu[sub] + t.sd[sub] * inverse_normal_cdf(u_n)
                    vals[mk] = np.maximum(1, np.rint(draws)).astype(np.int32)
            for d_id, dist in t.other_dists:
                mask = did == d_id
                if mask.any():
                    vals[mask] = dist.values_from_uniforms(dwell_u[mask])
            self._next_flat[flat_idx] = t.dst_pad[s_code, choice]
            self._dwell_flat[flat_idx] = vals
            pos = vals > 0
            pend_plus = (np.bincount(s_lane[pos], minlength=k)
                         if pos.any() else None)
        else:
            pend_plus = None
        if pend_minus is not None or pend_plus is not None:
            for i, sim in enumerate(self.lanes):
                delta = ((int(pend_plus[i]) if pend_plus is not None else 0)
                         - (int(pend_minus[i])
                            if pend_minus is not None else 0))
                if delta:
                    sim.sched.n_pending += delta

    def step(self) -> None:
        """Advance every lane one tick.

        Phase order matches :meth:`Simulation.step` per lane
        (interventions, transmission, progression, census); within each
        phase the RNG-free work runs over the stacks and the
        RNG-consuming tails run per lane in lane order.
        """
        first = self.lanes[0]

        with self.metrics.timer("batch.interventions_s"):
            for i, sim in enumerate(self.lanes):
                ops_before = sim.suppressor.total_operations
                for iv in sim.interventions:
                    if iv.maybe_apply(sim):
                        self._ct_iv_fired[i] += 1
                self._ct_iv_ops[i] += (
                    sim.suppressor.total_operations - ops_before)

        with self.metrics.timer("batch.transmission_s"):
            if self._shared_tables:
                np.take(first.model.is_susceptible, self._health,
                        out=self._sus)
                np.take(first.model.is_infectious, self._health,
                        out=self._inf)
            else:
                for i, sim in enumerate(self.lanes):
                    self._sus[i] = sim.model.is_susceptible[sim.health]
                    self._inf[i] = sim.model.is_infectious[sim.health]
            if self._base_active is not None:
                # Stacked twin of EdgeSuppressor.active_mask_into.
                np.equal(self._supp_count, 0, out=self._active)
                np.logical_and(self._active, self._base_active,
                               out=self._active)
            else:
                for i, sim in enumerate(self.lanes):
                    sim.suppressor.active_mask_into(
                        sim.base_active, self._active[i])

            resolved = self._resolve_backends()
            sus_cat, inf_cat, dur_cat, w_cat, counts = (
                self._candidate_segments(resolved))

            if self._shared_tables and self._exposed_shared:
                total = int(sus_cat.shape[0])
                if total:
                    p = self._batched_propensities(
                        sus_cat, inf_cat, dur_cat, w_cat, counts)
                    # One uniform block per lane, drawn into contiguous
                    # slices of a flat buffer (``Generator.random(out=...)``
                    # consumes the stream exactly like ``random(n)``), then
                    # a single whole-batch Bernoulli compare and a single
                    # reduceat for the per-lane fire counts.
                    cl = counts.tolist()
                    u = np.empty(total, dtype=np.float64)
                    starts = []
                    lane_ids = []
                    off = 0
                    for i, n_k in enumerate(cl):
                        self._ct_contacts[i] += n_k
                        if n_k:
                            starts.append(off)
                            lane_ids.append(i)
                            self.lanes[i].rng.random(out=u[off:off + n_k])
                            off += n_k
                    fired_flat = u < p
                    n_fired = np.add.reduceat(fired_flat, starts).tolist()
                    # Fired contacts, extracted for all lanes at once.
                    # Only the shuffle permutation is per lane (each
                    # lane's own generator, its solo bytes); the shuffled
                    # gather, the first-exposure dedup, and the entry-code
                    # lookup run on the lane-keyed flat arrays — unique on
                    # ``lane * N + pid`` is the per-lane uniques
                    # concatenated, first occurrences included.
                    f_sus = sus_cat[fired_flat]
                    f_inf = inf_cat[fired_flat]
                    perm_parts = []
                    part_lanes = []
                    for i, nf in zip(lane_ids, n_fired):
                        if nf:
                            perm_parts.append(
                                self.lanes[i].rng.permutation(nf))
                            part_lanes.append(i)
                    if perm_parts:
                        if len(perm_parts) == 1:
                            perm_cat = perm_parts[0]
                            lane_rep_f = np.full(
                                perm_cat.shape[0], part_lanes[0],
                                dtype=np.int64)
                        else:
                            psizes = [q.shape[0] for q in perm_parts]
                            perm_cat = np.concatenate(perm_parts)
                            perm_cat += np.repeat(
                                np.concatenate(
                                    ([0], np.cumsum(psizes)[:-1])), psizes)
                            lane_rep_f = np.repeat(
                                np.asarray(part_lanes, dtype=np.int64),
                                psizes)
                        f_sus = f_sus[perm_cat]
                        f_inf = f_inf[perm_cat]
                        key = lane_rep_f * self._n_pop + f_sus
                        uniq_key, first_idx = np.unique(
                            key, return_index=True)
                        codes_cat = first.model.exposed_of[
                            self._health_flat[uniq_key]]
                        lane_u = uniq_key // self._n_pop
                        pids_cat = uniq_key - lane_u * self._n_pop
                        tsizes = np.bincount(
                            lane_u, minlength=len(self.lanes))
                        for i, c in enumerate(tsizes.tolist()):
                            if c:
                                self._ct_transmissions[i] += c
                        self._apply_flat(tsizes, pids_cat, codes_cat,
                                         f_inf[first_idx])
            else:
                entries = []
                off = 0
                for i, sim in enumerate(self.lanes):
                    n_k = int(counts[i])
                    self._ct_contacts[i] += n_k
                    if n_k == 0:
                        continue
                    events = _sample_transmissions(
                        sim.model, sim.health, sim.node_susceptibility,
                        sim.node_infectivity, sus_cat[off:off + n_k],
                        inf_cat[off:off + n_k], dur_cat[off:off + n_k],
                        w_cat[off:off + n_k], sim.rng)
                    off += n_k
                    if events.pids.size:
                        self._ct_transmissions[i] += int(events.pids.size)
                        entries.append((i, events.pids,
                                        events.exposed_codes,
                                        events.infectors))
                self._apply_entries(entries)

        with self.metrics.timer("batch.progression_s"):
            sizes, pids_flat, codes_flat, n_hit = batched_progression_step(
                self._dwell, self._next_state)
            for i, nh in enumerate(n_hit.tolist()):
                if nh:
                    self.lanes[i].sched.n_pending -= nh
            if pids_flat.size:
                self._apply_flat(sizes, pids_flat, codes_flat, None)

        with self.metrics.timer("batch.census_s"):
            np.add(self._health, self._census_offsets,
                   out=self._census_scratch)
            counts = np.bincount(
                self._census_scratch.ravel(),
                minlength=len(self.lanes) * self._n_states,
            ).reshape(len(self.lanes), self._n_states)
            # Snapshot the python counters the deferred census needs;
            # everything expands into per-lane history at flush time.
            self._census_rows.append(counts)
            self._pend_snap.append(
                [sim.suppressor.n_suppressed + sim.sched.n_pending
                 for sim in self.lanes])
            self._trans_snap.append(list(self._ct_transitions))
            self._ops_snap.append(
                [sim.suppressor.total_operations for sim in self.lanes])
            for sim in self.lanes:
                sim.tick += 1

    def run(self, n_days: int) -> list[SimulationResult]:
        """Run ``n_days`` ticks and assemble one result per lane.

        Each lane's :class:`SimulationResult` is bit-identical to what the
        lane would produce solo (timer metrics excepted — they measure
        wall clock).  The driver times each phase once per tick under
        ``batch.*_s`` and, at flush, credits every lane an equal
        ``total / K`` share across its ticks under the solo ``engine.*_s``
        names, so the Fig. 7 phase breakdown (and its tick counts) stays
        populated when runs go batched.
        """
        if n_days < 0:
            raise ValueError("n_days must be non-negative")
        self.begin()
        for _ in range(n_days):
            self.step()
        self.flush(n_days)
        return self.finish()

    # -- checkpoint hooks --------------------------------------------------------

    def begin(self) -> None:
        """Record each lane's tick-0 census row once (idempotent)."""
        for sim in self.lanes:
            sim._ensure_initial_census()

    def flush(self, n_ticks: int) -> None:
        """Drain the deferred per-tick bookkeeping into the lanes.

        Census rows, memory estimates, work counters, and timer shares all
        accumulate cumulatively, so flushing mid-run (before a checkpoint)
        then continuing is byte-identical to one flush at the end.
        ``n_ticks`` is the tick count since the previous flush (timer
        observation counts only).
        """
        self._flush_census()
        self._flush_counters()
        self._flush_timers(n_ticks)

    def finish(self) -> list[SimulationResult]:
        """Assemble one result per lane (state must be flushed first)."""
        return [sim._assemble_result() for sim in self.lanes]

    def save_state(self, *, ticks_since_flush: int = 0) -> list:
        """Snapshot every lane as a list of CAS-ready payloads.

        Flushes the deferred bookkeeping first so each lane's snapshot is
        self-contained (census/memory history and ``engine.*`` counters up
        to the current tick); pass the ticks advanced since the previous
        flush so timer shares keep their observation counts.
        """
        self.flush(ticks_since_flush)
        return [sim.save_state() for sim in self.lanes]

    def restore_state(self, payloads: list) -> int:
        """Apply per-lane :meth:`save_state` payloads; returns the tick.

        Lane state arrays are written in place, so the stacked row views
        stay live.  All lanes must land on the same tick
        (:class:`BatchIncompatible` otherwise — a torn multi-lane
        checkpoint set must not advance unevenly).
        """
        if len(payloads) != len(self.lanes):
            raise BatchIncompatible(
                f"{len(payloads)} checkpoint payloads for "
                f"{len(self.lanes)} lanes")
        ticks = [sim.restore_state(payload)
                 for sim, payload in zip(self.lanes, payloads)]
        if len(set(ticks)) != 1:
            raise BatchIncompatible(
                f"restored lanes disagree on tick: {sorted(set(ticks))}")
        # The deferred bookkeeping the restored registries already carry
        # must not be re-applied on the next flush.
        self._census_rows.clear()
        self._pend_snap.clear()
        self._trans_snap.clear()
        self._ops_snap.clear()
        k = len(self.lanes)
        for cts in (self._ct_contacts, self._ct_transitions,
                    self._ct_transmissions, self._ct_iv_fired,
                    self._ct_iv_ops):
            cts[:] = [0] * k
        self._trans_base = [
            sim.metrics.value("engine.transitions") for sim in self.lanes]
        return ticks[0]

    def _flush_census(self) -> None:
        """Expand the deferred per-tick snapshots into per-lane history.

        The memory estimate is the inline twin of
        ``Simulation._memory_estimate``, evaluated from the counter
        snapshots taken at each tick's census.
        """
        for i, sim in enumerate(self.lanes):
            base_t = self._trans_base[i]
            counts_hist = sim._counts_history
            mem_hist = sim._memory_history
            mem_fixed = sim._mem_base
            for counts, pend, trans, ops in zip(
                    self._census_rows, self._pend_snap,
                    self._trans_snap, self._ops_snap):
                counts_hist.append(counts[i])
                mem_hist.append(
                    mem_fixed
                    + pend[i] * SCHEDULED_CHANGE_BYTES
                    + (base_t + trans[i]) * TRANSITION_BYTES
                    + ops[i] * EDGE_OP_BYTES)
        self._census_rows.clear()
        self._pend_snap.clear()
        self._trans_snap.clear()
        self._ops_snap.clear()

    def _flush_counters(self) -> None:
        """Move the deferred per-lane work counters into ``engine.*``."""
        names_counts = (
            ("engine.contacts_evaluated", self._ct_contacts),
            ("engine.transitions", self._ct_transitions),
            ("engine.transmissions", self._ct_transmissions),
            ("engine.interventions_fired", self._ct_iv_fired),
            ("engine.intervention_edge_ops", self._ct_iv_ops),
        )
        for name, cts in names_counts:
            for i, sim in enumerate(self.lanes):
                if cts[i]:
                    sim.metrics.inc(name, cts[i])
                cts[i] = 0
        self._trans_base = [
            sim.metrics.value("engine.transitions") for sim in self.lanes]

    def _flush_timers(self, n_ticks: int) -> None:
        """Credit each lane its share of the batch phase clocks.

        A lane advanced solo observes each ``engine.*_s`` phase once per
        tick; the batched twin observes each phase once per tick for the
        whole batch under ``batch.*_s``.  Apportioning ``total / K`` per
        lane with ``n_ticks`` observation counts keeps downstream
        reports (``repro trace summarize``'s Fig. 7 table, per-phase
        shares, tick counts) meaningful regardless of which driver ran
        the instance.  Wall-clock only — work counters are exact and
        flushed separately.
        """
        if n_ticks <= 0:
            return
        k = len(self.lanes)
        for name in ENGINE_TIMERS:
            total = self.metrics.value(f"batch.{name}")
            delta = total - self._timer_flushed[name]
            self._timer_flushed[name] = total
            for sim in self.lanes:
                sim.metrics.observe_n(f"engine.{name}", delta / k, n_ticks)
