"""Health states and dwell-time distributions for PTTS disease models.

EpiHiper represents a disease as a *probabilistic timed transition system*
(PTTS, Figure 12): nodes are health states, directed edges carry a transition
probability and a dwell-time distribution, transmissions move susceptible
persons into an exposed state, and progressions move infected persons through
the state machine independently of their contacts (Appendix D).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True, slots=True)
class HealthState:
    """One node of the disease-state machine.

    Attributes:
        name: unique state label ("Symptomatic").
        infectivity: scaling factor iota applied when this person is the
            infectious side of a contact (Table IV); 0 for non-infectious
            states.
        susceptibility: scaling factor sigma applied when this person is the
            susceptible side (Table IV); 0 for non-susceptible states.
        symptomatic: counted in "symptomatic cases" summaries.
        hospitalized: occupies a hospital bed (for resource targets).
        ventilated: occupies a ventilator.
        deceased: terminal death state.
    """

    name: str
    infectivity: float = 0.0
    susceptibility: float = 0.0
    symptomatic: bool = False
    hospitalized: bool = False
    ventilated: bool = False
    deceased: bool = False

    @property
    def infectious(self) -> bool:
        """Whether this state can transmit."""
        return self.infectivity > 0.0

    @property
    def susceptible(self) -> bool:
        """Whether this state can be infected."""
        return self.susceptibility > 0.0


# --- inverse normal CDF (Wichura's AS241, PPND16) ---------------------------

_NDTRI_A = (3.3871328727963666080e0, 1.3314166789178437745e2,
            1.9715909503065514427e3, 1.3731693765509461125e4,
            4.5921953931549871457e4, 6.7265770927008700853e4,
            3.3430575583588128105e4, 2.5090809287301226727e3)
_NDTRI_B = (1.0, 4.2313330701600911252e1, 6.8718700749205790830e2,
            5.3941960214247511077e3, 2.1213794301586595867e4,
            3.9307895800092710610e4, 2.8729085735721942674e4,
            5.2264952788528545610e3)
_NDTRI_C = (1.42343711074968357734e0, 4.63033784615654529590e0,
            5.76949722146069140550e0, 3.64784832476320460504e0,
            1.27045825245236838258e0, 2.41780725177450611770e-1,
            2.27238449892691845833e-2, 7.74545014278341407640e-4)
_NDTRI_D = (1.0, 2.05319162663775882187e0, 1.67638483018380384940e0,
            6.89767334985100004550e-1, 1.48103976427480074590e-1,
            1.51986665636164571966e-2, 5.47593808499534494600e-4,
            1.05075007164441684324e-9)
_NDTRI_E = (6.65790464350110377720e0, 5.46378491116411436990e0,
            1.78482653991729133580e0, 2.96560571828504891230e-1,
            2.65321895265761230930e-2, 1.24266094738807843860e-3,
            2.71155556874348757815e-5, 2.01033439929228813265e-7)
_NDTRI_F = (1.0, 5.99832206555887937690e-1, 1.36929880922735805310e-1,
            1.48753612908506148525e-2, 7.86869131145613259100e-4,
            1.84631831751005468180e-5, 1.42151175831644588870e-7,
            2.04426310338993978564e-15)


def _poly(coeffs: tuple[float, ...], x: np.ndarray) -> np.ndarray:
    acc = np.full_like(x, coeffs[-1])
    for c in reversed(coeffs[:-1]):
        acc *= x
        acc += c
    return acc


def inverse_normal_cdf(u: np.ndarray) -> np.ndarray:
    """Quantile function of the standard normal, elementwise on ``[0, 1)``.

    Wichura's algorithm AS241 (PPND16 variant): rational approximations on
    a central region and two tail regions, accurate to full double
    precision.  Built from elementwise arithmetic, ``sqrt``, and ``log``
    only, so the result for a given input value does not depend on where
    it sits in the array — the property the batched scheduler relies on
    when it evaluates cross-lane concatenations of the per-lane draws.
    ``u == 0`` maps to ``-inf``-free large negatives via a clamp (callers
    floor dwell times at one tick anyway).
    """
    u = np.asarray(u, dtype=np.float64)
    q = u - 0.5
    # Central rational approximation over the full array (~85% of uniform
    # draws land here); the clamp only affects tail entries, whose central
    # values are discarded, and keeps the denominator polynomial away
    # from its sign change.
    r_c = np.maximum(0.180625 - q * q, 0.0)
    x = q * _poly(_NDTRI_A, r_c) / _poly(_NDTRI_B, r_c)

    # Tails (|q| > 0.425): r = sqrt(-log(min(u, 1-u))), evaluated on the
    # tail subset only — elementwise, so subset extraction changes nothing.
    tails = np.flatnonzero(np.abs(q) > 0.425)
    if tails.size:
        q_t = q[tails]
        r_t = np.where(q_t < 0.0, u[tails], 1.0 - u[tails])
        r_t = np.sqrt(-np.log(np.maximum(r_t, 1e-312)))
        near = r_t <= 5.0
        r_n = r_t - 1.6
        r_f = r_t - 5.0
        x_t = np.where(
            near,
            _poly(_NDTRI_C, r_n) / _poly(_NDTRI_D, r_n),
            _poly(_NDTRI_E, r_f) / _poly(_NDTRI_F, r_f))
        x[tails] = np.where(q_t < 0.0, -x_t, x_t)
    return x


def _poly_scalar(coeffs: tuple[float, ...], x: float) -> float:
    acc = coeffs[-1]
    for c in reversed(coeffs[:-1]):
        acc = acc * x + c
    return acc


def inverse_normal_cdf_scalar(u: float) -> float:
    """Scalar twin of :func:`inverse_normal_cdf`, bit-identical.

    Plain-float Horner evaluation: python float arithmetic is the same
    IEEE-754 double arithmetic as numpy's elementwise ufuncs, and
    ``math.sqrt`` matches ``np.sqrt`` (both correctly rounded).  The one
    operation without that guarantee is ``log`` — numpy ships its own —
    so tails call ``np.log`` on the scalar, which runs the same ufunc
    inner loop as the array path.  ``test_states.py`` pins the
    scalar/array identity.
    """
    q = u - 0.5
    if -0.425 <= q <= 0.425:
        r = 0.180625 - q * q
        if r < 0.0:
            r = 0.0
        return q * _poly_scalar(_NDTRI_A, r) / _poly_scalar(_NDTRI_B, r)
    r = u if q < 0.0 else 1.0 - u
    if r < 1e-312:
        r = 1e-312
    r = math.sqrt(-float(np.log(r)))
    if r <= 5.0:
        r -= 1.6
        x = _poly_scalar(_NDTRI_C, r) / _poly_scalar(_NDTRI_D, r)
    else:
        r -= 5.0
        x = _poly_scalar(_NDTRI_E, r) / _poly_scalar(_NDTRI_F, r)
    return -x if q < 0.0 else x


class DwellTime:
    """A dwell-time distribution attached to a PTTS transition.

    The paper's Table III uses three families: fixed times, truncated normal
    times, and discrete distributions over day counts.  All samples are whole
    ticks of at least 1.

    Every family consumes exactly ONE uniform per draw — fixed dwells burn
    one, normal dwells invert the CDF instead of calling ``rng.normal``.
    This makes the scheduler's stream consumption size-deterministic (a
    batch of ``n`` entries always consumes ``2n`` uniforms: ``n`` edge
    choices plus ``n`` dwell draws), which is what lets the batched
    multi-replicate driver pre-draw each lane's block in a single call and
    vectorise the value computation across lanes while staying
    bit-identical to solo runs.
    """

    kind: str

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` dwell times (int32 ticks, each >= 1).

        Equivalent to ``values_from_uniforms(rng.random(n))`` for every
        family — one uniform consumed per draw.
        """
        return self.values_from_uniforms(rng.random(n))

    def values_from_uniforms(self, u: np.ndarray) -> np.ndarray:
        """Map uniforms in ``[0, 1)`` to dwell times (int32, >= 1).

        The pure value half of :meth:`sample`: deterministic, elementwise,
        and independent of array size/position, so callers may evaluate it
        over any concatenation of per-lane uniform blocks.
        """
        raise NotImplementedError

    def sample_one(self, rng: np.random.Generator) -> int:
        """Draw a single dwell time as a plain int.

        Consumes the stream exactly like ``sample(1, rng)`` and returns
        the same value (numpy generators fill a size-1 request with the
        one draw a scalar request makes), without the array round trip —
        the scheduler's small-batch path calls this in a tight loop.
        """
        return int(self.sample(1, rng)[0])

    def mean(self) -> float:
        """Expected dwell time in ticks."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedDwell(DwellTime):
    """Deterministic dwell time (Table III ``dt-fixed`` rows)."""

    days: int
    kind: str = field(default="fixed", init=False)

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("fixed dwell must be >= 1 tick")

    def values_from_uniforms(self, u: np.ndarray) -> np.ndarray:
        """The fixed dwell time, once per uniform (values ignored).

        The uniform per draw is burnt deliberately: it keeps every dwell
        family's stream consumption at exactly one uniform per draw, the
        size-determinism the batched scheduler's pre-drawn blocks rely on.
        """
        return np.full(u.shape[0], self.days, dtype=np.int32)

    def sample_one(self, rng: np.random.Generator) -> int:
        """The fixed dwell time (consumes one uniform, like ``sample(1)``)."""
        rng.random()
        return self.days

    def mean(self) -> float:
        """The fixed dwell time."""
        return float(self.days)


@dataclass(frozen=True)
class NormalDwell(DwellTime):
    """Rounded, truncated-normal dwell time (``dt-mean``/``dt-std dev``)."""

    mu: float
    sd: float
    kind: str = field(default="normal", init=False)

    def __post_init__(self) -> None:
        if self.sd < 0:
            raise ValueError("sd must be non-negative")

    def values_from_uniforms(self, u: np.ndarray) -> np.ndarray:
        """Rounded, >= 1 normal dwell times via exact CDF inversion.

        ``mu + sd * Phi^-1(u)`` draws the same N(mu, sd) distribution as
        ``rng.normal`` but from exactly one uniform per value — unlike the
        generator's ziggurat, whose raw-stream consumption per draw is
        variable.  The one-uniform layout is what the batched scheduler's
        fixed-size stream blocks require.  Tiny batches take the scalar
        twin (same values; the vectorised inversion costs ~35 ufunc
        dispatches regardless of size).
        """
        if u.shape[0] <= 24:
            return np.asarray(
                [max(1, round(self.mu + self.sd * inverse_normal_cdf_scalar(v)))
                 for v in u.tolist()], dtype=np.int32)
        draws = self.mu + self.sd * inverse_normal_cdf(u)
        return np.maximum(1, np.rint(draws)).astype(np.int32)

    def sample_one(self, rng: np.random.Generator) -> int:
        """Scalar draw: same stream bytes and value as ``sample(1, rng)``.

        ``round`` and ``np.rint`` both round halves to even, and the
        scalar CDF inversion is the bit-identical twin of the array one,
        so the scalar arithmetic reproduces the array path exactly.
        """
        u = rng.random()
        return max(1, round(self.mu + self.sd * inverse_normal_cdf_scalar(u)))

    def mean(self) -> float:
        """Approximate mean (the normal mean, floored at one tick)."""
        return max(1.0, self.mu)


@dataclass(frozen=True)
class DiscreteDwell(DwellTime):
    """Explicit distribution over day counts (``dt-discrete`` rows)."""

    days: tuple[int, ...]
    probs: tuple[float, ...]
    kind: str = field(default="discrete", init=False)

    def __post_init__(self) -> None:
        if len(self.days) != len(self.probs) or not self.days:
            raise ValueError("days and probs must be equal-length, non-empty")
        if any(d < 1 for d in self.days):
            raise ValueError("all day values must be >= 1")
        if abs(sum(self.probs) - 1.0) > 1e-9:
            raise ValueError(f"probs must sum to 1, got {sum(self.probs)}")
        # Precompute the normalised cdf and the day array once: sampling
        # sits on the progression hot path (one call per chosen PTTS edge
        # per tick) and ``rng.choice`` revalidates both on every call.
        cdf = np.cumsum(np.asarray(self.probs, dtype=np.float64))
        cdf /= cdf[-1]
        object.__setattr__(self, "_cdf", cdf)
        object.__setattr__(self, "_days_arr",
                           np.asarray(self.days, dtype=np.int32))

    def values_from_uniforms(self, u: np.ndarray) -> np.ndarray:
        """Inverse-cdf lookup over the precomputed cumulative weights.

        Reproduces ``rng.choice(days, size=n, p=probs)`` bit for bit
        (``Generator.choice`` is the same cdf ``searchsorted`` internally)
        at a fraction of its overhead.
        """
        return self._days_arr[np.searchsorted(self._cdf, u, side="right")]

    def sample_one(self, rng: np.random.Generator) -> int:
        """Scalar draw: same stream bytes and value as ``sample(1, rng)``.

        ``bisect_right`` and ``searchsorted(..., side="right")`` compute
        the same insertion point.
        """
        return self.days[bisect_right(self._cdf, rng.random())]

    def mean(self) -> float:
        """Expected day count."""
        return float(np.dot(self.days, self.probs))
