"""Health states and dwell-time distributions for PTTS disease models.

EpiHiper represents a disease as a *probabilistic timed transition system*
(PTTS, Figure 12): nodes are health states, directed edges carry a transition
probability and a dwell-time distribution, transmissions move susceptible
persons into an exposed state, and progressions move infected persons through
the state machine independently of their contacts (Appendix D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True, slots=True)
class HealthState:
    """One node of the disease-state machine.

    Attributes:
        name: unique state label ("Symptomatic").
        infectivity: scaling factor iota applied when this person is the
            infectious side of a contact (Table IV); 0 for non-infectious
            states.
        susceptibility: scaling factor sigma applied when this person is the
            susceptible side (Table IV); 0 for non-susceptible states.
        symptomatic: counted in "symptomatic cases" summaries.
        hospitalized: occupies a hospital bed (for resource targets).
        ventilated: occupies a ventilator.
        deceased: terminal death state.
    """

    name: str
    infectivity: float = 0.0
    susceptibility: float = 0.0
    symptomatic: bool = False
    hospitalized: bool = False
    ventilated: bool = False
    deceased: bool = False

    @property
    def infectious(self) -> bool:
        """Whether this state can transmit."""
        return self.infectivity > 0.0

    @property
    def susceptible(self) -> bool:
        """Whether this state can be infected."""
        return self.susceptibility > 0.0


class DwellTime:
    """A dwell-time distribution attached to a PTTS transition.

    The paper's Table III uses three families: fixed times, truncated normal
    times, and discrete distributions over day counts.  All samples are whole
    ticks of at least 1.
    """

    kind: str

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` dwell times (int32 ticks, each >= 1)."""
        raise NotImplementedError

    def mean(self) -> float:
        """Expected dwell time in ticks."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedDwell(DwellTime):
    """Deterministic dwell time (Table III ``dt-fixed`` rows)."""

    days: int
    kind: str = field(default="fixed", init=False)

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("fixed dwell must be >= 1 tick")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` copies of the fixed dwell time."""
        return np.full(n, self.days, dtype=np.int32)

    def mean(self) -> float:
        """The fixed dwell time."""
        return float(self.days)


@dataclass(frozen=True)
class NormalDwell(DwellTime):
    """Rounded, truncated-normal dwell time (``dt-mean``/``dt-std dev``)."""

    mu: float
    sd: float
    kind: str = field(default="normal", init=False)

    def __post_init__(self) -> None:
        if self.sd < 0:
            raise ValueError("sd must be non-negative")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` rounded, >= 1 truncated-normal dwell times."""
        draws = rng.normal(self.mu, self.sd, size=n)
        return np.maximum(1, np.rint(draws)).astype(np.int32)

    def mean(self) -> float:
        """Approximate mean (the normal mean, floored at one tick)."""
        return max(1.0, self.mu)


@dataclass(frozen=True)
class DiscreteDwell(DwellTime):
    """Explicit distribution over day counts (``dt-discrete`` rows)."""

    days: tuple[int, ...]
    probs: tuple[float, ...]
    kind: str = field(default="discrete", init=False)

    def __post_init__(self) -> None:
        if len(self.days) != len(self.probs) or not self.days:
            raise ValueError("days and probs must be equal-length, non-empty")
        if any(d < 1 for d in self.days):
            raise ValueError("all day values must be >= 1")
        if abs(sum(self.probs) - 1.0) > 1e-9:
            raise ValueError(f"probs must sum to 1, got {sum(self.probs)}")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` day counts from the discrete distribution."""
        return rng.choice(
            np.asarray(self.days, dtype=np.int32), size=n, p=self.probs
        )

    def mean(self) -> float:
        """Expected day count."""
        return float(np.dot(self.days, self.probs))
