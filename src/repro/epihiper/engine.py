"""The EpiHiper discrete-time simulation engine (Appendix D).

One :class:`Simulation` couples a disease model (PTTS), a synthetic
population, and a contact network, and advances them tick by tick (one tick
= one day, Section III).  Each tick: interventions are evaluated, active
contacts are tested for transmission (Eq. 1), and scheduled progressions
fire.  The engine keeps the per-person state in flat numpy arrays so every
step is vectorised, and tracks the work and memory counters that feed the
cluster cost model (Figures 7 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.registry import TIMER, MetricsRegistry
from ..obs.spans import Tracer
from ..params import DEFAULT_SEED
from ..synthpop.activities import HOME
from ..synthpop.contacts import ContactNetwork
from ..synthpop.persons import Population
from .disease import DiseaseModel
from .interventions import EdgeSuppressor, IncidentEdges, Intervention
from .output import TransitionLog, TransitionRecorder
from .progression import ProgressionState, progression_step, schedule_entries
from .transmission import TransmissionBackend, transmission_step

#: Bytes per in-memory edge record (ids, timing, contexts, weight, flags);
#: drives the Figure 10 memory model.
EDGE_BYTES: int = 40
NODE_BYTES: int = 24
SCHEDULED_CHANGE_BYTES: int = 24
#: Bytes per recorded transition line and per suppressor operation in the
#: dynamic-memory estimate (shared with the batched driver).
TRANSITION_BYTES: int = 16
EDGE_OP_BYTES: int = 8

#: Work counters (``engine.<name>``) every simulation publishes; pinned so
#: the legacy ``counters`` view exposes the full key set from tick zero.
ENGINE_COUNTERS: tuple[str, ...] = (
    "contacts_evaluated",
    "transitions",
    "transmissions",
    "interventions_fired",
    "intervention_edge_ops",
)
#: Per-phase timers (``engine.<name>``), the Figure 7 runtime breakdown.
ENGINE_TIMERS: tuple[str, ...] = (
    "interventions_s",
    "transmission_s",
    "progression_s",
)


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Everything a simulation run produces.

    Attributes:
        region_code: region the run covered.
        n_days: ticks simulated.
        log: the per-transition output (EpiHiper's raw output file).
        state_counts: ``(n_days + 1, n_states)`` census per tick; row 0 is
            the post-initialization census.
        memory_series: per-tick estimated resident bytes (Figure 10).
        metrics: the run's ``engine.*`` telemetry, frozen at completion
            (a :class:`~repro.obs.registry.MetricsRegistry` copy).
    """

    region_code: str
    n_days: int
    log: TransitionLog
    state_counts: np.ndarray
    memory_series: np.ndarray
    metrics: MetricsRegistry

    @property
    def counters(self) -> dict[str, int | float]:
        """Legacy work-counter view (read-only snapshot).

        Same keys and value types as the pre-``repro.obs`` counters dict
        (``ranks.py`` cost accounting reads these unchanged); mutations
        affect only the returned copy.
        """
        return self.metrics.snapshot(prefix="engine.", strip=True)

    def attack_rate(self, model: DiseaseModel) -> float:
        """Fraction of the population ever infected."""
        n = int(self.state_counts[0].sum())
        sus = self.state_counts[-1][model.is_susceptible].sum()
        return float(1.0 - sus / n)

    def peak_day(self, model: DiseaseModel) -> int:
        """Tick with the largest infectious census."""
        infectious = self.state_counts[:, model.is_infectious].sum(axis=1)
        return int(np.argmax(infectious))


class Simulation:
    """A single EpiHiper run over one region's population and network."""

    def __init__(
        self,
        model: DiseaseModel,
        pop: Population,
        net: ContactNetwork,
        *,
        seed: int = DEFAULT_SEED,
        interventions: list[Intervention] | None = None,
        backend: TransmissionBackend | str = TransmissionBackend.AUTO,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if net.n_nodes != pop.size:
            raise ValueError("network and population sizes disagree")
        self.model = model
        self.pop = pop
        self.net = net
        self.rng = np.random.default_rng(seed)
        self.interventions = list(interventions or [])
        self.backend = TransmissionBackend.coerce(backend)

        n = pop.size
        # Everybody starts in the first susceptible state.
        sus_codes = np.flatnonzero(model.is_susceptible)
        if sus_codes.size == 0:
            raise ValueError("model has no susceptible state")
        self.initial_code = int(sus_codes[0])
        self.health = np.full(n, self.initial_code, dtype=np.int8)
        self.sched = ProgressionState.empty(n)

        # rw node scaling traits of Table V.
        self.node_susceptibility = np.ones(n, dtype=np.float64)
        self.node_infectivity = np.ones(n, dtype=np.float64)
        #: user-defined node/edge traits (Table V nodeTrait / edgeTrait).
        self.node_traits: dict[str, np.ndarray] = {}
        self.edge_traits: dict[str, np.ndarray] = {}
        #: user-defined named variables (Table V ``variable``).
        self.variables: dict[str, float] = {}

        self.base_active = net.active.copy()
        self.edge_weight = net.weight.astype(np.float64).copy()
        self.suppressor = EdgeSuppressor(net.n_edges)
        self._incident: IncidentEdges | None = None

        # Tick-loop caches: convert / derive once, reuse every tick instead
        # of reallocating O(|E|) arrays per step.
        self._duration_f64 = net.duration.astype(np.float64)
        self._home_mask = ((net.source_activity == HOME)
                           & (net.target_activity == HOME))
        self._active_scratch = np.empty(net.n_edges, dtype=bool)
        self._mem_base = net.n_edges * EDGE_BYTES + pop.size * NODE_BYTES

        self.tick = 0
        self.recorder = TransitionRecorder()
        self._counts_history: list[np.ndarray] = []
        self._memory_history: list[int] = []
        # Telemetry: all work counters and phase timers live in the shared
        # registry under ``engine.*``; declared up front so snapshots carry
        # the full key set even before the first step.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        for name in ENGINE_COUNTERS:
            self.metrics.counter(f"engine.{name}")
        for name in ENGINE_TIMERS:
            self.metrics.declare(f"engine.{name}", TIMER)

    # -- derived structures ----------------------------------------------------

    @property
    def counters(self) -> dict[str, int | float]:
        """Legacy work-counter view over the ``engine.*`` registry.

        Read-only snapshot with the historical keys (``transitions``,
        ``transmission_s``, ...); publication happens through
        :attr:`metrics`.
        """
        return self.metrics.snapshot(prefix="engine.", strip=True)

    @property
    def incident(self) -> IncidentEdges:
        """Lazily built person -> incident-edge CSR (contact tracing)."""
        if self._incident is None:
            self._incident = IncidentEdges(
                self.net.source, self.net.target, self.pop.size)
        return self._incident

    def active_edges(self) -> np.ndarray:
        """Effective per-edge activity mask this tick (fresh array)."""
        return self.suppressor.active_mask(self.base_active)

    def home_edge_mask(self) -> np.ndarray:
        """Edges whose both contexts are *home* (kept by isolations).

        Computed once at init; callers must treat the array as read-only.
        """
        return self._home_mask

    def current_state_counts(self) -> np.ndarray:
        """Census over states right now."""
        return np.bincount(self.health, minlength=self.model.n_states)

    def ever_infected(self) -> np.ndarray:
        """Boolean mask of persons no longer in their initial state."""
        return self.health != self.initial_code

    # -- state changes -----------------------------------------------------------

    def enter_state(
        self,
        pids: np.ndarray,
        codes: np.ndarray,
        infectors: np.ndarray | None = None,
    ) -> None:
        """Move ``pids`` into ``codes`` now: record, then schedule next hop."""
        pids = np.asarray(pids, dtype=np.int64)
        if pids.size == 0:
            return
        codes = np.asarray(codes, dtype=np.int8)
        self.health[pids] = codes
        self.recorder.record(self.tick, pids, codes, infectors)
        self.metrics.inc("engine.transitions", int(pids.size))
        schedule_entries(
            self.model, self.sched, pids, codes, self.pop.age_group, self.rng)

    def seed_infections(self, pids: np.ndarray, state: str = "Exposed") -> None:
        """Initialization: move ``pids`` into ``state`` with no infector.

        Appendix D: "Initialization is a special case of an intervention
        where the trigger is omitted"; seeds become dendogram roots.
        """
        pids = np.asarray(pids, dtype=np.int64)
        code = self.model.code(state)
        self.enter_state(pids, np.full(pids.size, code, dtype=np.int8))

    # -- main loop ----------------------------------------------------------------

    def step(self) -> None:
        """Advance one tick (interventions, transmission, progression)."""
        with self.metrics.timer("engine.interventions_s"):
            ops_before = self.suppressor.total_operations
            for iv in self.interventions:
                if iv.maybe_apply(self):
                    self.metrics.inc("engine.interventions_fired")
            self.metrics.inc(
                "engine.intervention_edge_ops",
                self.suppressor.total_operations - ops_before)

        with self.metrics.timer("engine.transmission_s"):
            # The mask is consumed within this tick only, so it can live in
            # a preallocated scratch buffer; the frontier/auto kernels also
            # need the incident CSR (built once, shared with tracing).
            active = self.suppressor.active_mask_into(
                self.base_active, self._active_scratch)
            incident = (self.incident
                        if self.backend is not TransmissionBackend.DENSE
                        else None)
            events = transmission_step(
                self.model, self.health,
                self.node_susceptibility, self.node_infectivity,
                self.net.source, self.net.target, active,
                self.edge_weight, self._duration_f64,
                self.rng,
                backend=self.backend, incident=incident,
            )
            self.metrics.inc("engine.contacts_evaluated",
                             events.n_candidates)
            if events.pids.size:
                self.metrics.inc("engine.transmissions",
                                 int(events.pids.size))
                self.enter_state(events.pids, events.exposed_codes,
                                 events.infectors)

        with self.metrics.timer("engine.progression_s"):
            pids, codes = progression_step(self.sched)
            if pids.size:
                self.enter_state(pids, codes)

        self.tick += 1
        self._counts_history.append(self.current_state_counts())
        self._memory_history.append(self._memory_estimate())

    def _memory_estimate(self) -> int:
        """Resident-byte estimate for the Figure 10 memory model.

        Base cost tracks the partitioned network held in memory; dynamic
        cost grows with scheduled system-state changes (suppressed edges,
        pending progressions, accumulated output) — the paper observes that
        higher intervention compliance means more scheduled changes and
        hence more memory.  Every term is maintained incrementally, so the
        per-tick estimate is O(1) instead of re-summing O(|E| + |V|) arrays.
        """
        dynamic = (
            self.suppressor.n_suppressed * SCHEDULED_CHANGE_BYTES
            + self.sched.n_pending * SCHEDULED_CHANGE_BYTES
            + self.metrics.value("engine.transitions") * TRANSITION_BYTES
            + self.suppressor.total_operations * EDGE_OP_BYTES
        )
        return self._mem_base + dynamic

    def run(self, n_days: int) -> SimulationResult:
        """Run ``n_days`` ticks and assemble the result.

        With a tracer attached the whole run is one ``engine:run`` span;
        tracing never touches the RNG stream, so traced and bare runs
        produce bit-identical outputs.
        """
        if n_days < 0:
            raise ValueError("n_days must be non-negative")
        if self.tracer is not None:
            with self.tracer.span("engine:run",
                                  region=self.net.region_code,
                                  n_days=n_days):
                return self._run(n_days)
        return self._run(n_days)

    def _run(self, n_days: int) -> SimulationResult:
        self.begin()
        for _ in range(n_days):
            self.step()
        return self.finish()

    # -- checkpoint hooks --------------------------------------------------------

    def begin(self) -> None:
        """Prepare for stepping: record the tick-0 census row once.

        Public twin of the ``_run`` preamble so checkpoint-aware drivers
        can own the tick loop themselves; idempotent, and a no-op after a
        :meth:`restore_state` (the restored history already has its rows).
        """
        self._ensure_initial_census()

    def finish(self) -> SimulationResult:
        """Assemble the result for the ticks advanced so far."""
        return self._assemble_result()

    def save_state(self) -> dict[str, np.ndarray]:
        """Snapshot the full mutable state as a flat CAS-ready payload.

        Captures everything :meth:`restore_state` needs for a bit-identical
        resume: state arrays, dwell timers, RNG stream position, transition
        log, census/memory histories, ``engine.*`` counters, and the
        mutable values inside intervention closures.
        """
        from ..checkpoint.format import snapshot_simulation

        return snapshot_simulation(self)

    def restore_state(self, payload) -> int:
        """Apply a :meth:`save_state` payload in place; returns the tick.

        The simulation must have been freshly prepared for the same
        instance spec (same assets, parameters, seed, interventions).
        Raises :class:`~repro.checkpoint.format.CheckpointError` when the
        snapshot does not match this instance.  Resuming then running to
        day T yields byte-identical outputs to an uninterrupted run.
        """
        from ..checkpoint.format import restore_simulation

        return restore_simulation(self, payload)

    def _ensure_initial_census(self) -> None:
        """Record the post-initialization census once (tick-0 row)."""
        if not self._counts_history:
            self._counts_history.append(self.current_state_counts())
            self._memory_history.append(self._memory_estimate())

    def _assemble_result(self) -> SimulationResult:
        """Freeze the run into a :class:`SimulationResult`.

        Shared by :meth:`_run` and the batched driver
        (:class:`~repro.epihiper.batch.BatchedSimulation`), which advances
        many simulations through their per-tick phases itself and then
        assembles each lane's result exactly as a solo run would.
        """
        return SimulationResult(
            region_code=self.net.region_code,
            n_days=self.tick,
            log=self.recorder.finalize(),
            state_counts=np.vstack(self._counts_history),
            memory_series=np.asarray(self._memory_history, dtype=np.int64),
            metrics=MetricsRegistry().merge(self.metrics.dump("engine.")),
        )
