"""Intervention framework: triggers, action ensembles, and traits.

Appendix D: "An intervention comprises of a trigger and an action ensemble.
The action ensemble is only applied if the trigger evaluates to true."  The
trigger is a function of the system state (Table V); actions operate on a
target set of nodes or edges, optionally on a sampled subset, and may be
delayed.

Edge deactivation is implemented with a *suppression counter* per edge so
that overlapping interventions compose: an edge is active iff its base flag
is set and no intervention currently suppresses it.  Every suppression is
paired with a release, which lets timed isolations expire cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulation

#: A trigger: reads the simulation state, returns whether to fire this tick.
Trigger = Callable[["Simulation"], bool]

#: An action: mutates the simulation state (through the public ops below).
Action = Callable[["Simulation"], None]


@dataclass
class Intervention:
    """A named (trigger, action ensemble) pair evaluated every tick.

    Attributes:
        name: label used in run summaries and the cost model.
        trigger: predicate on the simulation state.
        action: applied whenever the trigger is true (and, if ``once``,
            not yet fired).
        once: fire at most one time.
    """

    name: str
    trigger: Trigger
    action: Action
    once: bool = False
    fired: int = field(default=0, init=False)

    def maybe_apply(self, sim: "Simulation") -> bool:
        """Evaluate the trigger; apply the action if it fires."""
        if self.once and self.fired:
            return False
        if not self.trigger(sim):
            return False
        self.action(sim)
        self.fired += 1
        return True


def at_tick(day: int) -> Trigger:
    """Trigger that fires exactly on tick ``day``."""
    return lambda sim: sim.tick == day


def between_ticks(start: int, end: int) -> Trigger:
    """Trigger active on every tick in ``[start, end)``."""
    return lambda sim: start <= sim.tick < end


def from_tick(day: int) -> Trigger:
    """Trigger active from ``day`` onward."""
    return lambda sim: sim.tick >= day


def when_variable_at_least(name: str, threshold: float) -> Trigger:
    """Trigger on a user-defined simulation variable (Table V ``variable``)."""
    return lambda sim: sim.variables.get(name, 0.0) >= threshold


def when_symptomatic_count_at_least(threshold: int) -> Trigger:
    """Trigger once the current symptomatic census reaches ``threshold``."""
    def trig(sim: "Simulation") -> bool:
        counts = sim.current_state_counts()
        return int(counts[sim.model.is_symptomatic].sum()) >= threshold
    return trig


# --- action-ensemble building blocks ----------------------------------------


def sample_subset(
    ids: np.ndarray, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample each element independently with probability ``fraction``.

    This is the "sampled subset" operation of the paper's action ensembles
    (compliance draws).  ``fraction`` outside [0, 1] raises.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if fraction >= 1.0:
        return ids
    if fraction <= 0.0 or ids.size == 0:
        return ids[:0]
    return ids[rng.random(ids.size) < fraction]


def _sorted_dedup(values: np.ndarray) -> np.ndarray:
    """Ascending dedup of 1-D integers; like np.unique but without its
    dispatch overhead (these gathers sit on intervention hot paths)."""
    if values.size == 0:
        return values
    values = np.sort(values)
    keep = np.empty(values.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


@dataclass(slots=True)
class SuppressionHandle:
    """A release token for a set of suppressed edges."""

    edge_rows: np.ndarray
    released: bool = False


class EdgeSuppressor:
    """Reference-counted edge deactivation shared by all interventions."""

    def __init__(self, n_edges: int) -> None:
        self.count = np.zeros(n_edges, dtype=np.int16)
        self.total_operations = 0  #: edges touched, for the cost model
        self.n_suppressed = 0  #: edges with count > 0, kept incrementally
        self._zero_scratch = np.empty(n_edges, dtype=bool)

    def _apply(self, edge_rows: np.ndarray, sign: int) -> None:
        """Adjust counts on the touched rows only, tracking 0 <-> >0 flips."""
        rows, reps = np.unique(edge_rows, return_counts=True)
        old = self.count[rows]
        new = old + sign * reps
        if sign < 0 and new.size and new.min() < 0:
            raise RuntimeError("suppression count went negative")
        self.count[rows] = new
        self.n_suppressed += int(((old == 0) & (new > 0)).sum())
        self.n_suppressed -= int(((old > 0) & (new == 0)).sum())

    def suppress(self, edge_rows: np.ndarray) -> SuppressionHandle:
        """Deactivate ``edge_rows`` (idempotent per handle, composable)."""
        edge_rows = np.asarray(edge_rows)
        self._apply(edge_rows, 1)
        self.total_operations += int(edge_rows.size)
        return SuppressionHandle(edge_rows)

    def release(self, handle: SuppressionHandle) -> None:
        """Undo one suppression; edges with zero remaining count reactivate."""
        if handle.released:
            return
        self._apply(handle.edge_rows, -1)
        self.total_operations += int(handle.edge_rows.size)
        handle.released = True

    def active_mask(self, base_active: np.ndarray) -> np.ndarray:
        """Effective edge activity: base flag and no live suppression."""
        return base_active & (self.count == 0)

    def active_mask_into(
        self, base_active: np.ndarray, out: np.ndarray
    ) -> np.ndarray:
        """Allocation-free :meth:`active_mask` into a caller-owned buffer."""
        np.equal(self.count, 0, out=self._zero_scratch)
        np.logical_and(base_active, self._zero_scratch, out=out)
        return out


class IncidentEdges:
    """CSR-style person -> incident-edge-row index, built once per network.

    Contact tracing (D1CT / D2CT) and per-person isolation need the edges
    touching a person; a precomputed CSR makes those operations O(degree).
    """

    def __init__(self, source: np.ndarray, target: np.ndarray, n_nodes: int) -> None:
        endpoints = np.concatenate([source, target])
        rows = np.concatenate([
            np.arange(source.shape[0], dtype=np.int64),
            np.arange(target.shape[0], dtype=np.int64),
        ])
        order = np.argsort(endpoints, kind="stable")
        self._rows = rows[order]
        counts = np.bincount(endpoints, minlength=n_nodes)
        self._offsets = np.concatenate([[0], np.cumsum(counts)])
        self._others = np.concatenate([target, source])[order]
        self._degrees: np.ndarray | None = None
        self._max_degree: float | None = None

    @property
    def degrees(self) -> np.ndarray:
        """Per-person incident-slot count as float64 (lazily built).

        Kept in float form so a frontier-workload estimate over a boolean
        infectious mask is one BLAS dot product (``mask @ degrees``) —
        exact for any realistic degree sum, and O(|V|) with no
        intermediate index array (see
        :func:`~repro.epihiper.transmission.resolve_backend`).
        """
        if self._degrees is None:
            self._degrees = np.diff(self._offsets).astype(np.float64)
        return self._degrees

    @property
    def max_degree(self) -> float:
        """Largest per-person incident-slot count (lazily cached).

        ``infectious_count * max_degree`` upper-bounds the frontier
        workload, letting the per-tick ``auto`` resolution skip the exact
        degree-sum dot product whenever one popcount already proves the
        frontier kernel is below the crossover.
        """
        if self._max_degree is None:
            deg = self.degrees
            self._max_degree = float(deg.max()) if deg.size else 0.0
        return self._max_degree

    def _gather_slots(self, pids: np.ndarray) -> np.ndarray:
        """Vectorised CSR slot gather: every slot of every pid, in pid order.

        Multi-range gather without a Python loop: repeat each pid's slice
        start over its length, then add a per-slice ramp built from one
        global arange minus the exclusive prefix sum of the lengths.
        """
        pids = np.asarray(pids, dtype=np.int64).ravel()
        if pids.size == 0:
            return np.empty(0, dtype=np.int64)
        starts = self._offsets[pids]
        counts = self._offsets[pids + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        shift = np.repeat(starts - (np.cumsum(counts) - counts), counts)
        return shift + np.arange(total, dtype=np.int64)

    def degree_sum(self, pids: np.ndarray) -> int:
        """Total incident-edge slots of ``pids`` (frontier-gather workload)."""
        pids = np.asarray(pids, dtype=np.int64).ravel()
        if pids.size == 0:
            return 0
        return int((self._offsets[pids + 1] - self._offsets[pids]).sum())

    def edge_rows_of(self, pids: np.ndarray) -> np.ndarray:
        """Incident edge rows of ``pids``, with one entry per incidence.

        An edge whose both endpoints are in ``pids`` appears twice; callers
        wanting the deduplicated (and ascending) set apply ``np.unique``.
        """
        return self._rows[self._gather_slots(pids)]

    def edges_of(self, pids: np.ndarray) -> np.ndarray:
        """Unique edge rows incident to any of ``pids``."""
        rows = self.edge_rows_of(pids)
        if rows.size == 0:
            return np.empty(0, dtype=np.int64)
        return _sorted_dedup(rows)

    def neighbors_of(self, pids: np.ndarray) -> np.ndarray:
        """Unique neighbour ids of any of ``pids`` (excluding ``pids``)."""
        slots = self._gather_slots(pids)
        if slots.size == 0:
            return np.empty(0, dtype=np.int64)
        out = _sorted_dedup(self._others[slots])
        return np.setdiff1d(out, pids, assume_unique=False)
