"""Intervention framework: triggers, action ensembles, and traits.

Appendix D: "An intervention comprises of a trigger and an action ensemble.
The action ensemble is only applied if the trigger evaluates to true."  The
trigger is a function of the system state (Table V); actions operate on a
target set of nodes or edges, optionally on a sampled subset, and may be
delayed.

Edge deactivation is implemented with a *suppression counter* per edge so
that overlapping interventions compose: an edge is active iff its base flag
is set and no intervention currently suppresses it.  Every suppression is
paired with a release, which lets timed isolations expire cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Simulation

#: A trigger: reads the simulation state, returns whether to fire this tick.
Trigger = Callable[["Simulation"], bool]

#: An action: mutates the simulation state (through the public ops below).
Action = Callable[["Simulation"], None]


@dataclass
class Intervention:
    """A named (trigger, action ensemble) pair evaluated every tick.

    Attributes:
        name: label used in run summaries and the cost model.
        trigger: predicate on the simulation state.
        action: applied whenever the trigger is true (and, if ``once``,
            not yet fired).
        once: fire at most one time.
    """

    name: str
    trigger: Trigger
    action: Action
    once: bool = False
    fired: int = field(default=0, init=False)

    def maybe_apply(self, sim: "Simulation") -> bool:
        """Evaluate the trigger; apply the action if it fires."""
        if self.once and self.fired:
            return False
        if not self.trigger(sim):
            return False
        self.action(sim)
        self.fired += 1
        return True


def at_tick(day: int) -> Trigger:
    """Trigger that fires exactly on tick ``day``."""
    return lambda sim: sim.tick == day


def between_ticks(start: int, end: int) -> Trigger:
    """Trigger active on every tick in ``[start, end)``."""
    return lambda sim: start <= sim.tick < end


def from_tick(day: int) -> Trigger:
    """Trigger active from ``day`` onward."""
    return lambda sim: sim.tick >= day


def when_variable_at_least(name: str, threshold: float) -> Trigger:
    """Trigger on a user-defined simulation variable (Table V ``variable``)."""
    return lambda sim: sim.variables.get(name, 0.0) >= threshold


def when_symptomatic_count_at_least(threshold: int) -> Trigger:
    """Trigger once the current symptomatic census reaches ``threshold``."""
    def trig(sim: "Simulation") -> bool:
        counts = sim.current_state_counts()
        return int(counts[sim.model.is_symptomatic].sum()) >= threshold
    return trig


# --- action-ensemble building blocks ----------------------------------------


def sample_subset(
    ids: np.ndarray, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample each element independently with probability ``fraction``.

    This is the "sampled subset" operation of the paper's action ensembles
    (compliance draws).  ``fraction`` outside [0, 1] raises.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if fraction >= 1.0:
        return ids
    if fraction <= 0.0 or ids.size == 0:
        return ids[:0]
    return ids[rng.random(ids.size) < fraction]


@dataclass(slots=True)
class SuppressionHandle:
    """A release token for a set of suppressed edges."""

    edge_rows: np.ndarray
    released: bool = False


class EdgeSuppressor:
    """Reference-counted edge deactivation shared by all interventions."""

    def __init__(self, n_edges: int) -> None:
        self.count = np.zeros(n_edges, dtype=np.int16)
        self.total_operations = 0  #: edges touched, for the cost model

    def suppress(self, edge_rows: np.ndarray) -> SuppressionHandle:
        """Deactivate ``edge_rows`` (idempotent per handle, composable)."""
        np.add.at(self.count, edge_rows, 1)
        self.total_operations += int(edge_rows.size)
        return SuppressionHandle(np.asarray(edge_rows))

    def release(self, handle: SuppressionHandle) -> None:
        """Undo one suppression; edges with zero remaining count reactivate."""
        if handle.released:
            return
        np.add.at(self.count, handle.edge_rows, -1)
        self.total_operations += int(handle.edge_rows.size)
        handle.released = True
        if (self.count < 0).any():
            raise RuntimeError("suppression count went negative")

    def active_mask(self, base_active: np.ndarray) -> np.ndarray:
        """Effective edge activity: base flag and no live suppression."""
        return base_active & (self.count == 0)


class IncidentEdges:
    """CSR-style person -> incident-edge-row index, built once per network.

    Contact tracing (D1CT / D2CT) and per-person isolation need the edges
    touching a person; a precomputed CSR makes those operations O(degree).
    """

    def __init__(self, source: np.ndarray, target: np.ndarray, n_nodes: int) -> None:
        endpoints = np.concatenate([source, target])
        rows = np.concatenate([
            np.arange(source.shape[0], dtype=np.int64),
            np.arange(target.shape[0], dtype=np.int64),
        ])
        order = np.argsort(endpoints, kind="stable")
        self._rows = rows[order]
        counts = np.bincount(endpoints, minlength=n_nodes)
        self._offsets = np.concatenate([[0], np.cumsum(counts)])
        self._others = np.concatenate([target, source])[order]

    def edges_of(self, pids: np.ndarray) -> np.ndarray:
        """Unique edge rows incident to any of ``pids``."""
        if pids.size == 0:
            return np.empty(0, dtype=np.int64)
        parts = [self._rows[self._offsets[p]:self._offsets[p + 1]]
                 for p in np.asarray(pids).ravel()]
        return np.unique(np.concatenate(parts)) if parts else np.empty(0, np.int64)

    def neighbors_of(self, pids: np.ndarray) -> np.ndarray:
        """Unique neighbour ids of any of ``pids`` (excluding ``pids``)."""
        if pids.size == 0:
            return np.empty(0, dtype=np.int64)
        parts = [self._others[self._offsets[p]:self._offsets[p + 1]]
                 for p in np.asarray(pids).ravel()]
        if not parts:
            return np.empty(0, np.int64)
        out = np.unique(np.concatenate(parts))
        return np.setdiff1d(out, pids, assume_unique=False)
