"""The paper's non-pharmaceutical interventions (Section VI, Figure 7).

Implements the eight named NPIs whose runtime cost the paper measures:

- **VHI** — voluntary home isolation of symptomatic cases.
- **SC** — school closure (school and college contexts disabled).
- **SH** — stay-at-home order (compliant persons keep only home contacts).
- **RO** — partial reopening, extends SH (only a fraction of work /
  shopping / other contacts return).
- **TA** — testing and isolating asymptomatic cases, extends VHI.
- **PS** — pulsing shutdown (repeatedly alternates SH and RO).
- **D1CT** — distance-1 contact tracing and isolating.
- **D2CT** — distance-2 contact tracing and isolating.

Each NPI is an :class:`~repro.epihiper.interventions.Intervention` whose
action ensemble uses the suppression-counter machinery, so arbitrary
combinations compose (the paper's base case is VHI + SC + SH).
"""

from __future__ import annotations

import numpy as np

from ..synthpop.activities import COLLEGE, OTHER, SCHOOL, SHOPPING, WORK
from .engine import Simulation
from .interventions import Intervention, SuppressionHandle, sample_subset

#: Default isolation length for case isolation and traced contacts.
DEFAULT_ISOLATION_DAYS: int = 14


class _TimedReleases:
    """Shared bookkeeping: handles to release at future ticks."""

    def __init__(self) -> None:
        self._due: list[tuple[int, SuppressionHandle]] = []

    def add(self, release_tick: int, handle: SuppressionHandle) -> None:
        self._due.append((release_tick, handle))

    def release_due(self, sim: Simulation) -> None:
        keep: list[tuple[int, SuppressionHandle]] = []
        for tick, handle in self._due:
            if sim.tick >= tick:
                sim.suppressor.release(handle)
            else:
                keep.append((tick, handle))
        self._due = keep


def _isolate(
    sim: Simulation, pids: np.ndarray, releases: _TimedReleases, days: int
) -> int:
    """Suppress the non-home incident edges of ``pids`` for ``days`` ticks.

    Returns the number of edges suppressed (work done, for the cost model).
    """
    if pids.size == 0:
        return 0
    rows = sim.incident.edges_of(pids)
    rows = rows[~sim.home_edge_mask()[rows]]
    handle = sim.suppressor.suppress(rows)
    releases.add(sim.tick + days, handle)
    return int(rows.size)


class _NewEntrants:
    """Detects persons who entered a given state since the last check."""

    def __init__(self, state_code: int) -> None:
        self.code = state_code
        self._prev: np.ndarray | None = None

    def poll(self, sim: Simulation) -> np.ndarray:
        now = sim.health == self.code
        if self._prev is None:
            new = np.flatnonzero(now)
        else:
            new = np.flatnonzero(now & ~self._prev)
        self._prev = now
        return new


# --- VHI ---------------------------------------------------------------------


def make_vhi(
    compliance: float,
    *,
    start: int = 0,
    isolation_days: int = DEFAULT_ISOLATION_DAYS,
) -> Intervention:
    """Voluntary home isolation of symptomatic cases.

    Each tick, persons who newly became symptomatic comply with probability
    ``compliance``; compliant cases lose all non-home contacts for
    ``isolation_days``.
    """
    releases = _TimedReleases()
    entrants: _NewEntrants | None = None

    def action(sim: Simulation) -> None:
        nonlocal entrants
        if entrants is None:
            entrants = _NewEntrants(sim.model.code("Symptomatic"))
        releases.release_due(sim)
        new = entrants.poll(sim)
        compliant = sample_subset(new, compliance, sim.rng)
        _isolate(sim, compliant, releases, isolation_days)

    return Intervention(
        name="VHI", trigger=lambda sim: sim.tick >= start, action=action)


# --- SC ----------------------------------------------------------------------


def make_sc(*, start: int = 0, end: int | None = None) -> Intervention:
    """School closure: all school and college context edges are disabled.

    With 100%% compliance (as in case study 3: "assume 100% compliance on
    SC").  Reopens at ``end`` if given.
    """
    state: dict[str, SuppressionHandle | None] = {"handle": None}

    def action(sim: Simulation) -> None:
        if state["handle"] is None and sim.tick >= start and (
            end is None or sim.tick < end
        ):
            mask = (
                np.isin(sim.net.source_activity, (SCHOOL, COLLEGE))
                | np.isin(sim.net.target_activity, (SCHOOL, COLLEGE))
            )
            state["handle"] = sim.suppressor.suppress(np.flatnonzero(mask))
        elif state["handle"] is not None and end is not None and sim.tick >= end:
            sim.suppressor.release(state["handle"])
            state["handle"] = None

    return Intervention(name="SC", trigger=lambda sim: True, action=action)


# --- SH ----------------------------------------------------------------------


def make_sh(
    compliance: float, *, start: int = 0, end: int | None = None
) -> Intervention:
    """Stay-at-home order.

    At ``start``, a compliant fraction of all persons is sampled; their
    non-home contacts are disabled until ``end`` (or forever).
    """
    releases = _TimedReleases()
    state: dict[str, SuppressionHandle | None] = {"handle": None}

    def action(sim: Simulation) -> None:
        if state["handle"] is None and sim.tick == start:
            everyone = np.arange(sim.pop.size, dtype=np.int64)
            compliant = sample_subset(everyone, compliance, sim.rng)
            rows = sim.incident.edges_of(compliant)
            rows = rows[~sim.home_edge_mask()[rows]]
            state["handle"] = sim.suppressor.suppress(rows)
        elif state["handle"] is not None and end is not None and sim.tick >= end:
            sim.suppressor.release(state["handle"])
            state["handle"] = None
        releases.release_due(sim)

    return Intervention(name="SH", trigger=lambda sim: True, action=action)


# --- RO ----------------------------------------------------------------------


def make_ro(reopen_level: float, *, start: int) -> Intervention:
    """Partial reopening (extends SH).

    From ``start``, only a ``reopen_level`` fraction of work / shopping /
    other contacts operate; the rest stay suppressed.  Typically paired with
    an SH whose ``end`` equals ``start``.
    """
    if not 0.0 <= reopen_level <= 1.0:
        raise ValueError("reopen_level must be in [0, 1]")
    state: dict[str, SuppressionHandle | None] = {"handle": None}

    def action(sim: Simulation) -> None:
        if state["handle"] is not None or sim.tick != start:
            return
        mask = (
            np.isin(sim.net.source_activity, (WORK, SHOPPING, OTHER))
            | np.isin(sim.net.target_activity, (WORK, SHOPPING, OTHER))
        )
        rows = np.flatnonzero(mask)
        closed = sample_subset(rows, 1.0 - reopen_level, sim.rng)
        state["handle"] = sim.suppressor.suppress(closed)

    return Intervention(name="RO", trigger=lambda sim: True, action=action)


# --- TA ----------------------------------------------------------------------


def make_ta(
    detection_rate: float,
    *,
    start: int = 0,
    isolation_days: int = DEFAULT_ISOLATION_DAYS,
) -> Intervention:
    """Testing and isolating asymptomatic cases (extends VHI).

    Each tick, currently asymptomatic persons are detected with probability
    ``detection_rate``; detected cases are isolated.
    """
    releases = _TimedReleases()
    tested: dict[str, np.ndarray | None] = {"done": None}

    def action(sim: Simulation) -> None:
        releases.release_due(sim)
        if tested["done"] is None:
            tested["done"] = np.zeros(sim.pop.size, dtype=bool)
        asympt = sim.health == sim.model.code("Asymptomatic")
        candidates = np.flatnonzero(asympt & ~tested["done"])
        detected = sample_subset(candidates, detection_rate, sim.rng)
        tested["done"][candidates] = True  # one test per episode
        _isolate(sim, detected, releases, isolation_days)

    return Intervention(
        name="TA", trigger=lambda sim: sim.tick >= start, action=action)


# --- PS ----------------------------------------------------------------------


def make_ps(
    compliance: float,
    *,
    start: int = 0,
    days_on: int = 14,
    days_off: int = 14,
    end: int | None = None,
) -> Intervention:
    """Pulsing shutdown: repeatedly alternates SH (on) and reopening (off).

    During each on-phase a fresh compliant sample of the population is
    isolated; the off-phase releases them.  The resampling every pulse is
    what makes PS markedly more expensive than a single SH (Figure 7).
    """
    state: dict[str, SuppressionHandle | None] = {"handle": None}

    def action(sim: Simulation) -> None:
        t = sim.tick - start
        if t < 0 or (end is not None and sim.tick >= end):
            if state["handle"] is not None:
                sim.suppressor.release(state["handle"])
                state["handle"] = None
            return
        phase = t % (days_on + days_off)
        if phase == 0 and state["handle"] is None:
            everyone = np.arange(sim.pop.size, dtype=np.int64)
            compliant = sample_subset(everyone, compliance, sim.rng)
            rows = sim.incident.edges_of(compliant)
            rows = rows[~sim.home_edge_mask()[rows]]
            state["handle"] = sim.suppressor.suppress(rows)
        elif phase == days_on and state["handle"] is not None:
            sim.suppressor.release(state["handle"])
            state["handle"] = None

    return Intervention(name="PS", trigger=lambda sim: True, action=action)


# --- contact tracing -----------------------------------------------------------


def make_contact_tracing(
    distance: int,
    detection_rate: float,
    compliance: float,
    *,
    start: int = 0,
    isolation_days: int = DEFAULT_ISOLATION_DAYS,
) -> Intervention:
    """Distance-``d`` contact tracing and isolating (D1CT / D2CT).

    Each tick: newly symptomatic persons are detected with probability
    ``detection_rate``; their contacts out to graph distance ``distance``
    are traced; traced contacts comply with probability ``compliance`` and
    are isolated together with the index case.  Distance-2 tracing touches
    many more nodes and edges, which is why the paper measures it at almost
    +300%% runtime over the base case.
    """
    if distance not in (1, 2):
        raise ValueError("only distance 1 and 2 tracing are defined")
    releases = _TimedReleases()
    entrants: _NewEntrants | None = None

    def action(sim: Simulation) -> None:
        nonlocal entrants
        if entrants is None:
            entrants = _NewEntrants(sim.model.code("Symptomatic"))
        releases.release_due(sim)
        new = entrants.poll(sim)
        detected = sample_subset(new, detection_rate, sim.rng)
        if detected.size == 0:
            return
        traced = sim.incident.neighbors_of(detected)
        if distance == 2 and traced.size:
            ring2 = sim.incident.neighbors_of(traced)
            traced = np.union1d(traced, ring2)
            traced = np.setdiff1d(traced, detected)
        compliant = sample_subset(traced, compliance, sim.rng)
        to_isolate = np.union1d(detected, compliant)
        _isolate(sim, to_isolate, releases, isolation_days)

    return Intervention(
        name=f"D{distance}CT",
        trigger=lambda sim: sim.tick >= start,
        action=action,
    )


def make_d1ct(detection_rate: float = 0.5, compliance: float = 0.7,
              **kw) -> Intervention:
    """Distance-1 contact tracing with the defaults used by the benches."""
    return make_contact_tracing(1, detection_rate, compliance, **kw)


def make_d2ct(detection_rate: float = 0.5, compliance: float = 0.7,
              **kw) -> Intervention:
    """Distance-2 contact tracing with the defaults used by the benches."""
    return make_contact_tracing(2, detection_rate, compliance, **kw)


#: Scenario presets used by Figure 7 (bottom): each entry extends the base
#: case VHI + SC + SH with additional interventions.
def scenario_interventions(
    name: str,
    *,
    sh_start: int = 10,
    sh_end: int = 80,
    vhi_compliance: float = 0.6,
    sh_compliance: float = 0.7,
) -> list[Intervention]:
    """Build the intervention stack for a named Figure 7 scenario.

    ``base`` is VHI + SC + SH; the other names add one intervention each:
    ``RO``, ``TA``, ``PS``, ``D1CT``, ``D2CT``.
    """
    base = [
        make_vhi(vhi_compliance),
        make_sc(start=sh_start),
        make_sh(sh_compliance, start=sh_start, end=sh_end),
    ]
    extras = {
        "base": [],
        "RO": [make_ro(0.5, start=sh_end)],
        "TA": [make_ta(0.3)],
        "PS": [make_ps(sh_compliance, start=sh_start, days_on=14,
                       days_off=14)],
        "D1CT": [make_d1ct()],
        "D2CT": [make_d2ct()],
    }
    if name not in extras:
        raise KeyError(f"unknown scenario {name!r}; choose from {sorted(extras)}")
    return base + extras[name]


# --- vaccination ----------------------------------------------------------------


def make_vaccination(
    coverage: float,
    efficacy: float,
    *,
    day: int = 0,
    min_age: int = 0,
) -> Intervention:
    """Vaccination campaign (Appendix A: "vaccinating nodes").

    On ``day``, a ``coverage`` fraction of still-susceptible persons aged
    ``min_age``+ is vaccinated.  Successful vaccinations (probability
    ``efficacy``) zero the node's susceptibility trait; failures move the
    person into the RX_Failure state of the Figure 12 model, which remains
    fully susceptible (Table IV).
    """
    if not 0.0 <= efficacy <= 1.0:
        raise ValueError("efficacy must be in [0, 1]")

    def action(sim: Simulation) -> None:
        sus_code = sim.model.code("Susceptible")
        eligible = np.flatnonzero(
            (sim.health == sus_code) & (sim.pop.age >= min_age))
        vaccinated = sample_subset(eligible, coverage, sim.rng)
        if vaccinated.size == 0:
            return
        success = sim.rng.random(vaccinated.size) < efficacy
        protected = vaccinated[success]
        failed = vaccinated[~success]
        sim.node_susceptibility[protected] = 0.0
        if failed.size:
            rx_code = sim.model.code("RX_Failure")
            sim.enter_state(
                failed, np.full(failed.size, rx_code, dtype=np.int8))
        sim.variables["vaccinated"] = (
            sim.variables.get("vaccinated", 0.0) + float(vaccinated.size))

    return Intervention(name="VAX", trigger=lambda sim: sim.tick == day,
                        action=action, once=True)


# --- masking -------------------------------------------------------------------


def make_masking(
    compliance: float,
    *,
    weight_factor: float = 0.4,
    start: int = 0,
    end: int | None = None,
) -> Intervention:
    """Mask mandate: scales contact-edge weights (Table V: ``edge.weight``
    is a read-write system-state value interventions may modify).

    At ``start``, a compliant fraction of persons is sampled; every
    non-home edge with at least one compliant endpoint has its weight
    multiplied by ``weight_factor`` (masks reduce per-contact transmission
    in Eq. 1 without removing the contact).  Weights are restored at
    ``end``.
    """
    if weight_factor < 0:
        raise ValueError("weight_factor must be non-negative")
    state: dict[str, np.ndarray | None] = {"rows": None}

    def action(sim: Simulation) -> None:
        if state["rows"] is None and sim.tick == start:
            everyone = np.arange(sim.pop.size, dtype=np.int64)
            compliant = sample_subset(everyone, compliance, sim.rng)
            rows = sim.incident.edges_of(compliant)
            rows = rows[~sim.home_edge_mask()[rows]]
            sim.edge_weight[rows] *= weight_factor
            state["rows"] = rows
            sim.suppressor.total_operations += int(rows.size)
        elif state["rows"] is not None and end is not None and sim.tick >= end:
            sim.edge_weight[state["rows"]] /= weight_factor
            sim.suppressor.total_operations += int(state["rows"].size)
            state["rows"] = None

    return Intervention(name="MASK", trigger=lambda sim: True,
                        action=action)
