"""Simulated-MPI execution accounting (strong scaling, Figure 7 middle).

EpiHiper is a C++/MPI code; here the epidemic dynamics run in one vectorised
process, and this module reproduces the *parallel execution profile* that a
P-rank MPI run of the same dynamics would have: per-rank edge work from the
partition, per-tick halo exchange of newly exposed node states across cut
edges, and a bulk-synchronous time model (each tick costs the maximum rank
work plus communication, as with Intel MPI collectives on Bridges).

This is the substitution documented in DESIGN.md: communication volume is
accounted rather than physically transported, which preserves the scaling
*shape* — near-linear speedup while compute dominates, then flattening and
eventually slowdown as per-tick message costs overtake shrinking per-rank
work (Section VI: "It may even become slower with too many processes.").

Cost model (arbitrary consistent time units)::

    tick compute(rank) = owned_edges(rank) * C_SCAN          # edge scan
                       + candidates * share * C_EVAL          # Eq. 1 kernels
                       + transitions * share * C_TRANSITION   # state updates
    tick comm          = ALPHA * log2(p) + BETA * p           # collectives
                       + halo_bytes_tick * C_HALO_BYTE        # state halos

Every rank scans its whole partition every tick (the network is resident in
memory, Section III), which is what makes EpiHiper's runtime linear in input
size at fixed processor count (Figure 7 top).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..synthpop.contacts import ContactNetwork
from .engine import SimulationResult
from .partition import Partition

#: Per-edge scan cost per tick (dominant term, linear in network size).
C_SCAN: float = 1.0
#: Per evaluated susceptible-infectious contact (Eq. 1 kernel).
C_EVAL: float = 2.0
#: Per state transition applied.
C_TRANSITION: float = 4.0
#: Collective-latency terms per tick: ALPHA*log2(p) + BETA*p.
ALPHA: float = 100.0
BETA: float = 14.0
#: Per halo byte shipped.
C_HALO_BYTE: float = 0.05
BYTES_PER_STATE_UPDATE: int = 12  #: (node id, new state, tick)


@dataclass(frozen=True, slots=True)
class RankProfile:
    """Execution profile of one simulated MPI run.

    Attributes:
        n_ranks: number of simulated processes.
        per_rank_edges: edges owned by each rank.
        cut_edges: edges crossing ranks (halo edges).
        compute_time: modelled compute time (max-rank work summed over ticks).
        comm_time: modelled communication time.
        halo_bytes: total bytes of state updates exchanged.
    """

    n_ranks: int
    per_rank_edges: np.ndarray
    cut_edges: int
    compute_time: float
    comm_time: float
    halo_bytes: int

    @property
    def total_time(self) -> float:
        """Modelled wall-clock for the run."""
        return self.compute_time + self.comm_time

    def speedup_over(self, serial: "RankProfile") -> float:
        """Speedup relative to a 1-rank profile of the same run."""
        return serial.total_time / self.total_time

    def efficiency_over(self, serial: "RankProfile") -> float:
        """Parallel efficiency: speedup / ranks."""
        return self.speedup_over(serial) / self.n_ranks


def simulate_rank_execution(
    result: SimulationResult,
    net: ContactNetwork,
    partition: Partition,
) -> RankProfile:
    """Profile how ``result``'s dynamics would execute on a partition.

    Args:
        result: a finished simulation (supplies the work counters).
        net: the simulated contact network.
        partition: edge/node ownership from :mod:`repro.epihiper.partition`.
    """
    if partition.node_owner.shape[0] != net.n_nodes:
        raise ValueError("partition does not match network")
    p = partition.n_parts
    per_rank_edges = partition.edge_counts().astype(np.int64)
    cut = partition.cut_edges(net)
    cut_fraction = cut / max(1, net.n_edges)

    n_ticks = max(1, result.n_days)
    max_edges = int(per_rank_edges.max()) if per_rank_edges.size else 0
    share = max_edges / max(1, net.n_edges)

    compute = (
        n_ticks * max_edges * C_SCAN
        + result.counters["contacts_evaluated"] * share * C_EVAL
        + result.counters["transitions"] * share * C_TRANSITION
    )

    # Halo traffic: transitions on nodes with cut edges must be shipped to
    # the neighbouring ranks; approximate the touched fraction by the cut
    # fraction (each update goes to at most a couple of partner ranks).
    halo_updates = int(result.counters["transitions"] * cut_fraction * 2)
    halo_bytes = halo_updates * BYTES_PER_STATE_UPDATE
    comm = 0.0
    if p > 1:
        comm = (
            n_ticks * (ALPHA * math.log2(p) + BETA * p)
            + halo_bytes * C_HALO_BYTE
        )

    return RankProfile(
        n_ranks=p,
        per_rank_edges=per_rank_edges,
        cut_edges=cut,
        compute_time=float(compute),
        comm_time=float(comm),
        halo_bytes=halo_bytes,
    )


def strong_scaling_curve(
    result: SimulationResult,
    net: ContactNetwork,
    rank_counts: list[int],
    partition_fn=None,
) -> list[RankProfile]:
    """Profiles across ``rank_counts`` for a strong-scaling study.

    ``partition_fn(net, p)`` defaults to the paper's threshold algorithm.
    """
    from .partition import partition_threshold

    fn = partition_fn or partition_threshold
    return [
        simulate_rank_execution(result, net, fn(net, p)) for p in rank_counts
    ]


def optimal_rank_count(
    result: SimulationResult,
    net: ContactNetwork,
    max_ranks: int = 512,
) -> int:
    """Rank count minimising modelled wall-clock (the Figure 7 turnover).

    Scans powers of two up to ``max_ranks``; larger networks turn over at
    larger rank counts, which is why the paper sizes node allocations by
    network category rather than "as many as possible".
    """
    best_p, best_t = 1, math.inf
    p = 1
    while p <= max_ranks:
        from .partition import partition_threshold

        prof = simulate_rank_execution(result, net, partition_threshold(net, p))
        if prof.total_time < best_t:
            best_p, best_t = p, prof.total_time
        p *= 2
    return best_p
