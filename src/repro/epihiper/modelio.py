"""JSON serialisation of disease models (Appendix D).

"All inputs to EpiHiper are given in JSON format, with the exception of the
contact network."  This module round-trips :class:`DiseaseModel` objects
through a JSON schema shaped like EpiHiper's disease-model files: a state
list with infectivity/susceptibility annotations, progression edges with
age-stratified probabilities and dwell-time distributions, and transmission
rules.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .disease import DiseaseModel, Progression, Transmission
from .states import (
    DiscreteDwell,
    DwellTime,
    FixedDwell,
    HealthState,
    NormalDwell,
)

SCHEMA_VERSION = 1


def _dwell_to_json(dwell: DwellTime) -> dict[str, Any]:
    if isinstance(dwell, FixedDwell):
        return {"kind": "fixed", "days": dwell.days}
    if isinstance(dwell, NormalDwell):
        return {"kind": "normal", "mean": dwell.mu, "sd": dwell.sd}
    if isinstance(dwell, DiscreteDwell):
        return {"kind": "discrete", "days": list(dwell.days),
                "probs": list(dwell.probs)}
    raise TypeError(f"unknown dwell type {type(dwell).__name__}")


def _dwell_from_json(data: dict[str, Any]) -> DwellTime:
    kind = data.get("kind")
    if kind == "fixed":
        return FixedDwell(int(data["days"]))
    if kind == "normal":
        return NormalDwell(float(data["mean"]), float(data["sd"]))
    if kind == "discrete":
        return DiscreteDwell(tuple(int(d) for d in data["days"]),
                             tuple(float(p) for p in data["probs"]))
    raise ValueError(f"unknown dwell kind {kind!r}")


def model_to_dict(model: DiseaseModel) -> dict[str, Any]:
    """Serialise a disease model to a JSON-compatible dict."""
    return {
        "schema": SCHEMA_VERSION,
        "name": model.name,
        "transmissibility": model.transmissibility,
        "states": [
            {
                "name": s.name,
                "infectivity": s.infectivity,
                "susceptibility": s.susceptibility,
                "symptomatic": s.symptomatic,
                "hospitalized": s.hospitalized,
                "ventilated": s.ventilated,
                "deceased": s.deceased,
            }
            for s in model.states
        ],
        "progressions": [
            {
                "from": p.src,
                "to": p.dst,
                "probability": list(p.prob),
                "dwell": _dwell_to_json(p.dwell),
            }
            for p in model.progressions
        ],
        "transmissions": [
            {
                "susceptible": t.susceptible,
                "infectious": t.infectious,
                "exposed": t.exposed,
                "omega": t.omega,
            }
            for t in model.transmissions
        ],
    }


def model_from_dict(data: dict[str, Any]) -> DiseaseModel:
    """Deserialise a disease model (validates like the constructor)."""
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {data.get('schema')!r}")
    states = [
        HealthState(
            name=s["name"],
            infectivity=float(s.get("infectivity", 0.0)),
            susceptibility=float(s.get("susceptibility", 0.0)),
            symptomatic=bool(s.get("symptomatic", False)),
            hospitalized=bool(s.get("hospitalized", False)),
            ventilated=bool(s.get("ventilated", False)),
            deceased=bool(s.get("deceased", False)),
        )
        for s in data["states"]
    ]
    progressions = [
        Progression(
            src=p["from"],
            dst=p["to"],
            prob=tuple(float(v) for v in p["probability"]),
            dwell=_dwell_from_json(p["dwell"]),
        )
        for p in data["progressions"]
    ]
    transmissions = [
        Transmission(
            susceptible=t["susceptible"],
            infectious=t["infectious"],
            exposed=t["exposed"],
            omega=float(t.get("omega", 1.0)),
        )
        for t in data["transmissions"]
    ]
    return DiseaseModel(
        name=data["name"],
        states=states,
        progressions=progressions,
        transmissions=transmissions,
        transmissibility=float(data.get("transmissibility", 1.0)),
    )


def write_model_json(model: DiseaseModel, path: str | Path) -> None:
    """Write a disease model to a JSON file."""
    Path(path).write_text(json.dumps(model_to_dict(model), indent=2))


def read_model_json(path: str | Path) -> DiseaseModel:
    """Read a disease model from a JSON file."""
    return model_from_dict(json.loads(Path(path).read_text()))
