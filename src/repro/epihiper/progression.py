"""Within-host disease progression (the timed part of the PTTS).

When a person enters a non-terminal state, the next transition is drawn from
the state's outgoing edges — with probabilities stratified by the person's
age group (Table III) — and a dwell time is sampled from the chosen edge's
distribution.  The scheduled transition fires that many ticks later.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .disease import DiseaseModel


@dataclass(slots=True)
class ProgressionState:
    """Per-person scheduling arrays for pending progressions."""

    dwell: np.ndarray  #: int32 ticks remaining; 0 = nothing scheduled
    next_state: np.ndarray  #: int8 scheduled destination; -1 = none
    #: persons with dwell > 0, maintained incrementally at the two mutation
    #: sites so the per-tick memory estimate never re-scans the arrays.
    n_pending: int = 0

    @classmethod
    def empty(cls, n: int) -> "ProgressionState":
        return cls(
            dwell=np.zeros(n, dtype=np.int32),
            next_state=np.full(n, -1, dtype=np.int8),
        )


#: Entry batches at or below this size take the scalar scheduling path.
#: Progression fires a handful of persons per tick at calibration scales,
#: and the vectorised path pays ~20 numpy dispatches per call regardless
#: of size; plain-Python arithmetic wins below roughly a dozen entries.
_SMALL_BATCH: int = 12

#: Plain-python copies of population age-group columns, keyed by array
#: identity.  The scalar scheduler indexes ages with python ints; list
#: indexing skips numpy scalar boxing (~10x per lookup).  The strong
#: reference in the value keeps ``id()`` keys from being recycled.
_AGE_LISTS: dict[int, tuple[np.ndarray, list[int]]] = {}


def _age_list(age_group: np.ndarray) -> list[int]:
    hit = _AGE_LISTS.get(id(age_group))
    if hit is None or hit[0] is not age_group:
        hit = (age_group, age_group.tolist())
        _AGE_LISTS[id(age_group)] = hit
    return hit[1]


def _schedule_small(
    model: DiseaseModel,
    sched: ProgressionState,
    pids: np.ndarray,
    codes: np.ndarray,
    age_group: np.ndarray,
    rng: np.random.Generator,
) -> None:
    """Scalar twin of the vectorised scheduler for tiny entry batches.

    Reproduces the vectorised path's RNG consumption exactly: groups in
    ascending entered-code order (original person order within a group),
    one uniform per person per group, then dwell draws grouped by chosen
    edge in ascending edge order.  Scalar generator calls consume the
    stream like their size-1/size-n array forms, so outputs are
    bit-identical to the vectorised path.
    """
    n_total = pids.shape[0]
    pids_l = pids.tolist()
    codes_l = codes.tolist()
    first_code = codes_l[0]
    if n_total == 1 or all(c == first_code for c in codes_l):
        grouped = ((first_code, pids_l),)
    else:
        order = sorted(range(n_total), key=codes_l.__getitem__)
        grouped = []
        for i in order:
            if grouped and grouped[-1][0] == codes_l[i]:
                grouped[-1][1].append(pids_l[i])
            else:
                grouped.append((codes_l[i], [pids_l[i]]))
    dwell_arr = sched.dwell
    next_arr = sched.next_state
    pending = 0
    for code, persons in grouped:
        out = model.out_edges.get(code)
        if out is None:
            for p in persons:
                if dwell_arr[p] > 0:
                    pending -= 1
                dwell_arr[p] = 0
                next_arr[p] = -1
            continue
        dwells = out[2]
        dsts = model.out_dsts[code]
        n_out = len(dsts)
        n_g = len(persons)
        # One array draw consumes the stream exactly like n_g scalar
        # draws; the python-list round trip skips numpy scalar boxing.
        us = rng.random(n_g).tolist() if n_g > 1 else [rng.random()]
        if n_out == 1:
            dst = dsts[0]
            for p in persons:
                if dwell_arr[p] > 0:
                    pending -= 1
                next_arr[p] = dst
            d0 = dwells[0]
            if n_g == 1:
                drawn = (d0.sample_one(rng),)
            else:
                drawn = d0.sample(n_g, rng).tolist()
            for p, d in zip(persons, drawn):
                dwell_arr[p] = d
                if d > 0:
                    pending += 1
        else:
            cum_age = model.out_cum_age[code]
            ages = _age_list(age_group)
            choices = []
            last = n_out - 1
            for p, u in zip(persons, us):
                if dwell_arr[p] > 0:
                    pending -= 1
                crow = cum_age[ages[p]]
                u *= crow[last]
                k = 0
                while k < last and u >= crow[k]:
                    k += 1
                choices.append(k)
                next_arr[p] = dsts[k]
            for k in range(n_out):
                members = [i for i, c in enumerate(choices) if c == k]
                if not members:
                    continue
                if len(members) == 1:
                    d = dwells[k].sample_one(rng)
                    p = persons[members[0]]
                    dwell_arr[p] = d
                    if d > 0:
                        pending += 1
                else:
                    drawn = dwells[k].sample(len(members), rng).tolist()
                    for i, d in zip(members, drawn):
                        dwell_arr[persons[i]] = d
                        if d > 0:
                            pending += 1
    sched.n_pending += pending


def schedule_entries(
    model: DiseaseModel,
    sched: ProgressionState,
    pids: np.ndarray,
    codes: np.ndarray,
    age_group: np.ndarray,
    rng: np.random.Generator,
) -> None:
    """Sample and schedule the next transition for persons entering states.

    Args:
        model: the disease model (outgoing edges per state).
        sched: the scheduling arrays, updated in place.
        pids: persons entering a new state this tick.
        codes: the state codes entered (parallel to ``pids``).
        age_group: the full population age-group column.
    """
    if pids.size == 0:
        return
    if pids.size <= _SMALL_BATCH:
        _schedule_small(model, sched, pids, codes, age_group, rng)
        return
    # Group entries by entered code.  Transmission batches enter a single
    # code (the exposed state), so the common case is one group; otherwise
    # a stable argsort reproduces np.unique's ascending-code iteration with
    # the original person order preserved inside each group — the RNG draw
    # sequence (one uniform batch per code with out-edges, then one dwell
    # batch per chosen edge) is identical either way.
    if (codes == codes[0]).all():
        grouped = ((int(codes[0]), pids),)
    else:
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_pids = pids[order]
        cuts = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        bounds = np.concatenate(([0], cuts, [sorted_codes.shape[0]]))
        grouped = tuple(
            (int(sorted_codes[bounds[j]]), sorted_pids[bounds[j]:bounds[j + 1]])
            for j in range(bounds.shape[0] - 1))
    for code, persons in grouped:
        out = model.out_edges.get(code)
        was_pending = int((sched.dwell[persons] > 0).sum())
        if out is None:
            # Terminal entries: clear any schedule.
            sched.dwell[persons] = 0
            sched.next_state[persons] = -1
            sched.n_pending -= was_pending
            continue
        dsts, probs, dwells = out
        n = persons.shape[0]
        u = rng.random(n)
        if dsts.shape[0] == 1:
            # Single outgoing edge: the choice is forced (the uniform batch
            # is still drawn, keeping the stream layout uniform).
            sched.next_state[persons] = dsts[0]
            new_dwell = dwells[0].sample(n, rng)
        else:
            # out_cum is the precomputed column-wise cumulative of the
            # (n_out, n_age) probs; gathering person columns out of it is
            # bit-identical to cumsumming after the gather.
            cum = model.out_cum[code][:, age_group[persons]]
            u *= cum[-1]
            choice = (u[None, :] >= cum).sum(axis=0)  # index of chosen edge
            sched.next_state[persons] = dsts[choice]
            new_dwell = np.empty(n, dtype=np.int32)
            for k in range(dsts.shape[0]):
                grp = choice == k
                n_grp = int(grp.sum())
                if n_grp:
                    new_dwell[grp] = dwells[k].sample(n_grp, rng)
        sched.dwell[persons] = new_dwell
        sched.n_pending += int((new_dwell > 0).sum()) - was_pending


def batched_progression_step(
    dwell: np.ndarray,
    next_state: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One progression tick over ``K`` stacked replicate lanes.

    The batched twin of :func:`progression_step`: ``dwell`` and
    ``next_state`` are ``(K, N)`` stacks whose rows are the per-lane
    scheduling arrays.  All decrements, zero-crossing scans, and the
    fired-transition extraction run as whole-stack operations;
    ``np.nonzero`` on the stacked fire mask is row-major, so the flat
    outputs are the per-lane solo results concatenated in lane order with
    each lane's pids ascending — bit-identical to K solo calls.

    Returns:
        ``(sizes, pids, codes, n_hit_zero)``: per-lane fired counts, the
        lane-major flat fired pids and their scheduled destination codes,
        and the per-lane count of dwell counters that reached zero (the
        caller's ``n_pending`` decrement).
    """
    pending = dwell > 0
    np.subtract(dwell, 1, out=dwell, where=pending)
    hit_zero = pending & (dwell == 0)
    n_hit = hit_zero.sum(axis=1)
    fire = hit_zero & (next_state >= 0)
    sizes = fire.sum(axis=1)
    lanes_all, pids_all = np.nonzero(fire)
    flat = lanes_all * dwell.shape[1] + pids_all
    next_flat = next_state.reshape(-1)
    codes = next_flat[flat]
    next_flat[flat] = -1
    return sizes, pids_all, codes, n_hit


def progression_step(
    sched: ProgressionState,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance one tick; return (pids, codes) of transitions firing now.

    Decrements every pending dwell counter in place and returns the persons
    whose counters reached zero together with their scheduled destinations.
    The caller must re-enter those persons (recording the transition and
    scheduling their next hop).
    """
    pending = sched.dwell > 0
    sched.dwell[pending] -= 1
    hit_zero = pending & (sched.dwell == 0)
    sched.n_pending -= int(hit_zero.sum())
    fire = hit_zero & (sched.next_state >= 0)
    pids = np.flatnonzero(fire)
    codes = sched.next_state[pids].copy()
    sched.next_state[pids] = -1
    return pids, codes
