"""Within-host disease progression (the timed part of the PTTS).

When a person enters a non-terminal state, the next transition is drawn from
the state's outgoing edges — with probabilities stratified by the person's
age group (Table III) — and a dwell time is sampled from the chosen edge's
distribution.  The scheduled transition fires that many ticks later.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .disease import DiseaseModel


@dataclass(slots=True)
class ProgressionState:
    """Per-person scheduling arrays for pending progressions."""

    dwell: np.ndarray  #: int32 ticks remaining; 0 = nothing scheduled
    next_state: np.ndarray  #: int8 scheduled destination; -1 = none
    #: persons with dwell > 0, maintained incrementally at the two mutation
    #: sites so the per-tick memory estimate never re-scans the arrays.
    n_pending: int = 0

    @classmethod
    def empty(cls, n: int) -> "ProgressionState":
        return cls(
            dwell=np.zeros(n, dtype=np.int32),
            next_state=np.full(n, -1, dtype=np.int8),
        )


def schedule_entries(
    model: DiseaseModel,
    sched: ProgressionState,
    pids: np.ndarray,
    codes: np.ndarray,
    age_group: np.ndarray,
    rng: np.random.Generator,
) -> None:
    """Sample and schedule the next transition for persons entering states.

    Args:
        model: the disease model (outgoing edges per state).
        sched: the scheduling arrays, updated in place.
        pids: persons entering a new state this tick.
        codes: the state codes entered (parallel to ``pids``).
        age_group: the full population age-group column.
    """
    if pids.size == 0:
        return
    # Terminal entries: clear any schedule.
    for code in np.unique(codes):
        sel = codes == code
        persons = pids[sel]
        out = model.out_edges.get(int(code))
        was_pending = int((sched.dwell[persons] > 0).sum())
        if out is None:
            sched.dwell[persons] = 0
            sched.next_state[persons] = -1
            sched.n_pending -= was_pending
            continue
        dsts, probs, dwells = out
        # probs is (n_out, n_age); pick the column for each person's age
        # group, then sample an outgoing edge per person.
        p = probs[:, age_group[persons]]  # (n_out, n_persons)
        cum = np.cumsum(p, axis=0)
        u = rng.random(persons.shape[0]) * cum[-1]
        choice = (u[None, :] >= cum).sum(axis=0)  # index of chosen edge
        sched.next_state[persons] = dsts[choice]
        for k in range(dsts.shape[0]):
            grp = persons[choice == k]
            if grp.size:
                sched.dwell[grp] = dwells[k].sample(grp.size, rng)
        sched.n_pending += int((sched.dwell[persons] > 0).sum()) - was_pending


def progression_step(
    sched: ProgressionState,
) -> tuple[np.ndarray, np.ndarray]:
    """Advance one tick; return (pids, codes) of transitions firing now.

    Decrements every pending dwell counter in place and returns the persons
    whose counters reached zero together with their scheduled destinations.
    The caller must re-enter those persons (recording the transition and
    scheduling their next hop).
    """
    pending = sched.dwell > 0
    sched.dwell[pending] -= 1
    hit_zero = pending & (sched.dwell == 0)
    sched.n_pending -= int(hit_zero.sum())
    fire = hit_zero & (sched.next_state >= 0)
    pids = np.flatnonzero(fire)
    codes = sched.next_state[pids].copy()
    sched.next_state[pids] = -1
    return pids, codes
