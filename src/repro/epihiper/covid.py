"""The COVID-19 disease model of Figure 12 and Tables III / IV.

State machine (Figure 12)::

    Susceptible --contact--> Exposed
    Exposed -> Asymptomatic -> Recovered
    Exposed -> Presymptomatic -> Symptomatic
    Symptomatic -> Attended            -> Recovered          (mild)
    Symptomatic -> Attended(H) -> Hospitalized -> {Recovered, Ventilated}
                                  Ventilated -> Recovered
    Symptomatic -> Attended(D) -> Hospitalized(D) -> Ventilated(D) -> Death
                   (with early deaths from Attended(D) and Hospitalized(D))
    RX_Failure behaves like Susceptible (Table IV lists its susceptibility).

Age-stratified branching probabilities are taken verbatim from the legible
rows of Table III (each row sums to exactly 1 across the three Symptomatic
branches, which confirms the reading):

==================  ======  ======  ======  ======  =====
transition          0-4     5-17    18-49   50-64   65+
==================  ======  ======  ======  ======  =====
Sympt -> Attd       0.9594  0.9894  0.9594  0.912   0.788
Sympt -> Attd(D)    0.0006  0.0006  0.0006  0.003   0.017
Sympt -> Attd(H)    0.04    0.01    0.04    0.085   0.195
Hosp -> Recovered   0.94    0.94    0.94    0.85    0.775
Hosp -> Vent        0.06    0.06    0.06    0.15    0.225
==================  ======  ======  ======  ======  =====

Dwell times whose rows are garbled in the preprint scan are reconstructed
from the CDC COVID-19 planning-scenario document the table cites [8]
(incubation about 5 days, about 1 day presymptomatic infectious, mild course
about a week); the reconstruction is noted per transition below.

Transmission parameters are Table IV verbatim: global transmissibility 0.18;
infectivity 0.8 (Presymptomatic), 1.0 (Symptomatic), 1.0 (Asymptomatic);
susceptibility 1.0 (Susceptible and RX_Failure).
"""

from __future__ import annotations

from .disease import DiseaseModel, Progression, Transmission, uniform
from .states import DiscreteDwell, FixedDwell, HealthState, NormalDwell

# Canonical state names used throughout the package.
SUSCEPTIBLE = "Susceptible"
EXPOSED = "Exposed"
ASYMPT = "Asymptomatic"
PRESYMPT = "Presymptomatic"
SYMPT = "Symptomatic"
ATTD = "Attended"
ATTD_H = "Attended_H"
ATTD_D = "Attended_D"
HOSP = "Hospitalized"
HOSP_D = "Hospitalized_D"
VENT = "Ventilated"
VENT_D = "Ventilated_D"
RECOVERED = "Recovered"
DEATH = "Death"
RX_FAILURE = "RX_Failure"

#: Table IV values.
TRANSMISSIBILITY = 0.18
INFECTIVITY = {PRESYMPT: 0.8, SYMPT: 1.0, ASYMPT: 1.0}
SUSCEPTIBILITY = {SUSCEPTIBLE: 1.0, RX_FAILURE: 1.0}

#: Table III dt-discrete distribution for Symptomatic -> Attended.
_SYMPT_ATTD_DWELL = DiscreteDwell(
    days=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    probs=(0.175, 0.175, 0.1, 0.1, 0.1, 0.1, 0.1, 0.05, 0.05, 0.05),
)


def covid_states() -> list[HealthState]:
    """The 15 health states of the Figure 12 model."""
    return [
        HealthState(SUSCEPTIBLE, susceptibility=SUSCEPTIBILITY[SUSCEPTIBLE]),
        HealthState(EXPOSED),
        HealthState(ASYMPT, infectivity=INFECTIVITY[ASYMPT]),
        HealthState(PRESYMPT, infectivity=INFECTIVITY[PRESYMPT]),
        HealthState(SYMPT, infectivity=INFECTIVITY[SYMPT], symptomatic=True),
        HealthState(ATTD, symptomatic=True),
        HealthState(ATTD_H, symptomatic=True),
        HealthState(ATTD_D, symptomatic=True),
        HealthState(HOSP, symptomatic=True, hospitalized=True),
        HealthState(HOSP_D, symptomatic=True, hospitalized=True),
        HealthState(VENT, symptomatic=True, hospitalized=True, ventilated=True),
        HealthState(VENT_D, symptomatic=True, hospitalized=True,
                    ventilated=True),
        HealthState(RECOVERED),
        HealthState(DEATH, deceased=True),
        HealthState(RX_FAILURE, susceptibility=SUSCEPTIBILITY[RX_FAILURE]),
    ]


def covid_progressions() -> list[Progression]:
    """Table III progression edges (see module docstring for provenance)."""
    return [
        # Incubation: Exposed splits 0.35 asymptomatic / 0.65 presymptomatic
        # (Table III), dwell N(5, 1).
        Progression(EXPOSED, ASYMPT, uniform(0.35), NormalDwell(5, 1)),
        Progression(EXPOSED, PRESYMPT, uniform(0.65), NormalDwell(5, 1)),
        # Asymptomatic course resolves in about 5 days.
        Progression(ASYMPT, RECOVERED, uniform(1.0), NormalDwell(5, 1)),
        # About 1 day of presymptomatic infectiousness (Table III dt-fixed 1).
        Progression(PRESYMPT, SYMPT, uniform(1.0), FixedDwell(1)),
        # Symptomatic branch: legible age-stratified Table III rows.
        Progression(SYMPT, ATTD,
                    (0.9594, 0.9894, 0.9594, 0.912, 0.788),
                    _SYMPT_ATTD_DWELL),
        Progression(SYMPT, ATTD_D,
                    (0.0006, 0.0006, 0.0006, 0.003, 0.017), FixedDwell(2)),
        Progression(SYMPT, ATTD_H,
                    (0.04, 0.01, 0.04, 0.085, 0.195), FixedDwell(2)),
        # Mild attended course recovers in about 5 days.
        Progression(ATTD, RECOVERED, uniform(1.0), NormalDwell(5, 1)),
        # Hospitalization-bound course (reconstructed dwells: about 3 days
        # from attendance to admission, week-scale stays, longer for old).
        Progression(ATTD_H, HOSP, uniform(1.0), NormalDwell(3, 1)),
        Progression(HOSP, RECOVERED,
                    (0.94, 0.94, 0.94, 0.85, 0.775),
                    NormalDwell(5.3, 3.1)),
        Progression(HOSP, VENT,
                    (0.06, 0.06, 0.06, 0.15, 0.225), NormalDwell(3.1, 2.0)),
        Progression(VENT, RECOVERED, uniform(1.0), NormalDwell(5.5, 3.7)),
        # Death-bound course (Table III: Attd(D)->Hosp(D) 0.95 dt 2;
        # Attd(D)->Death 0.05 dt 8; early and ventilated deaths).
        Progression(ATTD_D, HOSP_D, uniform(0.95), FixedDwell(2)),
        Progression(ATTD_D, DEATH, uniform(0.05), FixedDwell(8)),
        Progression(HOSP_D, VENT_D, uniform(0.85), FixedDwell(2)),
        Progression(HOSP_D, DEATH, uniform(0.15), FixedDwell(6)),
        Progression(VENT_D, DEATH, uniform(1.0), FixedDwell(4)),
    ]


def covid_transmissions() -> list[Transmission]:
    """Transmission rules: any infectious state exposes both susceptible
    states (Susceptible and RX_Failure) with relative rate 1."""
    rules = []
    for sus in (SUSCEPTIBLE, RX_FAILURE):
        for inf in (PRESYMPT, SYMPT, ASYMPT):
            rules.append(Transmission(sus, inf, EXPOSED, omega=1.0))
    return rules


def build_covid_model(transmissibility: float = TRANSMISSIBILITY) -> DiseaseModel:
    """Construct the COVID-19 PTTS.

    Args:
        transmissibility: the global scaling of Eq. 1 (Table IV default
            0.18).  Calibration workflows vary this parameter (TAU in
            Figure 15).
    """
    return DiseaseModel(
        name="covid19",
        states=covid_states(),
        progressions=covid_progressions(),
        transmissions=covid_transmissions(),
        transmissibility=transmissibility,
    )


def build_covid_model_with_symp_fraction(
    transmissibility: float, symptomatic_fraction: float
) -> DiseaseModel:
    """COVID model with a variable symptomatic fraction.

    Case study 3 calibrates two parameters: transmissibility (TAU) and the
    symptomatic/asymptomatic split (SYMP, Figure 15).  This variant replaces
    the fixed 0.65 presymptomatic branch with ``symptomatic_fraction``.
    """
    if not 0.0 <= symptomatic_fraction <= 1.0:
        raise ValueError("symptomatic_fraction must be in [0, 1]")
    progressions = []
    for p in covid_progressions():
        if p.src == EXPOSED and p.dst == ASYMPT:
            p = Progression(EXPOSED, ASYMPT,
                            uniform(1.0 - symptomatic_fraction), p.dwell)
        elif p.src == EXPOSED and p.dst == PRESYMPT:
            p = Progression(EXPOSED, PRESYMPT,
                            uniform(symptomatic_fraction), p.dwell)
        progressions.append(p)
    return DiseaseModel(
        name="covid19-symp",
        states=covid_states(),
        progressions=progressions,
        transmissions=covid_transmissions(),
        transmissibility=transmissibility,
    )
