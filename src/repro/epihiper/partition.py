"""Contact-network partitioning for distributed simulation (Section III).

The paper's objective: split the contact network so that each partition
holds approximately the same number of edges while *all incoming edges of
any given node live in the same partition* (the node's owner rank applies
its state transitions).  The production algorithm is deliberately simple:

    "given a partition, continue to allocate nodes to that partition until
    the number of incoming edges is greater than a threshold (E/P + eps)
    where E is the number of edges, P is the number of partitions, and eps
    is the tolerance factor."

We reproduce that threshold algorithm, the disk cache the paper mentions
("we can also cache the result of the partitioning computation on disk"),
and two ablation baselines (round-robin and networkx/Kernighan-Lin style)
for the partitioning study in DESIGN.md.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..synthpop.contacts import ContactNetwork


@dataclass(frozen=True, slots=True)
class Partition:
    """An edge partition of a contact network.

    Attributes:
        n_parts: number of partitions (MPI ranks).
        node_owner: ``(n_nodes,)`` rank owning each node.
        edge_owner: ``(n_edges,)`` rank owning each edge — always the rank of
            the edge's *target* node, which realises the paper's "incoming
            edges of any given node are in the same partition" invariant.
    """

    n_parts: int
    node_owner: np.ndarray
    edge_owner: np.ndarray

    def edge_counts(self) -> np.ndarray:
        """Edges per partition."""
        return np.bincount(self.edge_owner, minlength=self.n_parts)

    def imbalance(self) -> float:
        """max/mean edge-count ratio (1.0 = perfectly balanced)."""
        counts = self.edge_counts()
        mean = counts.mean()
        return float(counts.max() / mean) if mean > 0 else 1.0

    def cut_edges(self, net: ContactNetwork) -> int:
        """Edges whose endpoints live on different ranks (communication)."""
        return int(
            (self.node_owner[net.source] != self.node_owner[net.target]).sum()
        )


def _in_degrees(net: ContactNetwork) -> np.ndarray:
    """Incoming-edge count per node under the target-owns-edge convention."""
    return np.bincount(net.target, minlength=net.n_nodes)


def partition_threshold(
    net: ContactNetwork, n_parts: int, *, epsilon: float = 0.0
) -> Partition:
    """The paper's threshold algorithm.

    Nodes are scanned in id order and assigned to the current partition
    until its incoming-edge count exceeds ``E / P + epsilon``; then the next
    partition opens.  The last partition absorbs any remainder.

    Args:
        net: the contact network.
        n_parts: number of partitions P (>= 1).
        epsilon: the tolerance factor (absolute edge count).
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    indeg = _in_degrees(net)
    threshold = net.n_edges / n_parts + epsilon

    node_owner = np.empty(net.n_nodes, dtype=np.int32)
    part = 0
    acc = 0
    for node in range(net.n_nodes):
        node_owner[node] = part
        acc += int(indeg[node])
        if acc > threshold and part < n_parts - 1:
            part += 1
            acc = 0
    edge_owner = node_owner[net.target].astype(np.int32)
    return Partition(n_parts, node_owner, edge_owner)


def partition_round_robin(net: ContactNetwork, n_parts: int) -> Partition:
    """Ablation baseline: nodes dealt to ranks round-robin.

    Balances node counts but ignores edge balance and locality.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    node_owner = (np.arange(net.n_nodes) % n_parts).astype(np.int32)
    return Partition(n_parts, node_owner,
                     node_owner[net.target].astype(np.int32))


def partition_degree_greedy(net: ContactNetwork, n_parts: int) -> Partition:
    """Ablation baseline: greedy largest-degree-first bin assignment.

    A more careful (and slower) heuristic: nodes in decreasing in-degree
    order go to the currently lightest partition.  Stands in for the "more
    sophisticated or optimal" algorithms the paper chose not to use.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    indeg = _in_degrees(net)
    order = np.argsort(-indeg, kind="stable")
    loads = np.zeros(n_parts, dtype=np.int64)
    node_owner = np.empty(net.n_nodes, dtype=np.int32)
    for node in order:
        part = int(np.argmin(loads))
        node_owner[node] = part
        loads[part] += int(indeg[node])
    return Partition(n_parts, node_owner,
                     node_owner[net.target].astype(np.int32))


# --- disk cache -----------------------------------------------------------------


def _cache_key(net: ContactNetwork, n_parts: int, epsilon: float) -> str:
    h = hashlib.sha256()
    h.update(net.region_code.encode())
    h.update(np.int64(net.n_nodes).tobytes())
    h.update(np.int64(net.n_edges).tobytes())
    h.update(net.source[: 1000].tobytes())
    h.update(net.target[: 1000].tobytes())
    h.update(np.float64(epsilon).tobytes())
    h.update(np.int64(n_parts).tobytes())
    return h.hexdigest()[:24]


def partition_cached(
    net: ContactNetwork,
    n_parts: int,
    cache_dir: str | Path,
    *,
    epsilon: float = 0.0,
) -> tuple[Partition, bool]:
    """Threshold partition with an on-disk cache.

    The paper caches partitions because partitioning California takes over
    an hour — longer than a typical simulation run.  Returns the partition
    and whether it was a cache hit.
    """
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"part_{_cache_key(net, n_parts, epsilon)}.pkl"
    if path.exists():
        with path.open("rb") as fh:
            data = pickle.load(fh)
        return Partition(**data), True
    part = partition_threshold(net, n_parts, epsilon=epsilon)
    with path.open("wb") as fh:
        pickle.dump(
            {"n_parts": part.n_parts, "node_owner": part.node_owner,
             "edge_owner": part.edge_owner}, fh)
    return part, False
