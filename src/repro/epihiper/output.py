"""Simulation output: per-transition logs and dendograms.

EpiHiper writes one line per state transition: the tick, the person id, the
state entered, and the id of the person who caused it (for transmissions) or
-1 (for progressions).  Dendograms — transmission trees rooted at the initial
infections — are recovered from that log (Section III, "Output data").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import BYTES_PER_TRANSITION


class TransitionRecorder:
    """Append-only, chunked recorder for transition events.

    Python-list appends of numpy chunks avoid quadratic reallocation; the
    arrays are concatenated once at :meth:`finalize`.
    """

    def __init__(self) -> None:
        self._ticks: list[np.ndarray] = []
        self._pids: list[np.ndarray] = []
        self._states: list[np.ndarray] = []
        self._infectors: list[np.ndarray] = []

    def record(
        self,
        tick: int,
        pids: np.ndarray,
        states: np.ndarray,
        infectors: np.ndarray | None = None,
    ) -> None:
        """Record that ``pids`` entered ``states`` at ``tick``.

        ``infectors`` defaults to -1 (progression events).
        """
        n = pids.shape[0]
        if n == 0:
            return
        self._ticks.append(np.full(n, tick, dtype=np.int32))
        self._pids.append(np.asarray(pids, dtype=np.int64))
        self._states.append(np.asarray(states, dtype=np.int8))
        if infectors is None:
            self._infectors.append(np.full(n, -1, dtype=np.int64))
        else:
            self._infectors.append(np.asarray(infectors, dtype=np.int64))

    def record_chunks(
        self,
        ticks: np.ndarray,
        pids: np.ndarray,
        states: np.ndarray,
        infectors: np.ndarray,
    ) -> None:
        """Append pre-built column chunks without conversion.

        The batched driver assembles the columns of several lanes in one
        pass and hands each lane its slice; callers own the dtypes
        (int32 / int64 / int8 / int64, matching :meth:`record`).
        """
        if pids.shape[0] == 0:
            return
        self._ticks.append(ticks)
        self._pids.append(pids)
        self._states.append(states)
        self._infectors.append(infectors)

    def finalize(self) -> "TransitionLog":
        """Concatenate all chunks into an immutable :class:`TransitionLog`."""
        if not self._ticks:
            return TransitionLog(
                np.empty(0, np.int32), np.empty(0, np.int64),
                np.empty(0, np.int8), np.empty(0, np.int64))
        return TransitionLog(
            tick=np.concatenate(self._ticks),
            pid=np.concatenate(self._pids),
            state=np.concatenate(self._states),
            infector=np.concatenate(self._infectors),
        )


@dataclass(frozen=True, slots=True)
class TransitionLog:
    """Immutable columnar transition log (one row per state change)."""

    tick: np.ndarray  #: int32
    pid: np.ndarray  #: int64
    state: np.ndarray  #: int8 state entered
    infector: np.ndarray  #: int64 causing person, or -1 for progressions

    @property
    def size(self) -> int:
        """Number of transition events."""
        return int(self.tick.shape[0])

    @property
    def raw_bytes(self) -> int:
        """Paper-format output size of this log (16 bytes per line)."""
        return self.size * BYTES_PER_TRANSITION

    def transmissions(self) -> np.ndarray:
        """Row indices of transmission (infector >= 0) events."""
        return np.flatnonzero(self.infector >= 0)

    def entering(self, state_code: int) -> np.ndarray:
        """Row indices of events entering ``state_code``."""
        return np.flatnonzero(self.state == state_code)


def transmission_forest(log: TransitionLog) -> dict[int, int]:
    """Child -> parent map of the transmission forest (dendograms).

    Seed infections (introduced by initialization, infector == -1 on their
    exposure event) become roots and are absent from the map.
    """
    rows = log.transmissions()
    return dict(zip(log.pid[rows].tolist(), log.infector[rows].tolist()))


def dendogram_roots(log: TransitionLog, exposed_code: int) -> np.ndarray:
    """Person ids of the initial infections (roots of the dendograms)."""
    mask = (log.state == exposed_code) & (log.infector < 0)
    return np.unique(log.pid[mask])


def dendogram_sizes(log: TransitionLog, exposed_code: int) -> dict[int, int]:
    """Mapping root person id -> total size of its transmission tree.

    Uses path compression over the child->parent forest; total sizes sum to
    the number of ever-infected persons.
    """
    parent = transmission_forest(log)
    roots = set(dendogram_roots(log, exposed_code).tolist())
    sizes = {r: 1 for r in roots}
    cache: dict[int, int] = {r: r for r in roots}

    def find_root(p: int) -> int:
        path = []
        while p not in cache:
            path.append(p)
            p = parent[p]
        root = cache[p]
        for q in path:
            cache[q] = root
        return root

    for child in parent:
        sizes[find_root(child)] += 1
    return sizes


def max_generation(log: TransitionLog, exposed_code: int) -> int:
    """Depth of the deepest transmission chain (0 for seed-only outbreaks)."""
    parent = transmission_forest(log)
    depth: dict[int, int] = {}

    def d(p: int) -> int:
        if p not in parent:
            return 0
        if p in depth:
            return depth[p]
        depth[p] = 1 + d(parent[p])
        return depth[p]

    return max((d(p) for p in parent), default=0)
