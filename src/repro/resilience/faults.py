"""Deterministic, seedable fault injection for the *live* execution path.

The paper's pipeline ran nightly "for over 30 weeks without interruption"
(Section VII) — a claim about operations, not luck.  Reproducing that
robustness requires injecting the failures the production system tolerated
into the real runtime (worker processes, the blob store, the transfer
link, the run journal), not only into the modelled cluster of
:mod:`repro.cluster.failures`.  A :class:`FaultPlan` is the injection
surface: a picklable, stateless recipe that every layer consults at its
fault site, so one plan can follow a spec across process boundaries and a
retried operation deterministically re-encounters (or escapes) its fault.

Fault sites
-----------

==================  =========================================================
site                where it fires
==================  =========================================================
``worker.crash``    pool worker dies hard (``os._exit``) before executing
``worker.exception``  pool worker raises a transient error before executing
``worker.slow``     pool worker sleeps ``delay_s`` before executing
``worker.crash_mid_run``  worker dies hard at simulation tick ``k``
                    (checkpoint/resume drills; requires ``tick=<k>``)
``cas.corrupt``     :meth:`repro.store.cas.ContentStore.put` publishes a
                    blob whose integrity digest does not match its payload
``transfer.fail``   :meth:`repro.cluster.globus.GlobusLink.transfer` attempt
                    fails (retried under the link's policy)
``ledger.torn``     :meth:`repro.store.ledger.RunLedger.append` writes a
                    truncated line (the record is lost, the file survives)
==================  =========================================================

Determinism is the load-bearing property: whether a rule fires depends only
on ``(plan seed, site, operation key, attempt)`` through a keyed hash —
never on wall-clock, call order, or process identity.  That is what makes
the chaos-equivalence guarantee testable: a faulted run retries into the
same RNG streams as a clean run and produces bit-identical results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Every fault site a plan may target, with where it fires (the mapping
#: supports ``site in FAULT_SITES`` checks and the ``chaos sites`` listing).
FAULT_SITES: dict[str, str] = {
    "worker.crash": "pool worker dies hard (os._exit) before executing",
    "worker.exception": "worker raises a transient error before executing",
    "worker.slow": "worker sleeps delay_s before executing",
    "worker.crash_mid_run": "worker dies hard at simulation tick k mid-run",
    "cas.corrupt": "store publishes a blob whose digest does not match",
    "transfer.fail": "a Globus transfer attempt fails (retried)",
    "ledger.torn": "the ledger writes a truncated line (record lost)",
}

#: Exit code an injected ``worker.crash`` dies with (distinctive in logs).
CRASH_EXIT_CODE: int = 17


class InjectedFault(RuntimeError):
    """An error raised by an injected fault (picklable across workers).

    Attributes:
        site: the fault site that fired.
        detail: the operation key and attempt the fault hit.
    """

    def __init__(self, site: str, detail: str = "") -> None:
        super().__init__(site, detail)
        self.site = site
        self.detail = detail

    def __str__(self) -> str:
        return f"injected {self.site} ({self.detail})"


def hash_uniform(seed: int, *parts: object) -> float:
    """A deterministic uniform draw in [0, 1) keyed by ``parts``.

    Stateless by construction: the same (seed, parts) always yields the
    same value, in any process, regardless of how many other draws
    happened — the property that keeps fault plans reproducible across
    pool workers and retries.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(seed)).encode())
    for part in parts:
        h.update(b"\x1f")
        h.update(str(part).encode())
    return int.from_bytes(h.digest(), "big") / 2.0**64


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One injection rule: where, how often, and against what.

    Attributes:
        site: one of :data:`FAULT_SITES`.
        probability: chance the rule fires per eligible operation (drawn
            deterministically from the plan seed; 1.0 = always).
        times: fire only on attempts ``< times`` of each operation (None =
            every attempt).  ``times=1`` is the canonical "fail once, then
            recover" rule.
        match: substring the operation key must contain ("" matches all).
        delay_s: for ``worker.slow``, how long the worker sleeps.
        tick: for ``worker.crash_mid_run``, the simulation tick the worker
            dies at (deterministic kill point inside the tick loop).
    """

    site: str
    probability: float = 1.0
    times: int | None = None
    match: str = ""
    delay_s: float = 0.0
    tick: int | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r} "
                f"(one of {', '.join(FAULT_SITES)})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 (or None)")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")
        if self.tick is not None and self.tick < 0:
            raise ValueError("tick must be non-negative (or None)")
        if self.site == "worker.crash_mid_run" and self.tick is None:
            raise ValueError("worker.crash_mid_run requires tick=<k>")

    @classmethod
    def parse(cls, text: str) -> "FaultRule":
        """Parse a CLI rule spec: ``site[:k=v,...]``.

        Examples: ``worker.crash:times=1``, ``cas.corrupt:p=0.5``,
        ``worker.slow:delay=0.2,match=VT``.
        """
        site, _, rest = text.partition(":")
        kwargs: dict[str, object] = {}
        if rest:
            for item in rest.split(","):
                key, eq, val = item.partition("=")
                if not eq:
                    raise ValueError(f"bad fault option {item!r} "
                                     f"(expected k=v)")
                key = key.strip()
                if key in ("p", "probability"):
                    kwargs["probability"] = float(val)
                elif key == "times":
                    kwargs["times"] = int(val)
                elif key == "match":
                    kwargs["match"] = val
                elif key in ("delay", "delay_s"):
                    kwargs["delay_s"] = float(val)
                elif key == "tick":
                    kwargs["tick"] = int(val)
                else:
                    raise ValueError(f"unknown fault option {key!r}")
        return cls(site=site.strip(), **kwargs)  # type: ignore[arg-type]

    def applies(self, key: str, attempt: int) -> bool:
        """Whether this rule is eligible for (key, attempt) before the
        probability draw."""
        if self.match and self.match not in key:
            return False
        if self.times is not None and attempt >= self.times:
            return False
        return True


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seeded set of fault rules, consulted at every fault site.

    The plan is frozen and carries no mutable state, so it pickles to pool
    workers and every consumer — parent, worker, retry — sees the same
    deterministic decisions.  An empty plan (no rules) never fires, which
    is what every layer defaults to in production.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, specs: list[str] | tuple[str, ...],
              seed: int = 0) -> "FaultPlan":
        """Build a plan from CLI rule specs (see :meth:`FaultRule.parse`)."""
        return cls(rules=tuple(FaultRule.parse(s) for s in specs), seed=seed)

    def active(self, site: str) -> bool:
        """Whether any rule targets ``site`` at all (cheap pre-check)."""
        return any(r.site == site for r in self.rules)

    def fires(self, site: str, key: str = "", attempt: int = 0) -> bool:
        """Whether the fault at ``site`` fires for (key, attempt)."""
        for rule in self.rules:
            if rule.site != site or not rule.applies(key, attempt):
                continue
            if rule.probability >= 1.0:
                return True
            if hash_uniform(self.seed, site, key, attempt) < rule.probability:
                return True
        return False

    def crash_tick(self, key: str = "", attempt: int = 0) -> int | None:
        """Tick a ``worker.crash_mid_run`` rule kills (key, attempt) at.

        Returns None when no rule fires — the common case, so the tick
        loop's per-tick check is one integer comparison.
        """
        for rule in self.rules:
            if (rule.site != "worker.crash_mid_run"
                    or not rule.applies(key, attempt)):
                continue
            if rule.probability >= 1.0 or hash_uniform(
                    self.seed, rule.site, key, attempt) < rule.probability:
                return rule.tick
        return None

    def delay(self, site: str, key: str = "", attempt: int = 0) -> float:
        """Injected delay for ``site`` (0.0 when no slow rule fires)."""
        total = 0.0
        for rule in self.rules:
            if rule.site != site or not rule.applies(key, attempt):
                continue
            if rule.probability >= 1.0 or hash_uniform(
                    self.seed, site, key, attempt) < rule.probability:
                total += rule.delay_s
        return total

    def describe(self) -> str:
        """One-line human summary (the chaos CLI header)."""
        if not self.rules:
            return "no faults"
        parts = []
        for r in self.rules:
            bits = [r.site]
            if r.probability < 1.0:
                bits.append(f"p={r.probability:g}")
            if r.times is not None:
                bits.append(f"times={r.times}")
            if r.match:
                bits.append(f"match={r.match}")
            if r.delay_s:
                bits.append(f"delay={r.delay_s:g}s")
            if r.tick is not None:
                bits.append(f"tick={r.tick}")
            parts.append(":".join([bits[0], ",".join(bits[1:])])
                         if len(bits) > 1 else bits[0])
        return " ".join(parts) + f" (seed {self.seed})"
