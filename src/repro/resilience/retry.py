"""Retry policy: backoff, timeouts, and transient-vs-permanent triage.

Supervised execution needs one small vocabulary shared by every layer:
which errors are worth retrying (a lost worker, a flaky transfer), which
are poison (a spec that deterministically raises), how long to back off
between attempts, and when to stop trying and quarantine.  The policy is
frozen and seeded so backoff jitter is deterministic — two runs of the
same faulted night sleep the same schedule, which keeps chaos runs
reproducible end to end.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from .faults import InjectedFault, hash_uniform

#: Classification labels.
TRANSIENT = "transient"
PERMANENT = "permanent"


class TransientError(RuntimeError):
    """An error expected to succeed on retry (lost node, flaky link)."""


class PermanentError(RuntimeError):
    """An error retries cannot fix (malformed spec, poisoned input)."""


#: Exception types retried by default: infrastructure failures, not logic
#: errors.  ``InjectedFault`` is transient because every injected site
#: models an infrastructure fault; anything else (ValueError from a bad
#: parameter, KeyError from a missing region) is deterministic poison and
#: retrying it would burn the window re-raising the same exception.
TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    TransientError,
    InjectedFault,
    TimeoutError,
    ConnectionError,
    InterruptedError,
    BrokenProcessPool,
    BrokenPipeError,
)


def classify(exc: BaseException) -> str:
    """Triage an exception: :data:`TRANSIENT` or :data:`PERMANENT`."""
    if isinstance(exc, PermanentError):
        return PERMANENT
    if isinstance(exc, TRANSIENT_TYPES):
        return TRANSIENT
    return PERMANENT


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Knobs for supervised execution of one operation class.

    Attributes:
        max_attempts: total attempts per operation before quarantine
            (1 = no retries).
        base_delay_s: backoff before the first retry.
        factor: exponential growth of the backoff per retry.
        max_delay_s: backoff ceiling.
        jitter: +/- fraction applied to each backoff, drawn
            deterministically from ``seed`` and the operation key (0
            disables jitter).
        timeout_s: per-attempt wall-clock limit; an attempt that exceeds
            it is abandoned and classified transient (None = no limit).
        max_pool_rebuilds: how many times a broken process pool is rebuilt
            before the in-flight work is given up.
        seed: jitter seed.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    factor: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.25
    timeout_s: float | None = None
    max_pool_rebuilds: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")

    def backoff_s(self, key: str, retry_index: int) -> float:
        """Deterministic backoff before retry ``retry_index`` (0-based)."""
        delay = min(self.base_delay_s * self.factor ** retry_index,
                    self.max_delay_s)
        if self.jitter and delay > 0:
            u = hash_uniform(self.seed, "backoff", key, retry_index)
            delay *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return delay


#: Policy used when a caller asks for supervision without tuning knobs.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Policy that reproduces unsupervised semantics: one attempt, no waiting
#: (pool rebuilds still happen — losing a worker should never lose a run).
NO_RETRY_POLICY = RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0)


@dataclass(frozen=True)
class QuarantineRecord:
    """One operation given up on: what failed, how, and how often.

    Attributes:
        key: the operation key (an instance label, a transfer name).
        item: the quarantined work item itself (an ``InstanceSpec``).
        error: the final exception, rendered.
        kind: :data:`TRANSIENT` (attempts exhausted), :data:`PERMANENT`
            (poison, not retried), or ``"pool"`` (repeated pool breakage).
        attempts: how many attempts were made.
    """

    key: str
    item: Any
    error: str
    kind: str
    attempts: int

    def describe(self) -> str:
        """One quarantine-report line."""
        return (f"{self.key}: {self.kind} after {self.attempts} "
                f"attempt{'s' if self.attempts != 1 else ''} — {self.error}")
