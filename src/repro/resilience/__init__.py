"""Resilient execution plane: fault injection, retries, degradation.

The modelled cluster (:mod:`repro.cluster.failures`) studies failure
*statistics*; this package makes the *live* runtime survive them, the way
the paper's 30-week nightly operation did:

- :mod:`~repro.resilience.faults` — a deterministic, seedable
  :class:`FaultPlan` consulted at six fault sites across the runner,
  store, transfer and journal layers (the ``repro chaos`` CLI drives it);
- :mod:`~repro.resilience.retry` — :class:`RetryPolicy` (exponential
  backoff, deterministic jitter, timeouts) and transient-vs-permanent
  error triage;
- :mod:`~repro.resilience.supervisor` — :func:`supervise_map`, the
  future-based fan-out with broken-pool rebuild, result salvage and
  quarantine that replaced ``pool.map`` in
  :func:`repro.core.parallel.run_instances`;
- :mod:`~repro.resilience.degrade` — deadline-aware replicate shedding
  for :func:`repro.core.orchestrator.orchestrate_night`.

The invariant tying it together: recovery re-enters the same RNG streams,
so a faulted run's surviving results are bit-identical to a clean run's.
"""

from .degrade import DegradationResult, degrade_to_window, replicate_of
from .faults import (
    CRASH_EXIT_CODE,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    hash_uniform,
)
from .retry import (
    DEFAULT_RETRY_POLICY,
    NO_RETRY_POLICY,
    PERMANENT,
    TRANSIENT,
    PermanentError,
    QuarantineRecord,
    RetryPolicy,
    TransientError,
    classify,
)
from .supervisor import QUARANTINE, RAISE, FanoutResult, supervise_map

__all__ = [
    "CRASH_EXIT_CODE",
    "DEFAULT_RETRY_POLICY",
    "DegradationResult",
    "FAULT_SITES",
    "FanoutResult",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "NO_RETRY_POLICY",
    "PERMANENT",
    "PermanentError",
    "QUARANTINE",
    "QuarantineRecord",
    "RAISE",
    "RetryPolicy",
    "TRANSIENT",
    "TransientError",
    "classify",
    "degrade_to_window",
    "hash_uniform",
    "replicate_of",
    "supervise_map",
]
