"""Deadline-aware degradation: shed replicates, never blow the window.

The nightly contract is a fixed 10-hour exclusive window (Section I); a
projected makespan that exceeds it is an operational decision point, not a
boolean to report.  The production playbook's answer is graceful
degradation: drop the *least valuable* work — highest-index replicates —
until the night fits, while preserving coverage (every <cell, region>
keeps at least ``min_replicates`` replicates so every design point still
produces an estimate, just a noisier one).

Shedding is deterministic: tiers are dropped highest-replicate-first with
no randomness, so a degraded night is exactly reproducible and the shed
set can be journaled to the run ledger (and re-queued another night).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.machines import BRIDGES, ClusterSpec
from ..cluster.slurm import ScheduleResult
from ..obs.registry import MetricsRegistry
from ..scheduling.metrics import execute_packing
from ..scheduling.wmp import MappingTask, WMPInstance


def replicate_of(task: MappingTask, replicates: int) -> int:
    """The replicate index encoded in a nightly task's cell number.

    :func:`~repro.scheduling.wmp.make_nightly_instance` lays tasks out as
    ``cell = design_cell * replicates + replicate``; this inverts that.
    """
    return task.cell % replicates


def cell_of(task: MappingTask, replicates: int) -> tuple[str, int]:
    """The <region, design-cell> group a task contributes coverage to."""
    return (task.region_code, task.cell // replicates)


@dataclass(frozen=True)
class DegradationResult:
    """What shedding decided for one night.

    Attributes:
        instance: the (possibly reduced) instance to execute.
        schedule: the projected schedule of that instance.
        shed: tasks dropped, in shedding order (highest tiers first).
        rounds: packing projections performed.
    """

    instance: WMPInstance
    schedule: ScheduleResult
    shed: list[MappingTask] = field(default_factory=list)
    rounds: int = 1

    @property
    def degraded(self) -> bool:
        """Whether any work was shed."""
        return bool(self.shed)

    @property
    def shed_task_ids(self) -> tuple[str, ...]:
        """Ledger-ready ids of the shed tasks."""
        return tuple(t.task_id for t in self.shed)


def degrade_to_window(
    instance: WMPInstance,
    *,
    window_s: float,
    packer,
    replicates: int,
    cluster: ClusterSpec = BRIDGES,
    min_replicates: int = 1,
    metrics: MetricsRegistry | None = None,
) -> DegradationResult:
    """Shed lowest-priority replicates until the projection fits.

    Each round projects the makespan (pack + simulated execution), and if
    it exceeds ``window_s`` drops the highest replicate tier still
    present — but only tasks whose <cell, region> group retains at least
    ``min_replicates`` lower replicates, so per-cell coverage survives.
    When nothing sheddable remains the best-effort instance is returned
    (its schedule may still blow the window; the caller reports that).

    Args:
        instance: the night's DB-WMP instance.
        window_s: the access-window length in seconds.
        packer: the mapping algorithm (``pack_ffdt_dc`` / ``pack_nfdt_dc``).
        replicates: the design's replicates per cell (decodes tiers).
        cluster: the remote machine the projection runs on.
        min_replicates: coverage floor per <cell, region>.
        metrics: receives ``degrade.*`` accounting (rounds, shed count);
            the projection's ``slurm.*`` metrics go to a scratch registry
            so the caller's night telemetry stays clean.
    """
    if min_replicates < 1:
        raise ValueError("min_replicates must be >= 1")
    reg = metrics if metrics is not None else MetricsRegistry()
    inst = instance
    shed: list[MappingTask] = []
    rounds = 0
    while True:
        rounds += 1
        scratch = MetricsRegistry()
        schedule = execute_packing(packer(inst), cluster=cluster,
                                   metrics=scratch)
        if schedule.makespan <= window_s:
            break
        tiers = sorted({replicate_of(t, replicates) for t in inst.tasks},
                       reverse=True)
        dropped: list[MappingTask] = []
        for tier in tiers:
            if tier < min_replicates:
                break  # only tiers above the coverage floor are sheddable
            group_sizes: dict[tuple[str, int], int] = {}
            for t in inst.tasks:
                key = cell_of(t, replicates)
                group_sizes[key] = group_sizes.get(key, 0) + 1
            dropped = [
                t for t in inst.tasks
                if replicate_of(t, replicates) == tier
                and group_sizes[cell_of(t, replicates)] > min_replicates
            ]
            if dropped:
                break
        if not dropped:
            break  # nothing left to shed; report the blown window as-is
        drop_ids = {t.task_id for t in dropped}
        shed.extend(sorted(dropped, key=lambda t: t.task_id))
        inst = WMPInstance(
            tasks=[t for t in inst.tasks if t.task_id not in drop_ids],
            machine_width=inst.machine_width,
            db_caps=inst.db_caps,
        )
    reg.inc("degrade.rounds", rounds)
    reg.inc("degrade.shed_instances", len(shed))
    return DegradationResult(instance=inst, schedule=schedule, shed=shed,
                             rounds=rounds)
