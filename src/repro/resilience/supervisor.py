"""Supervised fan-out: future-based submission with retry and quarantine.

``pool.map`` is an all-or-nothing contract: one worker exception aborts
the whole batch, one dead worker process poisons every pending result.
:func:`supervise_map` replaces it with per-item futures under a
supervisor loop that implements the operations discipline the paper's
30-week nightly pipeline relied on:

- every item is retried under a :class:`~repro.resilience.retry.RetryPolicy`
  (exponential backoff with deterministic jitter, per-attempt timeouts,
  transient-vs-permanent triage);
- a ``BrokenProcessPool`` rebuilds the pool, salvages every result already
  harvested, and resubmits only the in-flight items (bounded by
  ``max_pool_rebuilds`` against crash loops);
- items that exhaust their attempts — or fail permanently on the first —
  are quarantined, so the batch returns partial results plus a quarantine
  report instead of dying;
- every attempt, retry, backoff and quarantine is published as ``retry.*``
  metrics, and injected faults are counted under ``faults.*``.

The function is generic over the work item so the same supervisor serves
instance fan-out today and any future batch executor; it deliberately
knows nothing about simulations.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..obs.registry import MetricsRegistry, Stopwatch, global_registry
from .faults import FaultPlan, InjectedFault
from .retry import (
    NO_RETRY_POLICY,
    PERMANENT,
    QuarantineRecord,
    RetryPolicy,
    classify,
)

#: Failure disposition: propagate the first give-up, or collect it.
RAISE = "raise"
QUARANTINE = "quarantine"


@dataclass
class FanoutResult:
    """Outcome of one supervised batch.

    Attributes:
        results: one entry per input item, in input order; ``None`` marks
            a quarantined item.
        quarantined: the items given up on, in input order.
        attempts: total submissions across the batch (>= len(items)).
        retries: resubmissions after a classified failure.
        pool_rebuilds: times a broken process pool was rebuilt.
        ticks_saved: simulation ticks *not* re-executed because retries
            resumed from checkpoints instead of tick 0 (0 when
            checkpointing is off).
    """

    results: list[Any]
    quarantined: list[QuarantineRecord] = field(default_factory=list)
    attempts: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    ticks_saved: int = 0

    @property
    def ok(self) -> bool:
        """Whether every item produced a result."""
        return not self.quarantined

    def completed(self) -> list[Any]:
        """The non-quarantined results, input order preserved."""
        return [r for r in self.results if r is not None]

    def summary(self) -> str:
        """Human-readable batch digest plus the quarantine report."""
        n = len(self.results)
        lines = [
            f"{n - len(self.quarantined)}/{n} completed, "
            f"{self.attempts} attempts ({self.retries} retries, "
            f"{self.pool_rebuilds} pool rebuilds)"
        ]
        if self.ticks_saved:
            lines.append(
                f"checkpoint resume saved {self.ticks_saved} ticks of work")
        if self.quarantined:
            lines.append(f"quarantined {len(self.quarantined)}:")
            lines.extend("  " + q.describe() for q in self.quarantined)
        return "\n".join(lines)


class _Supervisor:
    """Shared bookkeeping between the serial and pooled execution paths."""

    def __init__(self, items: Sequence[Any], keys: Sequence[str], *,
                 retry: RetryPolicy, on_failure: str,
                 registry: MetricsRegistry, ledger=None,
                 on_result: Callable[[int, Any], None] | None = None,
                 start_attempts: Sequence[int] | None = None,
                 prior_failures: Sequence[int] | None = None) -> None:
        if on_failure not in (RAISE, QUARANTINE):
            raise ValueError(f"on_failure must be {RAISE!r} or {QUARANTINE!r}")
        self.items = items
        self.keys = keys
        self.retry = retry
        self.on_failure = on_failure
        self.reg = registry
        self.ledger = ledger
        self.on_result = on_result
        self.results: list[Any] = [None] * len(items)
        self.done: list[bool] = [False] * len(items)
        self.failures = (list(prior_failures) if prior_failures is not None
                         else [0] * len(items))
        self.start_attempts = (list(start_attempts)
                               if start_attempts is not None
                               else [0] * len(items))
        self.quarantined: list[tuple[int, QuarantineRecord]] = []
        self.attempts = 0
        self.retries = 0
        self.pool_rebuilds = 0

    def record_attempt(self) -> None:
        self.attempts += 1
        self.reg.inc("retry.attempts")

    def harvest(self, i: int, result: Any) -> None:
        self.results[i] = result
        self.done[i] = True
        if self.on_result is not None:
            self.on_result(i, result)

    def give_up(self, i: int, exc: BaseException, kind: str,
                attempts: int) -> None:
        """Quarantine item ``i`` — or propagate, per ``on_failure``."""
        self.reg.inc("retry.quarantined")
        if self.ledger is not None:
            self.ledger.instance_failed(
                self.keys[i], error=f"{type(exc).__name__}: {exc}",
                quarantined=True, kind=kind, attempts=attempts)
        if self.on_failure == RAISE:
            raise exc
        self.quarantined.append((i, QuarantineRecord(
            key=self.keys[i], item=self.items[i],
            error=f"{type(exc).__name__}: {exc}", kind=kind,
            attempts=attempts)))

    def on_error(self, i: int, attempt: int,
                 exc: BaseException) -> float | None:
        """Classify a failed attempt.

        Returns the backoff (seconds) before the retry, or None when the
        item was given up.
        """
        if isinstance(exc, InjectedFault):
            self.reg.inc(f"faults.{exc.site}")
        self.reg.inc("retry.failures")
        kind = classify(exc)
        self.failures[i] += 1
        if kind == PERMANENT or self.failures[i] >= self.retry.max_attempts:
            self.give_up(i, exc, kind, attempts=attempt + 1)
            return None
        self.retries += 1
        self.reg.inc("retry.retries")
        delay = self.retry.backoff_s(self.keys[i], self.failures[i] - 1)
        self.reg.observe("retry.backoff_s", delay)
        return delay

    def result(self) -> FanoutResult:
        self.quarantined.sort(key=lambda pair: pair[0])
        return FanoutResult(
            results=self.results,
            quarantined=[rec for _i, rec in self.quarantined],
            attempts=self.attempts,
            retries=self.retries,
            pool_rebuilds=self.pool_rebuilds,
        )


def supervise_map(
    fn: Callable[..., Any],
    items: Sequence[Any],
    *,
    keys: Sequence[str] | None = None,
    make_pool: Callable[[], Any] | None = None,
    pool_fn: Callable[..., Any] | None = None,
    submit_order: Sequence[int] | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    on_failure: str = QUARANTINE,
    registry: MetricsRegistry | None = None,
    ledger=None,
    on_result: Callable[[int, Any], None] | None = None,
    start_attempts: Sequence[int] | None = None,
    prior_failures: Sequence[int] | None = None,
    timeout_of: Callable[[Any, int], float | None] | None = None,
) -> FanoutResult:
    """Execute ``fn(item, attempt, faults)`` for every item, supervised.

    Args:
        fn: the work function for in-process execution; called as
            ``fn(item, attempt, faults)``.
        items: the work items (results come back in this order).
        keys: per-item operation keys for fault matching, backoff jitter
            and ledger records (default: the item's string form).
        make_pool: zero-arg factory building a fresh process pool; None
            runs everything in-process.  The factory is re-invoked after
            a ``BrokenProcessPool``.
        pool_fn: picklable top-level work function used for pool
            submission (defaults to ``fn``); split from ``fn`` so the
            pooled variant may take worker-only liberties (``os._exit``
            crash injection) the in-process variant must not.
        submit_order: index order for initial submission (cache-warmth
            sorting); results are still returned in input order.
        retry: the :class:`~repro.resilience.retry.RetryPolicy`; None
            means one attempt per item with no backoff (pool rebuilds
            still bounded and active).
        faults: optional :class:`~repro.resilience.faults.FaultPlan`
            forwarded to every ``fn`` call.
        on_failure: ``"raise"`` propagates the first given-up item's
            exception (the historical ``pool.map`` contract);
            ``"quarantine"`` collects it and keeps going.
        registry: ``retry.*`` / ``faults.*`` metrics sink (defaults to the
            process global registry).
        ledger: optional run ledger; quarantines are journaled as
            ``instance_failed`` events with ``quarantined=True``.
        on_result: callback invoked as ``on_result(index, result)`` the
            moment each item's result is harvested — the hook that lets
            callers merge worker telemetry incrementally instead of
            losing it all to a mid-batch exception.
        start_attempts: per-item first attempt number (default 0).  Used
            by callers resuming items whose earlier attempts ran
            elsewhere — a spec evicted from a replicate batch re-enters
            the solo fan-out at attempt 1, so fault rules and backoff
            keys see one consistent attempt sequence.
        prior_failures: per-item failure counts already charged against
            the retry budget (default 0); combined with
            ``start_attempts`` this makes quarantine ``attempts``
            accounting match an uninterrupted run.
        timeout_of: optional ``(item, attempt) -> seconds | None``
            overriding the policy's flat per-attempt timeout.  Lets a
            checkpoint-aware caller scale the deadline to the work
            actually *remaining* — a resumed attempt near the end of a
            long run should not inherit the full-run budget, and a
            restart from tick 0 should not be cut short by a deadline
            sized for the tail.  Pooled execution only (the serial path
            never enforces timeouts).

    Returns:
        A :class:`FanoutResult` (partial on quarantine, never on error —
        errors either retry, quarantine, or propagate per ``on_failure``).
    """
    sup = _Supervisor(
        items, list(keys) if keys is not None else [str(x) for x in items],
        retry=retry or NO_RETRY_POLICY, on_failure=on_failure,
        registry=registry if registry is not None else global_registry(),
        ledger=ledger, on_result=on_result,
        start_attempts=start_attempts, prior_failures=prior_failures)
    if not items:
        return sup.result()
    if make_pool is None:
        _run_serial(sup, fn, faults)
    else:
        _run_pooled(sup, pool_fn or fn, faults, make_pool,
                    submit_order=submit_order, timeout_of=timeout_of)
    return sup.result()


def _run_serial(sup: _Supervisor, fn: Callable[..., Any],
                faults: FaultPlan | None) -> None:
    """In-process execution with the same retry/quarantine semantics.

    Per-attempt timeouts are not enforced here: there is no second
    process to abandon a stuck attempt from (the pooled path enforces
    them).
    """
    for i, item in enumerate(sup.items):
        attempt = sup.start_attempts[i]
        while True:
            sup.record_attempt()
            try:
                result = fn(item, attempt, faults)
            except Exception as exc:  # noqa: BLE001 — triaged by policy
                delay = sup.on_error(i, attempt, exc)
                if delay is None:
                    break  # quarantined (give_up raises under "raise")
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
            else:
                sup.harvest(i, result)
                break


def _run_pooled(sup: _Supervisor, fn: Callable[..., Any],
                faults: FaultPlan | None, make_pool: Callable[[], Any], *,
                submit_order: Sequence[int] | None = None,
                timeout_of: Callable[[Any, int], float | None] | None = None,
                ) -> None:
    """Future-based pool execution with rebuild-and-salvage supervision."""
    clock = Stopwatch()
    pool = make_pool()
    pending: dict[Future, tuple[int, int]] = {}
    deadlines: dict[Future, tuple[float, float]] = {}  # fut -> (dl, budget)
    delayed: list[tuple[float, int, int, int]] = []  # (ready, seq, i, att)
    seq = 0

    def attempt_timeout(i: int, attempt: int) -> float | None:
        if timeout_of is not None:
            return timeout_of(sup.items[i], attempt)
        return sup.retry.timeout_s

    def submit(i: int, attempt: int) -> None:
        sup.record_attempt()
        fut = pool.submit(fn, sup.items[i], attempt, faults)
        pending[fut] = (i, attempt)
        budget = attempt_timeout(i, attempt)
        if budget is not None:
            deadlines[fut] = (clock.elapsed() + budget, budget)

    try:
        for i in (submit_order if submit_order is not None
                  else range(len(sup.items))):
            submit(i, sup.start_attempts[i])
        while pending or delayed:
            now = clock.elapsed()
            while delayed and delayed[0][0] <= now:
                _ready, _seq, i, attempt = heapq.heappop(delayed)
                submit(i, attempt)
            if not pending:
                time.sleep(max(0.0, delayed[0][0] - now))
                continue
            wait_s = None
            if delayed:
                wait_s = max(0.0, delayed[0][0] - now)
            if deadlines:
                until_deadline = max(
                    0.0, min(dl for dl, _b in deadlines.values()) - now)
                wait_s = (until_deadline if wait_s is None
                          else min(wait_s, until_deadline))
            finished, _ = wait(set(pending), timeout=wait_s,
                               return_when=FIRST_COMPLETED)
            broken: list[tuple[int, int]] = []
            for fut in finished:
                i, attempt = pending.pop(fut)
                deadlines.pop(fut, None)
                try:
                    result = fut.result()
                except BrokenProcessPool:
                    broken.append((i, attempt))
                except Exception as exc:  # noqa: BLE001 — triaged
                    delay = sup.on_error(i, attempt, exc)
                    if delay is not None:
                        heapq.heappush(
                            delayed,
                            (clock.elapsed() + delay, seq, i, attempt + 1))
                        seq += 1
                else:
                    sup.harvest(i, result)
            # Per-attempt timeouts: abandon overdue futures.  A running
            # worker cannot be interrupted, so its eventual result is
            # simply discarded (it is no longer tracked) while the item
            # retries on a free worker — the idempotent-replicate
            # property makes the duplicate execution harmless.
            if deadlines:
                now = clock.elapsed()
                overdue = [f for f, (dl, _b) in deadlines.items()
                           if dl <= now]
                for fut in overdue:
                    i, attempt = pending.pop(fut)
                    _dl, budget = deadlines.pop(fut)
                    fut.cancel()
                    delay = sup.on_error(
                        i, attempt,
                        TimeoutError(f"attempt exceeded {budget:g}s"))
                    if delay is not None:
                        heapq.heappush(delayed,
                                       (now + delay, seq, i, attempt + 1))
                        seq += 1
            if broken:
                # The pool is dead: every still-pending future is lost
                # with it.  Salvage is implicit — results harvested above
                # stay harvested; only unfinished work is resubmitted.
                broken.extend(pending.values())
                pending.clear()
                deadlines.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                if sup.pool_rebuilds >= sup.retry.max_pool_rebuilds:
                    # No pool to run on any more: in-flight items AND
                    # items waiting out a backoff are both stranded.
                    broken.extend((i, attempt - 1)
                                  for _r, _s, i, attempt in delayed)
                    delayed.clear()
                    exc = BrokenProcessPool(
                        f"process pool broke "
                        f"{sup.pool_rebuilds + 1} times; giving up on "
                        f"{len(broken)} in-flight items")
                    for i, attempt in sorted(broken):
                        sup.give_up(i, exc, "pool", attempts=attempt + 1)
                    continue
                sup.pool_rebuilds += 1
                sup.reg.inc("retry.pool_rebuilds")
                pool = make_pool()
                # A crash consumes the attempt it killed: resubmitting at
                # attempt + 1 is what lets a ``times=1`` crash rule stop
                # firing (and backoff keys stay deterministic).
                for i, attempt in sorted(broken):
                    submit(i, attempt + 1)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
