"""repro — reproduction of "Scalable Epidemiological Workflows to Support
COVID-19 Planning and Response" (Machi et al., IPDPS 2021).

Subpackages:

- :mod:`repro.synthpop` — synthetic populations and contact networks.
- :mod:`repro.epihiper` — the EpiHiper agent-based network simulator.
- :mod:`repro.metapop` — county-level metapopulation SEIR model.
- :mod:`repro.calibration` — GP-emulator Bayesian calibration (GPMSA-style).
- :mod:`repro.cluster` — dual-cluster HPC substrate simulation.
- :mod:`repro.scheduling` — WMP / DB-WMP mapping heuristics (NFDT/FFDT-DC).
- :mod:`repro.surveillance` — synthetic county-level ground-truth data.
- :mod:`repro.analytics` — aggregation, ensembles, forecast targets.
- :mod:`repro.economics` — medical-cost model (case study 1).
- :mod:`repro.core` — the end-to-end epidemiological workflows.
"""

__version__ = "1.0.0"
