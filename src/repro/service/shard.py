"""Shard workers: independent broker/worker processes behind one door.

One :class:`ShardWorker` process runs a full single-process service —
admission queue, broker, supervised memoized fan-out, ``/v1`` HTTP
surface — bound to an ephemeral localhost port it advertises through a
port file.  A :class:`ShardFleet` spawns ``N`` of them against one
shared :class:`~repro.store.cas.ContentStore`; the router
(:mod:`repro.service.router`) fronts them.

Correctness across processes rests on three shared-directory artifacts,
all under the store root so one ``REPRO_STORE_DIR`` configures the whole
fleet:

- the **CAS** itself (results are content-addressed blobs; any shard's
  hit is every shard's hit);
- the **lease table** (``<store>/leases``) — the cross-process in-flight
  registry that keeps coalescing correct even when routing sends the
  same key to two shards (reroute during a drain, router restart):
  exactly one shard executes, the others wait and read the winner's
  bit-identical blob;
- the **terminal spool** (``<store>/spool/shard<k>.jsonl``) — each shard
  journals every request that reaches a terminal state using the
  ledger's torn-line-tolerant append discipline, so the router can keep
  answering status polls for a shard that has exited (rolling restart:
  zero lost requests).

Routing is by cache-key hash — ``int(key, 16) % num_shards`` — so
identical scenarios land on the same shard and coalesce in-process by
construction; the lease table only has to catch the cross-shard edge
cases.  Request ids carry the shard index (``s<k>-r000042``), making
them globally unique and self-addressing.

Shard processes are spawned (not forked) and non-daemonic: their brokers
own process pools, and daemonic processes cannot have children.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..obs.registry import Stopwatch
from ..store.cas import ContentStore, LeaseTable
from ..store.ledger import RunLedger
from .queue import RequestRecord

#: Subdirectories of the store root the fleet shares.
LEASE_DIRNAME = "leases"
SPOOL_DIRNAME = "spool"

#: The spool's one event type.
SPOOL_EVENT = "request_terminal"


def shard_of(key: str, num_shards: int) -> int:
    """The owning shard of a cache key: ``int(key, 16) % num_shards``."""
    return int(key, 16) % num_shards


def rid_shard(request_id: str) -> int | None:
    """Parse the owning shard out of a fleet request id (``s<k>-...``).

    Returns None for ids without a shard prefix (single-process mode).
    """
    if not request_id.startswith("s"):
        return None
    head, sep, _ = request_id.partition("-")
    if not sep:
        return None
    try:
        return int(head[1:])
    except ValueError:
        return None


def lease_dir(store_root: Path) -> Path:
    """The fleet's shared lease table directory."""
    return Path(store_root) / LEASE_DIRNAME


def spool_dir(store_root: Path) -> Path:
    """The directory holding every shard's terminal spool."""
    return Path(store_root) / SPOOL_DIRNAME


def spool_path(store_root: Path, index: int) -> Path:
    """One shard's terminal-spool journal path."""
    return spool_dir(store_root) / f"shard{index}.jsonl"


def spool_record(rec: RequestRecord) -> dict[str, Any]:
    """The JSON-safe spool view of one terminal request.

    The result payload is deliberately *not* inlined — it is the CAS blob
    addressed by ``key``, and the router reconstructs it from the shared
    store on a fallback poll.  The spool stays small and append-fast.
    """
    out: dict[str, Any] = {
        "id": rec.request_id,
        "key": rec.key,
        "state": rec.state,
        "priority": rec.priority,
        "coalesced": rec.coalesced,
    }
    if rec.wait_s is not None:
        out["wait_s"] = rec.wait_s
    if rec.total_s is not None:
        out["total_s"] = rec.total_s
    if rec.error is not None:
        out["error"] = rec.error
    if rec.kind is not None:
        out["kind"] = rec.kind
    return out


def read_spool(path: Path) -> dict[str, dict[str, Any]]:
    """Replay one shard's spool into ``{request_id: record}``.

    Torn trailing lines (the process died mid-append) are skipped, same
    discipline as ledger replay.
    """
    out: dict[str, dict[str, Any]] = {}
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return out
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if record.get("event") != SPOOL_EVENT:
            continue
        rid = record.get("id")
        if isinstance(rid, str):
            out[rid] = record
    return out


@dataclass(frozen=True)
class ShardConfig:
    """Everything one shard process needs, as picklable primitives."""

    index: int
    num_shards: int
    store_root: str
    port_file: str
    host: str = "127.0.0.1"
    salt: str | None = None
    capacity: int = 64
    aging_every: int = 8
    batch_size: int = 4
    elastic_max: int | None = None
    max_workers: int | None = None
    parallel: bool = True
    store_max_bytes: int | None = None
    lease_ttl_s: float = 120.0
    checkpoint_every: int = 0  #: snapshot interval in ticks (0 = off)
    plane: bool = False  #: share region assets across shards via repro.plane
    plane_dir: str = ""  #: plane coordination dir (default: <store>/plane)
    sys_path: tuple[str, ...] = field(default_factory=tuple)


def build_shard_service(config: ShardConfig):
    """Compose one shard's :class:`ScenarioService` (importable for tests).

    Returns ``(service, store)``.
    """
    from .server import ScenarioService

    store = ContentStore(Path(config.store_root),
                         max_bytes=config.store_max_bytes)
    leases = LeaseTable(
        lease_dir(store.root),
        owner=f"shard{config.index}:pid{os.getpid()}",
        ttl_s=config.lease_ttl_s)
    spool = RunLedger(spool_path(store.root, config.index))

    def on_terminal(rec: RequestRecord) -> None:
        spool.append(SPOOL_EVENT, **spool_record(rec))

    checkpoint = None
    if config.checkpoint_every > 0:
        from ..checkpoint import CheckpointPlan

        checkpoint = CheckpointPlan(
            store_root=str(store.root), every=config.checkpoint_every,
            salt=config.salt, lease_root=str(lease_dir(store.root)))
    service = ScenarioService(
        store=store, salt=config.salt, capacity=config.capacity,
        aging_every=config.aging_every, batch_size=config.batch_size,
        elastic_max=config.elastic_max, max_workers=config.max_workers,
        parallel=config.parallel, leases=leases,
        rid_prefix=f"s{config.index}-", on_terminal=on_terminal,
        checkpoint=checkpoint)
    return service, store


def shard_main(config: ShardConfig) -> None:
    """Entry point of one shard process.

    Binds an ephemeral port, advertises it through the port file, serves
    until SIGTERM/SIGINT, then drains gracefully: stop admitting, finish
    every accepted request (each lands in the spool), exit 0.
    """
    for entry in config.sys_path:
        if entry not in sys.path:
            sys.path.insert(0, entry)
    if config.plane:
        # Environment, not arguments: the broker's pool workers and every
        # nested load site inherit the plane opt-in automatically.
        os.environ["REPRO_PLANE"] = "1"
        if config.plane_dir:
            os.environ["REPRO_PLANE_DIR"] = config.plane_dir
    from .server import make_server

    service, _store = build_shard_service(config)
    service.start()
    server = make_server(service, host=config.host, port=0)
    stop = threading.Event()

    def on_signal(signum, frame):  # noqa: ARG001 — signal API
        stop.set()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)

    serve_thread = threading.Thread(target=server.serve_forever,
                                    name=f"shard{config.index}-http",
                                    daemon=True)
    serve_thread.start()
    port_file = Path(config.port_file)
    port_file.parent.mkdir(parents=True, exist_ok=True)
    tmp = port_file.with_suffix(".tmp")
    tmp.write_text(json.dumps({
        "shard": config.index, "port": server.server_address[1],
        "pid": os.getpid(), "host": config.host}))
    tmp.replace(port_file)  # atomic publish: readers never see a torn file
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        # Graceful drain: refuse new work, finish everything admitted.
        service.stop(drain=True)
        server.shutdown()
        server.server_close()
        port_file.unlink(missing_ok=True)


@dataclass
class ShardHandle:
    """One running shard process plus its advertised address."""

    config: ShardConfig
    process: multiprocessing.process.BaseProcess
    address: tuple[str, int] | None = None

    @property
    def index(self) -> int:
        return self.config.index

    def alive(self) -> bool:
        """Whether the shard process is still running."""
        return self.process.is_alive()


class ShardFleet:
    """Spawn, address, and drain ``N`` shard worker processes.

    Args:
        store_root: the shared store directory (CAS + leases + spool).
        num_shards: worker count; routing is ``int(key, 16) % num_shards``.
        run_dir: where port files live (defaults to ``<store>/run``).
        Remaining keyword args mirror :class:`ShardConfig`.
    """

    def __init__(self, store_root: str | Path, num_shards: int, *,
                 run_dir: str | Path | None = None, host: str = "127.0.0.1",
                 salt: str | None = None, capacity: int = 64,
                 aging_every: int = 8, batch_size: int = 4,
                 elastic_max: int | None = None,
                 max_workers: int | None = None, parallel: bool = True,
                 store_max_bytes: int | None = None,
                 lease_ttl_s: float = 120.0,
                 checkpoint_every: int = 0,
                 plane: bool = False,
                 plane_dir: str | Path | None = None) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.store_root = Path(store_root)
        self.num_shards = num_shards
        self.run_dir = (Path(run_dir) if run_dir is not None
                        else self.store_root / "run")
        self.host = host
        self.plane = plane
        # One plane per fleet, under the store root like the lease table:
        # a single REPRO_STORE_DIR still configures everything shared.
        self.plane_dir = Path(plane_dir) if plane_dir is not None \
            else self.store_root / "plane"
        self._ctx = multiprocessing.get_context("spawn")
        self.shards: list[ShardHandle] = []
        self._kwargs = dict(
            salt=salt, capacity=capacity, aging_every=aging_every,
            batch_size=batch_size, elastic_max=elastic_max,
            max_workers=max_workers, parallel=parallel,
            store_max_bytes=store_max_bytes, lease_ttl_s=lease_ttl_s,
            checkpoint_every=checkpoint_every,
            plane=plane, plane_dir=str(self.plane_dir))

    def config_of(self, index: int) -> ShardConfig:
        """The picklable config one shard process is spawned with."""
        return ShardConfig(
            index=index, num_shards=self.num_shards,
            store_root=str(self.store_root),
            port_file=str(self.run_dir / f"shard{index}.port"),
            host=self.host, sys_path=tuple(sys.path), **self._kwargs)

    # -- lifecycle -------------------------------------------------------------

    def start_shard(self, index: int) -> ShardHandle:
        """Spawn (or respawn) one shard; stale port files are cleared."""
        config = self.config_of(index)
        Path(config.port_file).unlink(missing_ok=True)
        # daemon=False: shard brokers own process pools, and daemonic
        # processes cannot have children.
        proc = self._ctx.Process(target=shard_main, args=(config,),
                                 name=f"repro-shard{index}", daemon=False)
        proc.start()
        handle = ShardHandle(config=config, process=proc)
        for existing in self.shards:
            if existing.index == index:
                self.shards.remove(existing)
                break
        self.shards.append(handle)
        self.shards.sort(key=lambda h: h.index)
        return handle

    def start(self, *, ready_timeout_s: float = 30.0) -> "ShardFleet":
        """Spawn every shard and wait until all advertise a port."""
        for index in range(self.num_shards):
            self.start_shard(index)
        self.wait_ready(timeout_s=ready_timeout_s)
        return self

    def wait_ready(self, *, timeout_s: float = 30.0) -> None:
        """Block until every live shard has published its port file."""
        watch = Stopwatch()
        for handle in self.shards:
            port_file = Path(handle.config.port_file)
            while handle.address is None:
                try:
                    info = json.loads(port_file.read_text())
                    handle.address = (info["host"], int(info["port"]))
                    break
                except (OSError, ValueError, KeyError):
                    pass
                if not handle.process.is_alive():
                    raise RuntimeError(
                        f"shard {handle.index} exited before publishing "
                        f"its port (exitcode {handle.process.exitcode})")
                if watch.elapsed() >= timeout_s:
                    raise TimeoutError(
                        f"shard {handle.index} did not publish a port "
                        f"within {timeout_s:.0f}s")
                time.sleep(0.05)

    def addresses(self) -> list[tuple[str, int] | None]:
        """Per-shard ``(host, port)`` (None for a shard not yet ready)."""
        return [handle.address for handle in self.shards]

    def drain_shard(self, index: int, *, timeout_s: float = 60.0) -> bool:
        """SIGTERM one shard and join it: the rolling-restart step.

        The shard finishes everything it admitted (spooling each
        terminal record) before exiting; returns True when it exited
        within the timeout.
        """
        for handle in self.shards:
            if handle.index == index and handle.process.is_alive():
                handle.process.terminate()  # SIGTERM -> graceful drain
                handle.process.join(timeout_s)
                return not handle.process.is_alive()
        return True

    def stop(self, *, timeout_s: float = 60.0) -> None:
        """Drain every shard (reverse order, arbitrary but deterministic).

        With the plane on, the supervisor owns the final unlink: once
        every shard has exited, a gc pass reclaims any segment the
        shards' own last-man-out cleanup missed (e.g. a killed shard).
        """
        for handle in reversed(self.shards):
            if handle.process.is_alive():
                handle.process.terminate()
        for handle in reversed(self.shards):
            handle.process.join(timeout_s)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(5.0)
        if self.plane:
            from ..plane import plane_gc

            try:
                plane_gc(self.plane_dir)
            except OSError:  # pragma: no cover - teardown is best-effort
                pass

    def __enter__(self) -> "ShardFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
