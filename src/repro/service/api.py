"""The versioned HTTP API surface: one routing table, one error shape.

Every service endpoint lives under ``/v1`` and is declared once in
:data:`ROUTES`; both HTTP front ends — the single-process
:class:`~repro.service.server.ScenarioHandler` and the sharded
:class:`~repro.service.router.RouterHandler` — dispatch through
:func:`resolve` instead of growing ``if path ==`` chains.  The legacy
unversioned paths of the first service release keep answering as
deprecated aliases: same handler, same body, plus a ``Deprecation``
header and a ``Link: ...; rel="successor-version"`` pointer at the
``/v1`` route.

Every non-2xx response is the same envelope::

    {"error": {"code": "<enum>", "message": "...", "retry_after_s": ...}}

with ``code`` drawn from a small documented enum (:data:`ERROR_CODES`),
so clients branch on codes, not message prose.  ``retry_after_s`` is
present only where retrying can help (``queue_full``, ``draining``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler
from typing import Any
from urllib.parse import parse_qs, urlsplit

from ..core.parallel import InstanceSpec
from ..params import DEFAULT_SCALE
from ..synthpop.regions import REGIONS

#: The one live API version; bump when the surface changes incompatibly.
API_VERSION = "v1"
API_PREFIX = f"/{API_VERSION}"

# -- error vocabulary ----------------------------------------------------------

#: The documented error-code enum.  Clients switch on these; messages are
#: for humans and carry no contract.
BAD_REQUEST = "bad_request"  #: malformed body or parameters (400)
QUEUE_FULL = "queue_full"  #: admission backpressure; honor retry_after_s (429)
DRAINING = "draining"  #: service is shutting down gracefully (503)
NOT_FOUND = "not_found"  #: unknown request id or route (404)
QUARANTINED = "quarantined"  #: execution exhausted its retry budget (500)
INTERNAL = "internal"  #: unexpected handler failure (500)

ERROR_CODES = frozenset(
    {BAD_REQUEST, QUEUE_FULL, DRAINING, NOT_FOUND, QUARANTINED, INTERNAL})

#: Default HTTP status per error code.
STATUS_OF_CODE: dict[str, int] = {
    BAD_REQUEST: 400,
    QUEUE_FULL: 429,
    DRAINING: 503,
    NOT_FOUND: 404,
    QUARANTINED: 500,
    INTERNAL: 500,
}


def error_envelope(code: str, message: str, *,
                   retry_after_s: float | None = None) -> dict[str, Any]:
    """The uniform non-2xx body."""
    error: dict[str, Any] = {"code": code, "message": message}
    if retry_after_s is not None:
        error["retry_after_s"] = retry_after_s
    return {"error": error}


class ApiError(Exception):
    """A handler outcome that renders as the uniform error envelope.

    Attributes:
        code: one of :data:`ERROR_CODES`.
        status: HTTP status (defaults per :data:`STATUS_OF_CODE`).
        retry_after_s: optional backoff hint, also sent as the standard
            ``Retry-After`` header.
    """

    def __init__(self, code: str, message: str, *,
                 retry_after_s: float | None = None,
                 status: int | None = None) -> None:
        super().__init__(message)
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s
        self.status = STATUS_OF_CODE[code] if status is None else status

    def envelope(self) -> dict[str, Any]:
        """The JSON body for this error."""
        return error_envelope(self.code, self.message,
                              retry_after_s=self.retry_after_s)

    def headers(self) -> dict[str, str]:
        """Standard headers this error carries (``Retry-After``)."""
        if self.retry_after_s is None:
            return {}
        return {"Retry-After": f"{self.retry_after_s:.3f}"}


class BadRequest(ApiError, ValueError):
    """A submission the API rejects with 400/``bad_request``.

    Subclasses ``ValueError`` so pre-envelope callers that caught
    ``ValueError`` keep working.
    """

    def __init__(self, message: str) -> None:
        ApiError.__init__(self, BAD_REQUEST, message)


# -- routing table -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Route:
    """One API route: method + versioned path pattern + handler name."""

    method: str
    pattern: re.Pattern
    name: str


def _route(method: str, pattern: str, name: str) -> Route:
    return Route(method=method, pattern=re.compile(pattern), name=name)


#: The whole surface.  Handlers are ``api_<name>`` methods on the
#: dispatching handler class; named groups become keyword arguments.
ROUTES: tuple[Route, ...] = (
    _route("GET", r"/v1/healthz", "healthz"),
    _route("GET", r"/v1/metrics", "metrics"),
    _route("GET", r"/v1/scenarios", "list_scenarios"),
    _route("GET", r"/v1/scenarios/(?P<request_id>[^/]+)", "get_scenario"),
    _route("POST", r"/v1/scenarios", "submit_scenario"),
)


@dataclass(frozen=True, slots=True)
class Resolution:
    """A matched route plus how it was reached."""

    route: Route
    args: dict[str, str]
    query: dict[str, str]
    deprecated: bool  #: matched through a legacy unversioned alias
    canonical_path: str  #: the ``/v1`` path of this resource


def resolve(method: str, raw_path: str) -> Resolution | None:
    """Match a request line against the table.

    Unversioned paths are resolved as deprecated aliases of their ``/v1``
    twin, so one table serves both surfaces.
    """
    split = urlsplit(raw_path)
    path = split.path.rstrip("/") or "/"
    deprecated = not (path == API_PREFIX
                      or path.startswith(API_PREFIX + "/"))
    vpath = API_PREFIX + path if deprecated else path
    query = {name: values[-1]
             for name, values in parse_qs(split.query).items()}
    for route in ROUTES:
        if route.method != method:
            continue
        match = route.pattern.fullmatch(vpath)
        if match is not None:
            return Resolution(route=route, args=match.groupdict(),
                              query=query, deprecated=deprecated,
                              canonical_path=vpath)
    return None


def deprecation_headers(canonical_path: str) -> dict[str, str]:
    """Headers stamped on responses served through a legacy alias."""
    return {
        "Deprecation": "true",
        "Link": f'<{canonical_path}>; rel="successor-version"',
    }


# -- request validation --------------------------------------------------------

#: Bounds a submitted scenario must respect (tiny DoS hygiene, and the
#: reproduction's scales are meaningless outside these ranges anyway).
MAX_DAYS = 3650
MAX_SCALE = 1.0

#: Listing page-size bounds.
DEFAULT_LIST_LIMIT = 50
MAX_LIST_LIMIT = 500


def spec_from_request(body: dict[str, Any]) -> tuple[InstanceSpec, int]:
    """Validate a ``POST /v1/scenarios`` body into (spec, priority).

    Expected fields: ``region`` (required), ``params`` (mapping),
    ``days``, ``scale``, ``seed``, ``asset_seed``, ``priority``.
    """
    if not isinstance(body, dict):
        raise BadRequest("body must be a JSON object")
    region = body.get("region")
    if not isinstance(region, str) or region.upper() not in REGIONS:
        raise BadRequest(f"unknown region {region!r}")
    region = region.upper()
    params = body.get("params", {})
    if not isinstance(params, dict):
        raise BadRequest("params must be an object")
    for name, value in params.items():
        if not isinstance(name, str):
            raise BadRequest("param names must be strings")
        if not isinstance(value, (bool, int, float, str)):
            raise BadRequest(f"unsupported param type for {name!r}")
    try:
        days = int(body.get("days", 120))
        scale = float(body.get("scale", DEFAULT_SCALE))
        seed = int(body.get("seed", 0))
        asset_seed = int(body.get("asset_seed", seed))
        priority = int(body.get("priority", 0))
    except (TypeError, ValueError):
        raise BadRequest("days/seed/asset_seed/priority must be integers, "
                         "scale a float")
    if not 1 <= days <= MAX_DAYS:
        raise BadRequest(f"days must be in [1, {MAX_DAYS}]")
    if not 0.0 < scale <= MAX_SCALE:
        raise BadRequest(f"scale must be in (0, {MAX_SCALE}]")
    spec = InstanceSpec(
        region_code=region, params=dict(params), n_days=days, scale=scale,
        seed=seed, label=f"svc-{region}", asset_seed=asset_seed)
    return spec, priority


def parse_list_query(query: dict[str, str],
                     states: frozenset[str]) -> tuple[str | None, int,
                                                      str | None]:
    """Validate ``GET /v1/scenarios`` query params into (state, limit,
    cursor)."""
    state = query.get("state") or None
    if state is not None and state not in states:
        raise BadRequest(
            f"unknown state {state!r} (one of {sorted(states)})")
    try:
        limit = int(query.get("limit", DEFAULT_LIST_LIMIT))
    except ValueError:
        raise BadRequest("limit must be an integer")
    if not 1 <= limit <= MAX_LIST_LIMIT:
        raise BadRequest(f"limit must be in [1, {MAX_LIST_LIMIT}]")
    return state, limit, query.get("cursor") or None


# -- the dispatching handler base ----------------------------------------------


class JsonApiHandler(BaseHTTPRequestHandler):
    """A ``BaseHTTPRequestHandler`` that speaks the ``/v1`` surface.

    Subclasses implement ``api_<route name>`` methods taking the route's
    named groups as keyword arguments plus the parsed ``query`` mapping;
    they return ``(status, payload)`` or raise :class:`ApiError`.
    Envelope rendering, legacy-alias deprecation headers, and the 404 /
    500 fallbacks live here, once.
    """

    server_version = "repro-service/2.0"
    protocol_version = "HTTP/1.1"

    #: Set by dispatch for the duration of one request.
    _alias_headers: dict[str, str]

    def log_message(self, fmt: str, *args: Any) -> None:
        """Silenced: the obs registry is the service's telemetry."""

    # -- plumbing --------------------------------------------------------------

    def _send_json(self, status: int, payload: dict[str, Any],
                   headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        merged = dict(self._alias_headers)
        merged.update(headers or {})
        for name, value in merged.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_envelope(self, err: ApiError) -> None:
        self._send_json(err.status, err.envelope(), headers=err.headers())

    def read_json_body(self) -> dict[str, Any]:
        """The request body as JSON (:class:`BadRequest` when invalid)."""
        try:
            length = int(self.headers.get("Content-Length", 0))
            return json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError):
            raise BadRequest("body is not valid JSON")

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        self._alias_headers = {}
        resolution = resolve(method, self.path)
        if resolution is None:
            self._send_error_envelope(
                ApiError(NOT_FOUND, f"no route for {self.path!r}"))
            return
        if resolution.deprecated:
            self._alias_headers = deprecation_headers(
                resolution.canonical_path)
        handler = getattr(self, f"api_{resolution.route.name}")
        try:
            status, payload = handler(query=resolution.query,
                                      **resolution.args)
        except ApiError as err:
            self._send_error_envelope(err)
            return
        except Exception as exc:  # noqa: BLE001 — render, don't hang
            self._send_error_envelope(
                ApiError(INTERNAL, f"{type(exc).__name__}: {exc}"))
            return
        self._send_json(status, payload)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        """Dispatch a GET through the routing table."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        """Dispatch a POST through the routing table."""
        self._dispatch("POST")
