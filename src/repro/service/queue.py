"""Admission-controlled scenario queue: priority, aging, coalescing.

The front door of the always-on service plane.  Three disciplines, each
borrowed from a system that ran epidemic workflows under interactive
demand:

- **Priority with deterministic aging** — entries are claimed in order of
  *effective* priority ``priority + (now_seq - seq) // aging_every``,
  where ``seq`` numbers admissions.  Every ``aging_every`` admissions that
  pass over a waiting entry raise its effective priority by one, so a
  flood of urgent requests can delay background work but never starve it.
  Aging is keyed to the admission counter, not the wall clock, so queue
  behavior is reproducible in tests.
- **Request coalescing** — requests are keyed by their canonical
  :func:`repro.store.keys.instance_key`; a request whose key matches an
  entry already queued or running joins that entry instead of adding
  load, and every joined request receives the one computed (bit-identical)
  payload.  A coalescing join with a higher priority re-prioritizes the
  queued entry — the OSPREY asynchronous re-prioritization pattern: later
  urgent work preempts *queued* (never running) lower-priority work.
- **Backpressure** — the queue is bounded by distinct queued entries;
  when full, new keys are rejected with a deterministic ``retry_after_s``
  hint instead of being accepted into an unbounded backlog.  Coalescing
  joins are always admitted (they add no load).

Every transition is published to the service metrics namespace:
``service.admitted`` / ``service.coalesced`` / ``service.rejected`` /
``service.reprioritized`` / ``service.completed`` / ``service.failed`` /
``service.cancelled`` counters, a ``service.queue_depth`` gauge, and
``service.wait_s`` / ``service.request_s`` timers.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..obs.registry import MetricsRegistry, Stopwatch
from ..store.keys import instance_key

#: Request lifecycle states.  ``REJECTED`` never enters the queue; the
#: other four are the states a tracked request moves through.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States from which a request will not move again.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


@dataclass(frozen=True, slots=True)
class Admission:
    """The queue's answer to one submission.

    Attributes:
        admitted: whether the request is now tracked (queued or joined).
        status: ``"queued"``, ``"coalesced"``, or ``"rejected"``.
        request_id: the tracking id (None when rejected).
        key: the canonical cache key of the scenario.
        depth: queued-entry count after the decision.
        retry_after_s: backpressure hint (rejections only).
        reason: why a rejection happened (``"full"`` or ``"draining"``).
    """

    admitted: bool
    status: str
    request_id: str | None
    key: str
    depth: int
    retry_after_s: float | None = None
    reason: str | None = None


@dataclass
class RequestRecord:
    """Tracked lifecycle of one submitted request."""

    request_id: str
    key: str
    priority: int
    seq: int
    state: str = QUEUED
    clock: Stopwatch = field(default_factory=Stopwatch)
    wait_s: float | None = None  #: queue wait (submit -> claim)
    total_s: float | None = None  #: submit -> terminal state
    coalesced: bool = False  #: joined an already-in-flight entry
    result: dict[str, Any] | None = None  #: payload arrays when DONE
    error: str | None = None  #: rendered failure when FAILED/CANCELLED
    kind: str | None = None  #: failure triage kind when FAILED
    event: threading.Event = field(default_factory=threading.Event)


@dataclass
class _Entry:
    """One in-flight computation: a unique cache key plus its joiners."""

    key: str
    spec: Any
    priority: int
    seq: int
    state: str = QUEUED
    request_ids: list[str] = field(default_factory=list)
    event: threading.Event = field(default_factory=threading.Event)


@dataclass(frozen=True, slots=True)
class Claim:
    """What the broker takes off the queue: one entry's work order."""

    key: str
    spec: Any
    seq: int
    priority: int
    request_ids: tuple[str, ...]


class ScenarioQueue:
    """Bounded, thread-safe priority queue of scenario requests.

    All mutation happens under one lock, so the counter updates the
    coalescing tests assert exactly are race-free.  The broker claims
    batches with :meth:`claim` and resolves them with :meth:`complete` /
    :meth:`fail`; HTTP handler threads only :meth:`submit`, :meth:`status`
    and :meth:`wait`.
    """

    def __init__(
        self,
        *,
        capacity: int = 64,
        aging_every: int = 8,
        retry_after_hint_s: float = 0.5,
        max_finished: int = 4096,
        metrics: MetricsRegistry | None = None,
        rid_prefix: str = "",
        on_terminal=None,
    ) -> None:
        """Args:
            capacity: maximum distinct queued entries (running entries and
                coalescing joins do not count against it).
            aging_every: admissions per +1 effective-priority boost of a
                waiting entry (smaller ages faster; must be >= 1).
            retry_after_hint_s: base of the deterministic retry-after
                hint returned with rejections.
            max_finished: finished request records kept for status polls
                (oldest are evicted beyond this).
            metrics: the ``service.*`` sink (a private registry when
                omitted).
            rid_prefix: prepended to every request id.  Shard workers use
                ``"s<k>-"`` so ids are globally unique across a fleet and
                the router can address the owning shard from the id alone.
            on_terminal: optional callback invoked with each
                :class:`RequestRecord` as it reaches a terminal state
                (the shard worker's durable spool hook); exceptions are
                swallowed — spooling is best-effort, resolution is not.
        """
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if aging_every < 1:
            raise ValueError("aging_every must be >= 1")
        self.capacity = capacity
        self.aging_every = aging_every
        self.retry_after_hint_s = retry_after_hint_s
        self.max_finished = max_finished
        self.rid_prefix = rid_prefix
        self.on_terminal = on_terminal
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._entries: dict[str, _Entry] = {}
        self._records: dict[str, RequestRecord] = {}
        self._finished: deque[str] = deque()
        self._seq = 0
        self._rid = 0
        self._closed = False

    # -- admission -------------------------------------------------------------

    def submit(self, spec, *, priority: int = 0,
               key: str | None = None) -> Admission:
        """Admit, coalesce, or reject one scenario request.

        Args:
            spec: the :class:`~repro.core.parallel.InstanceSpec` to run.
            priority: larger is more urgent; a coalescing join with a
                higher priority bumps the queued entry (re-prioritization).
            key: canonical cache key override (computed from ``spec`` via
                :func:`~repro.store.keys.instance_key` when omitted).
        """
        with self._lock:
            if key is None:
                key = instance_key(spec)
            if self._closed:
                self.metrics.inc("service.rejected")
                return Admission(admitted=False, status="rejected",
                                 request_id=None, key=key,
                                 depth=self._depth_locked(),
                                 retry_after_s=None, reason="draining")
            entry = self._entries.get(key)
            if entry is not None:
                return self._join_locked(entry, priority)
            depth = self._depth_locked()
            if depth >= self.capacity:
                self.metrics.inc("service.rejected")
                hint = self.retry_after_hint_s * (depth - self.capacity + 1)
                return Admission(admitted=False, status="rejected",
                                 request_id=None, key=key, depth=depth,
                                 retry_after_s=hint, reason="full")
            rid = self._next_rid_locked()
            seq = self._seq
            self._seq += 1
            entry = _Entry(key=key, spec=spec, priority=priority, seq=seq,
                           request_ids=[rid])
            self._entries[key] = entry
            self._records[rid] = RequestRecord(
                request_id=rid, key=key, priority=priority, seq=seq,
                event=entry.event)
            self.metrics.inc("service.admitted")
            self._publish_depth_locked()
            self._work.notify_all()
            return Admission(admitted=True, status="queued", request_id=rid,
                             key=key, depth=self._depth_locked())

    def admit_resolved(self, spec, *, result: dict[str, Any],
                       key: str | None = None) -> Admission:
        """Admit a request already answered (the surrogate fast path).

        Creates a tracked record directly in the DONE terminal state
        carrying ``result``, so status polls, waits and the service
        counters behave exactly as for an executed request — it just
        never consumed a queue slot or a worker.  Returns an admission
        with status ``"done"``.
        """
        with self._lock:
            if key is None:
                key = instance_key(spec)
            rid = self._next_rid_locked()
            rec = RequestRecord(request_id=rid, key=key, priority=0,
                                seq=self._seq, state=DONE)
            rec.wait_s = 0.0
            rec.total_s = rec.clock.elapsed()
            rec.result = result
            rec.event.set()
            self._records[rid] = rec
            self._finished.append(rid)
            self._spool_locked(rec)
            self.metrics.inc("service.admitted")
            self.metrics.inc("service.completed")
            self.metrics.observe("service.request_s", rec.total_s)
            while len(self._finished) > self.max_finished:
                self._records.pop(self._finished.popleft(), None)
            return Admission(admitted=True, status="done", request_id=rid,
                            key=key, depth=self._depth_locked())

    def in_flight(self, key: str) -> bool:
        """Whether ``key`` is currently queued or running.

        The surrogate gate checks this before answering: an identical
        scenario already being computed exactly is better joined (free
        and bit-exact) than emulated.
        """
        with self._lock:
            return key in self._entries

    def _join_locked(self, entry: _Entry, priority: int) -> Admission:
        """Coalesce a request onto an in-flight entry (lock held)."""
        rid = self._next_rid_locked()
        entry.request_ids.append(rid)
        rec = RequestRecord(
            request_id=rid, key=entry.key, priority=entry.priority,
            seq=entry.seq, state=entry.state, coalesced=True,
            event=entry.event)
        self._records[rid] = rec
        self.metrics.inc("service.coalesced")
        if entry.state == QUEUED and priority > entry.priority:
            # OSPREY-style asynchronous re-prioritization: the urgent join
            # promotes the whole queued computation.  Running entries are
            # never preempted — their RNG streams are already committed.
            entry.priority = priority
            for waiting in entry.request_ids:
                self._records[waiting].priority = priority
            self.metrics.inc("service.reprioritized")
        return Admission(admitted=True, status="coalesced", request_id=rid,
                         key=entry.key, depth=self._depth_locked())

    def reprioritize(self, request_id: str, priority: int) -> bool:
        """Raise a queued request's priority; False if not re-orderable."""
        with self._lock:
            rec = self._records.get(request_id)
            if rec is None:
                return False
            entry = self._entries.get(rec.key)
            if entry is None or entry.state != QUEUED:
                return False
            if priority > entry.priority:
                entry.priority = priority
                for waiting in entry.request_ids:
                    self._records[waiting].priority = priority
                self.metrics.inc("service.reprioritized")
            return True

    def _next_rid_locked(self) -> str:
        self._rid += 1
        return f"{self.rid_prefix}r{self._rid:06d}"

    def _spool_locked(self, rec: RequestRecord) -> None:
        """Hand one terminal record to the spool hook (best effort)."""
        if self.on_terminal is None:
            return
        try:
            self.on_terminal(rec)
        except Exception:  # noqa: BLE001 — durability must not block resolution
            self.metrics.inc("service.spool_errors")

    # -- scheduling ------------------------------------------------------------

    def effective_priority(self, entry_priority: int, entry_seq: int) -> int:
        """Aged priority at the current admission sequence."""
        return entry_priority + (self._seq - entry_seq) // self.aging_every

    def claim(self, n: int = 1) -> list[Claim]:
        """Move up to ``n`` best entries to RUNNING and hand them over.

        Order: highest effective (aged) priority first, FIFO within equal
        effective priority.  Returned ``request_ids`` are a snapshot;
        late coalescing joins still resolve through the shared entry.
        """
        with self._lock:
            queued = [e for e in self._entries.values()
                      if e.state == QUEUED]
            queued.sort(key=lambda e: (
                -self.effective_priority(e.priority, e.seq), e.seq))
            claims: list[Claim] = []
            for entry in queued[:n]:
                entry.state = RUNNING
                for rid in entry.request_ids:
                    rec = self._records[rid]
                    rec.state = RUNNING
                    if rec.wait_s is None:
                        rec.wait_s = rec.clock.elapsed()
                        self.metrics.observe("service.wait_s", rec.wait_s)
                claims.append(Claim(
                    key=entry.key, spec=entry.spec, seq=entry.seq,
                    priority=entry.priority,
                    request_ids=tuple(entry.request_ids)))
            self._publish_depth_locked()
            return claims

    def wait_for_work(self, timeout_s: float | None = None) -> bool:
        """Block until something is queued (or closed); True if work."""
        with self._lock:
            if self._closed or any(e.state == QUEUED
                                   for e in self._entries.values()):
                return True
            self._work.wait(timeout_s)
            return any(e.state == QUEUED for e in self._entries.values())

    # -- resolution ------------------------------------------------------------

    def complete(self, key: str, result: dict[str, Any]) -> int:
        """Resolve an entry: every joined request gets ``result``."""
        return self._terminalize(key, DONE, result=result)

    def fail(self, key: str, *, error: str, kind: str = "unknown") -> int:
        """Resolve an entry as failed: a terminal error, never a hang."""
        return self._terminalize(key, FAILED, error=error, kind=kind)

    def cancel_pending(self, *, error: str = "service stopped") -> int:
        """Terminalize every queued entry (non-drain shutdown path)."""
        with self._lock:
            pending = [e.key for e in self._entries.values()
                       if e.state == QUEUED]
        n = 0
        for key in pending:
            n += self._terminalize(key, CANCELLED, error=error)
        return n

    def _terminalize(self, key: str, state: str, *,
                     result: dict[str, Any] | None = None,
                     error: str | None = None,
                     kind: str | None = None) -> int:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return 0
            entry.state = state
            for rid in entry.request_ids:
                rec = self._records[rid]
                rec.state = state
                rec.result = result
                rec.error = error
                rec.kind = kind
                rec.total_s = rec.clock.elapsed()
                self.metrics.observe("service.request_s", rec.total_s)
                self._finished.append(rid)
                self._spool_locked(rec)
            counter = "completed" if state == DONE else state
            self.metrics.inc(f"service.{counter}", len(entry.request_ids))
            while len(self._finished) > self.max_finished:
                self._records.pop(self._finished.popleft(), None)
            self._publish_depth_locked()
            entry.event.set()
            return len(entry.request_ids)

    # -- introspection ---------------------------------------------------------

    def status(self, request_id: str) -> RequestRecord | None:
        """The tracked record (live object; terminal ones never mutate)."""
        with self._lock:
            return self._records.get(request_id)

    def list_records(
        self,
        *,
        state: str | None = None,
        limit: int = 50,
        cursor: str | None = None,
    ) -> tuple[list[RequestRecord], str | None]:
        """Enumerate tracked requests in request-id order, paginated.

        Keyset pagination: ``cursor`` is the last id of the previous page
        and the next page starts strictly after it (ids are fixed-width,
        so string order is admission order).  Returns the page and the
        cursor for the next one (None when this page exhausts the
        registry).  Records admitted behind an old cursor are skipped —
        the standard keyset caveat for a mutating set.
        """
        if limit < 1:
            raise ValueError("limit must be >= 1")
        with self._lock:
            ids = sorted(self._records)
            page: list[RequestRecord] = []
            more = False
            for rid in ids:
                if cursor is not None and rid <= cursor:
                    continue
                rec = self._records[rid]
                if state is not None and rec.state != state:
                    continue
                if len(page) == limit:
                    more = True
                    break
                page.append(rec)
            next_cursor = page[-1].request_id if page and more else None
            return page, next_cursor

    def wait(self, request_id: str,
             timeout_s: float | None = None) -> RequestRecord | None:
        """Block until the request reaches a terminal state."""
        with self._lock:
            rec = self._records.get(request_id)
        if rec is None:
            return None
        if rec.state not in TERMINAL_STATES:
            rec.event.wait(timeout_s)
        return rec

    def depth(self) -> int:
        """Distinct queued (not yet claimed) entries."""
        with self._lock:
            return self._depth_locked()

    def _depth_locked(self) -> int:
        return sum(1 for e in self._entries.values() if e.state == QUEUED)

    def _publish_depth_locked(self) -> None:
        self.metrics.gauge("service.queue_depth", self._depth_locked())

    @property
    def closed(self) -> bool:
        """Whether the queue is draining (no new admissions)."""
        return self._closed

    def close(self) -> None:
        """Stop admitting; queued and running work still completes."""
        with self._lock:
            self._closed = True
            self._work.notify_all()
