"""The broker loop: drain the queue into supervised, memoized fan-outs.

The broker is the service plane's execution engine.  One daemon thread
repeatedly claims the highest-effective-priority batch from the
:class:`~repro.service.queue.ScenarioQueue` and pushes it through
:func:`repro.store.memo.supervise_instances_memoized` — so every batch
gets the whole stack for free: store hits skip execution, misses run
under the resilient fan-out (retry, broken-pool rebuild, quarantine), and
completed results are published back as content-addressed blobs for the
next identical request to coalesce onto or hit in the store.

Terminal-state mapping is the broker's one real job: each claimed entry
either completes with the exact payload arrays the store holds, or fails
with the quarantine record's rendered error — every request reaches a
terminal state, never a hang, even when workers crash mid-batch.

Re-prioritization falls out of batching: claims happen at batch
boundaries, so an urgent request submitted while a batch runs outranks
everything still queued at the next claim — queued work is preempted,
running work is not (its RNG streams are already committed).
"""

from __future__ import annotations

import threading

from ..obs.registry import MetricsRegistry, Stopwatch
from ..resilience.supervisor import QUARANTINE
from ..store.memo import outcome_payload, supervise_instances_memoized
from .queue import Claim, ScenarioQueue


class Broker:
    """Background consumer of a :class:`ScenarioQueue`.

    Args:
        queue: the admission queue to drain.
        store: content store for memoized execution (None = always run).
        ledger: optional run journal for batch/instance events.
        salt: cache-key salt override (tests).
        registry: ``service.*`` / ``memo.*`` / ``retry.*`` sink; defaults
            to the queue's own metrics registry.
        tracer: optional :class:`~repro.obs.spans.Tracer`; the broker
            thread records one ``request:<id>`` span per served request
            (modelled on the admission-sequence clock) and a
            ``service:batch`` span per fan-out.
        batch_size: max entries claimed per fan-out (the floor when
            elastic sizing is on).
        max_workers / parallel: forwarded to the fan-out.
        retry: per-instance :class:`~repro.resilience.retry.RetryPolicy`.
        faults: optional :class:`~repro.resilience.faults.FaultPlan`
            threaded to workers (service chaos drills).
        leases: optional :class:`~repro.store.cas.LeaseTable` giving the
            fan-out cross-process execution exclusivity (shard workers
            against a shared store); see
            :func:`~repro.store.memo.supervise_instances_memoized`.
        elastic_max: when set, claim size tracks the backlog — the
            ``service.queue_depth`` gauge, clamped to
            ``[batch_size, elastic_max]`` — so a deepening queue is
            drained in larger fan-outs (fewer per-batch overheads per
            request) while an idle service keeps small-batch latency.
            None keeps the fixed ``batch_size``.
        idle_wait_s: how long the loop blocks waiting for work.
        checkpoint: optional :class:`~repro.checkpoint.CheckpointPlan`;
            when enabled, in-flight instances snapshot state through the
            CAS and retries after mid-run worker deaths resume instead
            of restarting (``checkpoint.*`` counters land in
            ``/v1/metrics``).
    """

    def __init__(
        self,
        queue: ScenarioQueue,
        *,
        store=None,
        ledger=None,
        salt: str | None = None,
        registry: MetricsRegistry | None = None,
        tracer=None,
        batch_size: int = 4,
        max_workers: int | None = None,
        parallel: bool = True,
        retry=None,
        faults=None,
        leases=None,
        elastic_max: int | None = None,
        idle_wait_s: float = 0.1,
        checkpoint=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if elastic_max is not None and elastic_max < batch_size:
            raise ValueError("elastic_max must be >= batch_size")
        self.queue = queue
        self.store = store
        self.ledger = ledger
        self.salt = salt
        self.registry = (registry if registry is not None
                         else queue.metrics)
        self.tracer = tracer
        self.batch_size = batch_size
        self.max_workers = max_workers
        self.parallel = parallel
        self.retry = retry
        self.faults = faults
        self.leases = leases
        self.elastic_max = elastic_max
        self.idle_wait_s = idle_wait_s
        self.checkpoint = checkpoint
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._drain = True

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Broker":
        """Start the loop thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-service-broker", daemon=True)
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True,
             timeout_s: float | None = None) -> None:
        """Stop the loop.

        Args:
            drain: finish everything queued first; False cancels pending
                entries (their requests reach a CANCELLED terminal state
                so no waiter ever hangs).
            timeout_s: join timeout for the loop thread.
        """
        self._drain = drain
        self._stop.set()
        # Wake a loop blocked in wait_for_work.
        self.queue.close()
        if self._thread is not None:
            self._thread.join(timeout_s)
        if not drain:
            self.queue.cancel_pending()

    @property
    def running(self) -> bool:
        """Whether the loop thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while True:
            ran = self.run_once()
            if ran:
                continue
            if self._stop.is_set():
                if not self._drain or self.queue.depth() == 0:
                    return
                continue
            self.queue.wait_for_work(self.idle_wait_s)

    # -- execution -------------------------------------------------------------

    def claim_size(self) -> int:
        """The next batch's claim bound (elastic: backlog-proportional).

        Elastic sizing reads the ``service.queue_depth`` gauge the queue
        publishes on every transition — the same number ``/metrics`` and
        the trace reports show — so pool behavior is explainable from
        telemetry alone.
        """
        if self.elastic_max is None:
            return self.batch_size
        depth = int(self.registry.value("service.queue_depth", 0))
        size = max(self.batch_size, min(self.elastic_max, depth))
        self.registry.gauge("service.batch_effective", size)
        return size

    def run_once(self) -> int:
        """Claim and execute one batch; returns requests resolved.

        Public so tests (and serial embeddings) can drive the broker
        deterministically without the background thread.
        """
        batch = self.queue.claim(self.claim_size())
        if not batch:
            return 0
        return self._run_batch(batch)

    def _run_batch(self, batch: list[Claim]) -> int:
        watch = Stopwatch()
        specs = [c.spec for c in batch]
        res = supervise_instances_memoized(
            specs, store=self.store, ledger=self.ledger, salt=self.salt,
            registry=self.registry, max_workers=self.max_workers,
            parallel=self.parallel, retry=self.retry, faults=self.faults,
            leases=self.leases, on_failure=QUARANTINE,
            checkpoint=self.checkpoint)
        batch_s = watch.elapsed()
        self.registry.observe("service.batch_s", batch_s)
        # Quarantine records carry the per-position spec, so identity maps
        # each failed claim to its triage record.
        failed = {id(rec.item): rec for rec in res.quarantined}
        resolved = 0
        for claim, outcome in zip(batch, res.results):
            if outcome is not None:
                resolved += self.queue.complete(
                    claim.key, outcome_payload(outcome))
                state = "done"
            else:
                rec = failed.get(id(claim.spec))
                error = rec.error if rec is not None else "execution failed"
                kind = rec.kind if rec is not None else "unknown"
                resolved += self.queue.fail(claim.key, error=error,
                                            kind=kind)
                state = "failed"
            if self.tracer is not None:
                # The broker thread is the only span writer, so the
                # (thread-unsafe) tracer is safe here; spans are modelled
                # on the admission-sequence clock.
                for rid in claim.request_ids:
                    self.tracer.modelled_span(
                        f"request:{rid}", start=float(claim.seq),
                        wall_s=batch_s, key=claim.key[:12], state=state,
                        priority=claim.priority,
                        coalesced=len(claim.request_ids) - 1)
        if self.tracer is not None:
            self.tracer.modelled_span(
                "service:batch", start=float(batch[0].seq), wall_s=batch_s,
                entries=len(batch), requests=resolved,
                quarantined=len(res.quarantined))
        return resolved

    # -- telemetry -------------------------------------------------------------

    def metrics_view(self) -> MetricsRegistry:
        """A merged snapshot view: broker registry plus store counters."""
        view = MetricsRegistry().merge(self.registry)
        if self.store is not None:
            view.merge(self.store.metrics)
        return view
