"""The single-process HTTP front door over the scenario service.

One :class:`ScenarioService` composes the admission queue and the broker;
one :class:`ScenarioServer` (a ``ThreadingHTTPServer``) exposes it through
the versioned surface declared in :mod:`repro.service.api`:

- ``POST /v1/scenarios`` — submit a scenario; ``202`` with the request id
  (``status`` is ``"queued"``, ``"coalesced"``, or ``"done"`` for a
  surrogate-resolved answer), ``429``/``queue_full`` under backpressure,
  ``503``/``draining`` while shutting down.
- ``GET /v1/scenarios/<id>`` — poll a request; terminal responses carry
  the result payload (``done``) or the triage error (``failed`` /
  ``cancelled``).
- ``GET /v1/scenarios?state=&limit=&cursor=`` — enumerate tracked
  requests (keyset pagination over the request registry).
- ``GET /v1/healthz`` — liveness plus queue depth and drain state.
- ``GET /v1/metrics`` — flat JSON snapshot of the obs registry
  (``service.*``, ``memo.*``, ``retry.*``, ``store.*``, worker telemetry).

The unversioned paths of the first release still answer as deprecated
aliases (same body, ``Deprecation`` header).  Handler threads only touch
the lock-guarded queue; all execution stays on the broker thread.
Shutdown is graceful by default: stop admitting, finish everything
queued, then stop the broker — a request accepted with ``202`` is never
silently dropped.
"""

from __future__ import annotations

from http.server import ThreadingHTTPServer
from typing import Any

from ..core.parallel import InstanceSpec
from ..obs.registry import MetricsRegistry
from .api import (
    DRAINING,
    MAX_DAYS,
    MAX_SCALE,
    NOT_FOUND,
    QUEUE_FULL,
    ApiError,
    BadRequest,
    JsonApiHandler,
    parse_list_query,
    spec_from_request,
)
from .broker import Broker
from .queue import (
    DONE,
    FAILED,
    TERMINAL_STATES,
    Admission,
    RequestRecord,
    ScenarioQueue,
)

__all__ = [
    "DEFAULT_PORT",
    "MAX_DAYS",
    "MAX_SCALE",
    "BadRequest",
    "ScenarioHandler",
    "ScenarioServer",
    "ScenarioService",
    "make_server",
    "record_view",
    "spec_from_request",
]

#: Default TCP port of the service (``repro serve`` / ``repro submit``).
DEFAULT_PORT = 8377

#: States a listing may filter on.
LISTABLE_STATES = frozenset(
    {"queued", "running"} | set(TERMINAL_STATES))


def record_view(rec: RequestRecord, *,
                include_result: bool = True) -> dict[str, Any]:
    """JSON-safe status view of one tracked request.

    ``include_result=False`` gives the summary shape the listing endpoint
    returns (payload arrays omitted; everything else identical).
    """
    out: dict[str, Any] = {
        "id": rec.request_id,
        "state": rec.state,
        "key": rec.key,
        "priority": rec.priority,
        "coalesced": rec.coalesced,
    }
    if rec.wait_s is not None:
        out["wait_s"] = rec.wait_s
    if rec.total_s is not None:
        out["total_s"] = rec.total_s
    if include_result and rec.state == DONE and rec.result is not None:
        # .tolist() round-trips float64 exactly through JSON (repr-based),
        # which is what keeps coalesced payloads bit-identical end to end.
        out["result"] = {k: v.tolist() for k, v in rec.result.items()}
    if rec.state == FAILED or rec.error is not None:
        out["error"] = rec.error
        out["kind"] = rec.kind
    return out


class ScenarioService:
    """Queue + broker + telemetry behind one object the API serves.

    When a :class:`~repro.surrogate.serving.SurrogateGate` is attached,
    submissions are consulted against it first: a confident emulated
    answer resolves the request immediately (``source: "surrogate"``
    plus uncertainty bands, no queue slot, no worker); everything else
    is enqueued for exact execution as before — and, because the broker
    journals spec-carrying completions to the store's corpus ledger,
    every exact run becomes training data for the next retrain (the
    active-learning loop).

    A shard worker configures three extras: ``rid_prefix`` (globally
    unique ids a router can address), ``on_terminal`` (the durable spool
    that survives the process), and ``leases`` (the cross-process
    in-flight table that keeps coalescing correct fleet-wide).
    """

    def __init__(
        self,
        *,
        store=None,
        ledger=None,
        salt: str | None = None,
        registry: MetricsRegistry | None = None,
        tracer=None,
        capacity: int = 64,
        aging_every: int = 8,
        batch_size: int = 4,
        max_workers: int | None = None,
        parallel: bool = True,
        retry=None,
        faults=None,
        surrogate=None,
        leases=None,
        elastic_max: int | None = None,
        rid_prefix: str = "",
        on_terminal=None,
        checkpoint=None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.store = store
        self.surrogate = surrogate
        if surrogate is not None:
            # Fold surrogate.* counters into the service registry so hit
            # rates and band widths show up on /metrics with everything
            # else.
            surrogate.metrics = self.registry
        if surrogate is not None and ledger is None and store is not None:
            # The surrogate's flywheel: without an explicit journal,
            # exact completions still land in the store-adjacent corpus
            # ledger so the next retrain covers the gaps the gate saw.
            from ..store.ledger import RunLedger
            from ..surrogate.corpus import corpus_ledger_path

            path = corpus_ledger_path(store)
            path.parent.mkdir(parents=True, exist_ok=True)
            ledger = RunLedger(path)
        self.queue = ScenarioQueue(capacity=capacity,
                                   aging_every=aging_every,
                                   metrics=self.registry,
                                   rid_prefix=rid_prefix,
                                   on_terminal=on_terminal)
        self.broker = Broker(
            self.queue, store=store, ledger=ledger, salt=salt,
            registry=self.registry, tracer=tracer, batch_size=batch_size,
            max_workers=max_workers, parallel=parallel, retry=retry,
            faults=faults, leases=leases, elastic_max=elastic_max,
            checkpoint=checkpoint)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ScenarioService":
        """Start the broker loop."""
        self.broker.start()
        return self

    def stop(self, *, drain: bool = True,
             timeout_s: float | None = None) -> None:
        """Graceful drain by default: admit nothing, finish everything."""
        self.queue.close()
        self.broker.stop(drain=drain, timeout_s=timeout_s)

    # -- operations ------------------------------------------------------------

    def submit(self, spec: InstanceSpec, *, priority: int = 0) -> Admission:
        """Admit one scenario: surrogate fast path first, queue otherwise.

        If an identical request is already queued or running we skip the
        gate and coalesce onto the exact computation — joining an
        in-flight run is free and bit-exact, strictly better than an
        emulated answer.

        The tracked key is the *broker-salted* cache key — the same key
        the CAS blob, the lease file, and the router's shard hash use —
        so one identifier names a scenario across every layer (and the
        spool fallback can rebuild results from the store by key alone).
        """
        from ..store.keys import instance_key

        key = instance_key(spec, salt=self.broker.salt)
        if self.surrogate is not None and not self.queue.closed:
            if not self.queue.in_flight(key):
                payload = self.surrogate.try_answer(spec)
                if payload is not None:
                    return self.queue.admit_resolved(spec, key=key,
                                                     result=payload)
        return self.queue.submit(spec, priority=priority, key=key)

    def status(self, request_id: str) -> dict[str, Any] | None:
        """JSON-safe view of one request, or None when unknown."""
        rec = self.queue.status(request_id)
        return None if rec is None else record_view(rec)

    def wait(self, request_id: str,
             timeout_s: float | None = None) -> dict[str, Any] | None:
        """Block until terminal (broker must be running), then view."""
        rec = self.queue.wait(request_id, timeout_s)
        return None if rec is None else record_view(rec)

    def list(self, *, state: str | None = None, limit: int = 50,
             cursor: str | None = None) -> dict[str, Any]:
        """The listing page: summary views + keyset cursor."""
        records, next_cursor = self.queue.list_records(
            state=state, limit=limit, cursor=cursor)
        views = [record_view(rec, include_result=False) for rec in records]
        return {"scenarios": views, "next_cursor": next_cursor,
                "count": len(views)}

    def health(self) -> dict[str, Any]:
        """Liveness payload for ``/v1/healthz``."""
        out = {
            "status": "draining" if self.queue.closed else "ok",
            "queue_depth": self.queue.depth(),
            "broker_running": self.broker.running,
        }
        if self.surrogate is not None:
            info = self.surrogate.model_info()
            out["surrogate"] = {
                "enabled": True,
                "rtol": self.surrogate.rtol,
                "model": info,
            }
        return out

    def metrics_snapshot(self) -> dict[str, Any]:
        """Flat registry snapshot for ``/v1/metrics``."""
        return self.broker.metrics_view().snapshot()


class ScenarioServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: ScenarioService) -> None:
        super().__init__(address, ScenarioHandler)
        self.service = service


class ScenarioHandler(JsonApiHandler):
    """The ``/v1`` surface bound to one in-process service."""

    @property
    def service(self) -> ScenarioService:
        return self.server.service  # type: ignore[attr-defined]

    # -- routes (dispatched through the api table) -----------------------------

    def api_healthz(self, *, query) -> tuple[int, dict[str, Any]]:
        """Liveness + queue depth + drain state."""
        return 200, self.service.health()

    def api_metrics(self, *, query) -> tuple[int, dict[str, Any]]:
        """Flat obs-registry snapshot."""
        return 200, self.service.metrics_snapshot()

    def api_get_scenario(self, *, query,
                         request_id: str) -> tuple[int, dict[str, Any]]:
        """Poll one request (enveloped 404 when unknown)."""
        view = self.service.status(request_id)
        if view is None:
            raise ApiError(NOT_FOUND, f"unknown request {request_id!r}")
        return 200, view

    def api_list_scenarios(self, *, query) -> tuple[int, dict[str, Any]]:
        """Keyset-paginated listing of tracked requests."""
        state, limit, cursor = parse_list_query(query, LISTABLE_STATES)
        return 200, self.service.list(state=state, limit=limit,
                                      cursor=cursor)

    def api_submit_scenario(self, *, query) -> tuple[int, dict[str, Any]]:
        """Admit one scenario; 202, or an enveloped 429/503."""
        spec, priority = spec_from_request(self.read_json_body())
        adm = self.service.submit(spec, priority=priority)
        if not adm.admitted:
            if adm.reason == "draining":
                raise ApiError(DRAINING, "service is draining",
                               retry_after_s=60.0)
            raise ApiError(QUEUE_FULL, "queue full",
                           retry_after_s=adm.retry_after_s or 1.0)
        return 202, {"id": adm.request_id, "key": adm.key,
                     "status": adm.status, "depth": adm.depth}


def make_server(service: ScenarioService, host: str = "127.0.0.1",
                port: int = 0) -> ScenarioServer:
    """Bind a :class:`ScenarioServer` (``port=0`` picks an ephemeral one)."""
    return ScenarioServer((host, port), service)
