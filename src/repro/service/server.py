"""The HTTP front door: a stdlib JSON API over the scenario service.

One :class:`ScenarioService` composes the admission queue and the broker;
one :class:`ScenarioServer` (a ``ThreadingHTTPServer``) exposes it:

- ``POST /scenarios`` — submit a scenario; ``202`` with the request id
  (``status`` is ``"queued"`` or ``"coalesced"``), ``429`` +
  ``Retry-After`` under backpressure, ``503`` while draining.
- ``GET /scenarios/<id>`` — poll a request; terminal responses carry the
  result payload (``done``) or the triage error (``failed`` /
  ``cancelled``).
- ``GET /healthz`` — liveness plus queue depth and drain state.
- ``GET /metrics`` — flat JSON snapshot of the obs registry (``service.*``,
  ``memo.*``, ``retry.*``, ``store.*``, worker telemetry).

Handler threads only touch the lock-guarded queue; all execution stays on
the broker thread.  Shutdown is graceful by default: stop admitting,
finish everything queued, then stop the broker — a request accepted with
``202`` is never silently dropped.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..core.parallel import InstanceSpec
from ..obs.registry import MetricsRegistry
from ..params import DEFAULT_SCALE
from ..synthpop.regions import REGIONS
from .broker import Broker
from .queue import DONE, FAILED, Admission, RequestRecord, ScenarioQueue

#: Default TCP port of the service (``repro serve`` / ``repro submit``).
DEFAULT_PORT = 8377

#: Bounds a submitted scenario must respect (tiny DoS hygiene, and the
#: reproduction's scales are meaningless outside these ranges anyway).
MAX_DAYS = 3650
MAX_SCALE = 1.0


class BadRequest(ValueError):
    """A submission the API rejects with a 400."""


def spec_from_request(body: dict[str, Any]) -> tuple[InstanceSpec, int]:
    """Validate a ``POST /scenarios`` body into (spec, priority).

    Expected fields: ``region`` (required), ``params`` (mapping),
    ``days``, ``scale``, ``seed``, ``asset_seed``, ``priority``.
    """
    if not isinstance(body, dict):
        raise BadRequest("body must be a JSON object")
    region = body.get("region")
    if not isinstance(region, str) or region.upper() not in REGIONS:
        raise BadRequest(f"unknown region {region!r}")
    region = region.upper()
    params = body.get("params", {})
    if not isinstance(params, dict):
        raise BadRequest("params must be an object")
    for name, value in params.items():
        if not isinstance(name, str):
            raise BadRequest("param names must be strings")
        if not isinstance(value, (bool, int, float, str)):
            raise BadRequest(f"unsupported param type for {name!r}")
    try:
        days = int(body.get("days", 120))
        scale = float(body.get("scale", DEFAULT_SCALE))
        seed = int(body.get("seed", 0))
        asset_seed = int(body.get("asset_seed", seed))
        priority = int(body.get("priority", 0))
    except (TypeError, ValueError):
        raise BadRequest("days/seed/asset_seed/priority must be integers, "
                         "scale a float")
    if not 1 <= days <= MAX_DAYS:
        raise BadRequest(f"days must be in [1, {MAX_DAYS}]")
    if not 0.0 < scale <= MAX_SCALE:
        raise BadRequest(f"scale must be in (0, {MAX_SCALE}]")
    spec = InstanceSpec(
        region_code=region, params=dict(params), n_days=days, scale=scale,
        seed=seed, label=f"svc-{region}", asset_seed=asset_seed)
    return spec, priority


def record_view(rec: RequestRecord) -> dict[str, Any]:
    """JSON-safe status view of one tracked request."""
    out: dict[str, Any] = {
        "id": rec.request_id,
        "state": rec.state,
        "key": rec.key,
        "priority": rec.priority,
        "coalesced": rec.coalesced,
    }
    if rec.wait_s is not None:
        out["wait_s"] = rec.wait_s
    if rec.total_s is not None:
        out["total_s"] = rec.total_s
    if rec.state == DONE and rec.result is not None:
        # .tolist() round-trips float64 exactly through JSON (repr-based),
        # which is what keeps coalesced payloads bit-identical end to end.
        out["result"] = {k: v.tolist() for k, v in rec.result.items()}
    if rec.state == FAILED or rec.error is not None:
        out["error"] = rec.error
        out["kind"] = rec.kind
    return out


class ScenarioService:
    """Queue + broker + telemetry behind one object the API serves.

    When a :class:`~repro.surrogate.serving.SurrogateGate` is attached,
    submissions are consulted against it first: a confident emulated
    answer resolves the request immediately (``source: "surrogate"``
    plus uncertainty bands, no queue slot, no worker); everything else
    is enqueued for exact execution as before — and, because the broker
    journals spec-carrying completions to the store's corpus ledger,
    every exact run becomes training data for the next retrain (the
    active-learning loop).
    """

    def __init__(
        self,
        *,
        store=None,
        ledger=None,
        salt: str | None = None,
        registry: MetricsRegistry | None = None,
        tracer=None,
        capacity: int = 64,
        aging_every: int = 8,
        batch_size: int = 4,
        max_workers: int | None = None,
        parallel: bool = True,
        retry=None,
        faults=None,
        surrogate=None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.store = store
        self.surrogate = surrogate
        if surrogate is not None:
            # Fold surrogate.* counters into the service registry so hit
            # rates and band widths show up on /metrics with everything
            # else.
            surrogate.metrics = self.registry
        if surrogate is not None and ledger is None and store is not None:
            # The surrogate's flywheel: without an explicit journal,
            # exact completions still land in the store-adjacent corpus
            # ledger so the next retrain covers the gaps the gate saw.
            from ..store.ledger import RunLedger
            from ..surrogate.corpus import corpus_ledger_path

            path = corpus_ledger_path(store)
            path.parent.mkdir(parents=True, exist_ok=True)
            ledger = RunLedger(path)
        self.queue = ScenarioQueue(capacity=capacity,
                                   aging_every=aging_every,
                                   metrics=self.registry)
        self.broker = Broker(
            self.queue, store=store, ledger=ledger, salt=salt,
            registry=self.registry, tracer=tracer, batch_size=batch_size,
            max_workers=max_workers, parallel=parallel, retry=retry,
            faults=faults)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ScenarioService":
        """Start the broker loop."""
        self.broker.start()
        return self

    def stop(self, *, drain: bool = True,
             timeout_s: float | None = None) -> None:
        """Graceful drain by default: admit nothing, finish everything."""
        self.queue.close()
        self.broker.stop(drain=drain, timeout_s=timeout_s)

    # -- operations ------------------------------------------------------------

    def submit(self, spec: InstanceSpec, *, priority: int = 0) -> Admission:
        """Admit one scenario: surrogate fast path first, queue otherwise.

        If an identical request is already queued or running we skip the
        gate and coalesce onto the exact computation — joining an
        in-flight run is free and bit-exact, strictly better than an
        emulated answer.
        """
        if self.surrogate is not None and not self.queue.closed:
            from ..store.keys import instance_key

            key = instance_key(spec, salt=self.broker.salt)
            if not self.queue.in_flight(key):
                payload = self.surrogate.try_answer(spec)
                if payload is not None:
                    return self.queue.admit_resolved(spec, key=key,
                                                     result=payload)
        return self.queue.submit(spec, priority=priority)

    def status(self, request_id: str) -> dict[str, Any] | None:
        """JSON-safe view of one request, or None when unknown."""
        rec = self.queue.status(request_id)
        return None if rec is None else record_view(rec)

    def wait(self, request_id: str,
             timeout_s: float | None = None) -> dict[str, Any] | None:
        """Block until terminal (broker must be running), then view."""
        rec = self.queue.wait(request_id, timeout_s)
        return None if rec is None else record_view(rec)

    def health(self) -> dict[str, Any]:
        """Liveness payload for ``/healthz``."""
        out = {
            "status": "draining" if self.queue.closed else "ok",
            "queue_depth": self.queue.depth(),
            "broker_running": self.broker.running,
        }
        if self.surrogate is not None:
            info = self.surrogate.model_info()
            out["surrogate"] = {
                "enabled": True,
                "rtol": self.surrogate.rtol,
                "model": info,
            }
        return out

    def metrics_snapshot(self) -> dict[str, Any]:
        """Flat registry snapshot for ``/metrics``."""
        return self.broker.metrics_view().snapshot()


class ScenarioServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: ScenarioService) -> None:
        super().__init__(address, ScenarioHandler)
        self.service = service


class ScenarioHandler(BaseHTTPRequestHandler):
    """Routes ``/scenarios``, ``/healthz`` and ``/metrics``."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ScenarioService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        """Silenced: the obs registry is the service's telemetry."""

    def _send(self, code: int, payload: dict[str, Any],
              headers: dict[str, str] | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        """Route /healthz, /metrics and /scenarios/<id>."""
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, self.service.health())
        elif path == "/metrics":
            self._send(200, self.service.metrics_snapshot())
        elif path.startswith("/scenarios/"):
            request_id = path[len("/scenarios/"):]
            view = self.service.status(request_id)
            if view is None:
                self._send(404, {"error": f"unknown request {request_id!r}"})
            else:
                self._send(200, view)
        else:
            self._send(404, {"error": f"no route for {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        """Route POST /scenarios: validate, admit, answer."""
        if self.path.rstrip("/") != "/scenarios":
            self._send(404, {"error": f"no route for {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = json.loads(self.rfile.read(length) or b"{}")
            spec, priority = spec_from_request(body)
        except (json.JSONDecodeError, BadRequest) as exc:
            self._send(400, {"error": str(exc)})
            return
        adm = self.service.submit(spec, priority=priority)
        if not adm.admitted:
            if adm.reason == "draining":
                self._send(503, {"error": "service is draining",
                                 "status": "rejected"},
                           headers={"Retry-After": "60"})
            else:
                hint = adm.retry_after_s or 1.0
                self._send(429, {"error": "queue full",
                                 "status": "rejected",
                                 "retry_after_s": hint,
                                 "depth": adm.depth},
                           headers={"Retry-After": f"{hint:.3f}"})
            return
        self._send(202, {"id": adm.request_id, "key": adm.key,
                         "status": adm.status, "depth": adm.depth})


def make_server(service: ScenarioService, host: str = "127.0.0.1",
                port: int = 0) -> ScenarioServer:
    """Bind a :class:`ScenarioServer` (``port=0`` picks an ephemeral one)."""
    return ScenarioServer((host, port), service)
