"""A small stdlib client for the scenario service ``/v1`` HTTP API.

``repro submit`` is built on this; it is also the cross-process half of
the service tests.  Only :mod:`urllib.request` — the service plane stays
dependency-free end to end.

Errors are typed off the uniform envelope's ``code`` field (see
:mod:`repro.service.api`): :class:`QueueFullError` for ``queue_full``,
:class:`DrainingError` for ``draining``, :class:`NotFoundError` for
``not_found``, :class:`QuarantinedError` for ``quarantined``, and
:class:`ServiceError` for everything else (including transport
failures, where ``status`` is 0 and ``code`` empty).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from ..obs.registry import Stopwatch
from .api import API_PREFIX, DRAINING, NOT_FOUND, QUARANTINED, QUEUE_FULL


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    Attributes:
        status: HTTP status code (0 when the connection itself failed).
        code: the envelope's error code ("" for transport failures or
            pre-envelope servers).
        payload: decoded JSON error body when the service sent one.
    """

    def __init__(self, message: str, *, status: int = 0, code: str = "",
                 payload: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.payload = payload or {}


class QueueFullError(ServiceError):
    """429/``queue_full`` under backpressure; honor :attr:`retry_after_s`."""

    def __init__(self, message: str, *, retry_after_s: float,
                 status: int = 429,
                 payload: dict[str, Any] | None = None) -> None:
        super().__init__(message, status=status, code=QUEUE_FULL,
                         payload=payload)
        self.retry_after_s = retry_after_s


class DrainingError(ServiceError):
    """503/``draining``: the service is shutting down; retry elsewhere."""

    def __init__(self, message: str, *, retry_after_s: float | None = None,
                 status: int = 503,
                 payload: dict[str, Any] | None = None) -> None:
        super().__init__(message, status=status, code=DRAINING,
                         payload=payload)
        self.retry_after_s = retry_after_s


class NotFoundError(ServiceError):
    """404/``not_found``: unknown request id or route."""

    def __init__(self, message: str, *, status: int = 404,
                 payload: dict[str, Any] | None = None) -> None:
        super().__init__(message, status=status, code=NOT_FOUND,
                         payload=payload)


class QuarantinedError(ServiceError):
    """500/``quarantined``: execution exhausted its retry budget."""

    def __init__(self, message: str, *, status: int = 500,
                 payload: dict[str, Any] | None = None) -> None:
        super().__init__(message, status=status, code=QUARANTINED,
                         payload=payload)


def error_from_payload(status: int,
                       payload: dict[str, Any]) -> ServiceError:
    """Map an error envelope to the matching typed exception.

    Understands both the ``/v1`` envelope (``{"error": {"code": ...}}``)
    and the pre-envelope flat shape (``{"error": "message"}``) so the
    client still renders something useful against an old server.
    """
    error = payload.get("error")
    if isinstance(error, dict):
        code = str(error.get("code", ""))
        message = str(error.get("message", f"HTTP {status}"))
        retry_after_s = error.get("retry_after_s")
    else:
        code = ""
        message = str(error) if error else f"HTTP {status}"
        retry_after_s = payload.get("retry_after_s")
    if code == QUEUE_FULL or (not code and status == 429):
        return QueueFullError(
            message, status=status, payload=payload,
            retry_after_s=float(retry_after_s or 1.0))
    if code == DRAINING:
        return DrainingError(
            message, status=status, payload=payload,
            retry_after_s=None if retry_after_s is None
            else float(retry_after_s))
    if code == NOT_FOUND:
        return NotFoundError(message, status=status, payload=payload)
    if code == QUARANTINED:
        return QuarantinedError(message, status=status, payload=payload)
    return ServiceError(message, status=status, code=code, payload=payload)


class ServiceClient:
    """Thin JSON client bound to one service base URL (speaks ``/v1``)."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> dict[str, Any]:
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            self.base_url + API_PREFIX + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                payload = {}
            raise error_from_payload(exc.code, payload) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service unreachable at {self.base_url}: {exc.reason}"
            ) from None

    # -- API -------------------------------------------------------------------

    def submit(self, scenario: dict[str, Any]) -> dict[str, Any]:
        """POST a scenario; returns ``{id, key, status, depth}``.

        Raises :class:`QueueFullError` on ``queue_full``,
        :class:`DrainingError` on ``draining``, and
        :class:`ServiceError` on any other non-2xx (400 validation, ...).
        """
        return self._request("POST", "/scenarios", scenario)

    def status(self, request_id: str) -> dict[str, Any]:
        """GET one request's status view."""
        return self._request("GET", f"/scenarios/{request_id}")

    def list(self, *, state: str | None = None, limit: int | None = None,
             cursor: str | None = None) -> dict[str, Any]:
        """GET a page of tracked requests.

        Returns ``{"scenarios": [...], "next_cursor": ..., "count": n}``;
        pass the returned ``next_cursor`` back to continue.
        """
        params = []
        if state is not None:
            params.append(f"state={state}")
        if limit is not None:
            params.append(f"limit={limit}")
        if cursor is not None:
            params.append(f"cursor={cursor}")
        suffix = "?" + "&".join(params) if params else ""
        return self._request("GET", "/scenarios" + suffix)

    def wait(self, request_id: str, *, timeout_s: float = 300.0,
             poll_s: float = 0.2) -> dict[str, Any]:
        """Poll until the request reaches a terminal state.

        Raises :class:`ServiceError` when ``timeout_s`` elapses first.
        """
        watch = Stopwatch()
        while True:
            view = self.status(request_id)
            if view["state"] in ("done", "failed", "cancelled"):
                return view
            if watch.elapsed() >= timeout_s:
                raise ServiceError(
                    f"request {request_id} still {view['state']!r} after "
                    f"{timeout_s:.1f}s")
            time.sleep(poll_s)

    def health(self) -> dict[str, Any]:
        """GET ``/v1/healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        """GET ``/v1/metrics`` (flat registry snapshot)."""
        return self._request("GET", "/metrics")
