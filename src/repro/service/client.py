"""A small stdlib client for the scenario service HTTP API.

``repro submit`` is built on this; it is also the cross-process half of
the service tests.  Only :mod:`urllib.request` — the service plane stays
dependency-free end to end.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from ..obs.registry import Stopwatch


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    Attributes:
        status: HTTP status code (0 when the connection itself failed).
        payload: decoded JSON error body when the service sent one.
    """

    def __init__(self, message: str, *, status: int = 0,
                 payload: dict[str, Any] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class QueueFullError(ServiceError):
    """A 429 under backpressure; honor :attr:`retry_after_s`."""

    def __init__(self, message: str, *, retry_after_s: float,
                 payload: dict[str, Any] | None = None) -> None:
        super().__init__(message, status=429, payload=payload)
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Thin JSON client bound to one service base URL."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> dict[str, Any]:
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                payload = {}
            message = payload.get("error", f"HTTP {exc.code}")
            if exc.code == 429:
                raise QueueFullError(
                    message, payload=payload,
                    retry_after_s=float(payload.get("retry_after_s", 1.0)),
                ) from None
            raise ServiceError(message, status=exc.code,
                               payload=payload) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service unreachable at {self.base_url}: {exc.reason}"
            ) from None

    # -- API -------------------------------------------------------------------

    def submit(self, scenario: dict[str, Any]) -> dict[str, Any]:
        """POST a scenario; returns ``{id, key, status, depth}``.

        Raises :class:`QueueFullError` on 429 and :class:`ServiceError`
        on any other non-2xx (400 validation, 503 draining, ...).
        """
        return self._request("POST", "/scenarios", scenario)

    def status(self, request_id: str) -> dict[str, Any]:
        """GET one request's status view."""
        return self._request("GET", f"/scenarios/{request_id}")

    def wait(self, request_id: str, *, timeout_s: float = 300.0,
             poll_s: float = 0.2) -> dict[str, Any]:
        """Poll until the request reaches a terminal state.

        Raises :class:`ServiceError` when ``timeout_s`` elapses first.
        """
        watch = Stopwatch()
        while True:
            view = self.status(request_id)
            if view["state"] in ("done", "failed", "cancelled"):
                return view
            if watch.elapsed() >= timeout_s:
                raise ServiceError(
                    f"request {request_id} still {view['state']!r} after "
                    f"{timeout_s:.1f}s")
            time.sleep(poll_s)

    def health(self) -> dict[str, Any]:
        """GET ``/healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        """GET ``/metrics`` (flat registry snapshot)."""
        return self._request("GET", "/metrics")
