"""The fleet front door: one ``/v1`` surface over N shard workers.

The router is a thin, stateless HTTP process.  It owns no queue and runs
nothing; every request is forwarded over localhost to the shard that
owns it and the response relayed verbatim — the uniform envelope means
shard errors pass through untouched.

Routing rules:

- ``POST /v1/scenarios`` — validate the body (the same
  :func:`~repro.service.api.spec_from_request` the shards use), compute
  the canonical cache key, forward to ``shard_of(key)``.  A dead or
  draining owner is *rerouted* to the next live shard in ring order:
  the shared lease table guarantees at most one execution per key even
  when routing degrades, so rerouting trades locality for availability
  without risking duplicate work.
- ``GET /v1/scenarios/<id>`` — ids are self-addressing (``s<k>-r...``);
  forward to shard ``k``.  When that shard is gone (rolling restart),
  fall back to its terminal spool: the drained process journaled every
  resolved request, and the result payload is rebuilt from the shared
  CAS by key — polls keep answering across the restart.
- ``GET /v1/scenarios`` — fan out to every live shard, merge pages in
  id order.  The merged ``next_cursor`` is the last id returned, which
  every shard interprets independently (ids are fixed-width per shard).
- ``GET /v1/healthz`` — aggregate: ``ok`` only when every shard answers
  ``ok``; per-shard detail included.
- ``GET /v1/metrics`` — numeric sum across shard snapshots (counters
  and timers add by construction; summed gauges read as fleet totals),
  plus the router's own ``router.*`` counters.
"""

from __future__ import annotations

import http.client
import json
import threading
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Any

from ..obs.registry import MetricsRegistry
from ..store.cas import ContentStore
from ..store.keys import instance_key
from .api import (
    DRAINING,
    INTERNAL,
    NOT_FOUND,
    ApiError,
    JsonApiHandler,
    parse_list_query,
    spec_from_request,
)
from .queue import DONE
from .server import LISTABLE_STATES
from .shard import read_spool, rid_shard, shard_of, spool_path


class ShardUnavailable(Exception):
    """The target shard is dead or refused the forward."""


class Router:
    """Forwarding logic over a set of shard addresses.

    Args:
        addresses: per-shard ``(host, port)``; index == shard index.
            Entries may be None (shard not up) — those are skipped.
        store_root: the fleet's shared store directory, for spool
            fallback and result reconstruction.
        salt: cache-key salt (must match the shards').
        registry: ``router.*`` counter sink.
        timeout_s: per-forward socket timeout.
    """

    def __init__(self, addresses: list[tuple[str, int] | None],
                 store_root: str | Path, *, salt: str | None = None,
                 registry: MetricsRegistry | None = None,
                 timeout_s: float = 30.0) -> None:
        self.addresses = list(addresses)
        self.store_root = Path(store_root)
        self.salt = salt
        self.registry = registry if registry is not None else MetricsRegistry()
        self.timeout_s = timeout_s
        self._store: ContentStore | None = None
        self._local = threading.local()

    @classmethod
    def for_fleet(cls, fleet, **kwargs) -> "Router":
        """A router over a :class:`~repro.service.shard.ShardFleet`."""
        return cls(fleet.addresses(), fleet.store_root,
                   salt=fleet._kwargs.get("salt"), **kwargs)

    @property
    def num_shards(self) -> int:
        return len(self.addresses)

    @property
    def store(self) -> ContentStore:
        if self._store is None:
            self._store = ContentStore(self.store_root)
        return self._store

    # -- transport -------------------------------------------------------------

    def _connection(self, address: tuple[str, int]) -> http.client.HTTPConnection:
        """A persistent per-thread connection to one shard."""
        pool = getattr(self._local, "pool", None)
        if pool is None:
            pool = self._local.pool = {}
        conn = pool.get(address)
        if conn is None:
            conn = http.client.HTTPConnection(
                address[0], address[1], timeout=self.timeout_s)
            pool[address] = conn
        return conn

    def _drop_connection(self, address: tuple[str, int]) -> None:
        pool = getattr(self._local, "pool", None)
        if pool is not None:
            conn = pool.pop(address, None)
            if conn is not None:
                conn.close()

    def forward(self, shard: int, method: str, path: str,
                body: dict[str, Any] | None = None
                ) -> tuple[int, dict[str, Any]]:
        """Forward one request to a shard; relay ``(status, payload)``.

        Raises :class:`ShardUnavailable` when the shard is not reachable
        (no address, connection refused, mid-flight drop).  One silent
        retry covers the keep-alive race where the shard closed an idle
        persistent connection between requests.
        """
        address = (self.addresses[shard]
                   if 0 <= shard < len(self.addresses) else None)
        if address is None:
            raise ShardUnavailable(f"shard {shard} has no address")
        payload = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"}
        for attempt in (0, 1):
            conn = self._connection(address)
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                data = resp.read()
                return resp.status, json.loads(data or b"{}")
            except (http.client.HTTPException, OSError,
                    json.JSONDecodeError) as exc:
                self._drop_connection(address)
                if attempt == 1:
                    self.registry.inc("router.forward_errors")
                    raise ShardUnavailable(
                        f"shard {shard} unreachable: {exc}") from None

    # -- operations ------------------------------------------------------------

    def submit(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        """Route a submission to its key's owner; reroute if that shard
        is down or draining (the lease table keeps the key single-flight
        fleet-wide)."""
        spec, _priority = spec_from_request(body)
        key = instance_key(spec, salt=self.salt)
        owner = shard_of(key, self.num_shards)
        last: tuple[int, dict[str, Any]] | None = None
        for offset in range(self.num_shards):
            shard = (owner + offset) % self.num_shards
            try:
                status, payload = self.forward(
                    shard, "POST", "/v1/scenarios", body)
            except ShardUnavailable:
                self.registry.inc("router.reroutes")
                continue
            draining = (status == 503 and isinstance(payload.get("error"),
                                                     dict)
                        and payload["error"].get("code") == DRAINING)
            if draining:
                last = (status, payload)
                self.registry.inc("router.reroutes")
                continue
            if offset:
                self.registry.inc("router.rerouted_submits")
            return status, payload
        if last is not None:
            return last
        raise ApiError(DRAINING, "no shard available", retry_after_s=5.0)

    def get_scenario(self, request_id: str) -> tuple[int, dict[str, Any]]:
        """Poll the owning shard; fall back to its spool when it's gone."""
        shard = rid_shard(request_id)
        if shard is None or shard >= self.num_shards:
            raise ApiError(NOT_FOUND, f"unknown request {request_id!r}")
        try:
            return self.forward(shard, "GET",
                                f"/v1/scenarios/{request_id}")
        except ShardUnavailable:
            view = self.spool_view(shard, request_id)
            if view is None:
                raise ApiError(
                    NOT_FOUND,
                    f"request {request_id!r} unknown (shard {shard} down, "
                    "not in its spool)")
            self.registry.inc("router.spool_hits")
            return 200, view

    def spool_view(self, shard: int,
                   request_id: str) -> dict[str, Any] | None:
        """Rebuild a terminal status view from spool + shared CAS."""
        record = read_spool(
            spool_path(self.store_root, shard)).get(request_id)
        if record is None:
            return None
        view: dict[str, Any] = {
            "id": record["id"],
            "state": record["state"],
            "key": record["key"],
            "priority": record.get("priority", 0),
            "coalesced": record.get("coalesced", False),
        }
        for extra in ("wait_s", "total_s", "error", "kind"):
            if extra in record:
                view[extra] = record[extra]
        if record["state"] == DONE:
            payload = self.store.get(record["key"])
            if payload is not None:
                # Same serialization as the live path: float64 .tolist()
                # round-trips exactly, so the answer stays bit-identical.
                view["result"] = {k: v.tolist() for k, v in payload.items()}
        return view

    def list_scenarios(self, *, state: str | None, limit: int,
                       cursor: str | None) -> dict[str, Any]:
        """Fan out a listing to every live shard and merge in id order."""
        merged: list[dict[str, Any]] = []
        any_more = False
        params = [f"limit={limit}"]
        if state is not None:
            params.append(f"state={state}")
        if cursor is not None:
            params.append(f"cursor={cursor}")
        path = "/v1/scenarios?" + "&".join(params)
        for shard in range(self.num_shards):
            try:
                status, payload = self.forward(shard, "GET", path)
            except ShardUnavailable:
                continue
            if status != 200:
                continue
            merged.extend(payload.get("scenarios", []))
            if payload.get("next_cursor"):
                any_more = True
        merged.sort(key=lambda view: view["id"])
        if len(merged) > limit:
            any_more = True
            merged = merged[:limit]
        next_cursor = merged[-1]["id"] if merged and any_more else None
        return {"scenarios": merged, "next_cursor": next_cursor,
                "count": len(merged)}

    def health(self) -> dict[str, Any]:
        """Fleet liveness: ``ok`` only when every shard answers ``ok``."""
        shards: list[dict[str, Any]] = []
        worst = "ok"
        for shard in range(self.num_shards):
            try:
                status, payload = self.forward(shard, "GET", "/v1/healthz")
                state = payload.get("status", "down") if status == 200 \
                    else "down"
            except ShardUnavailable:
                payload = {}
                state = "down"
            shards.append({"shard": shard, "status": state,
                           "queue_depth": payload.get("queue_depth")})
            if state != "ok":
                worst = "degraded"
        return {"status": worst, "role": "router",
                "num_shards": self.num_shards, "shards": shards}

    def metrics(self) -> dict[str, Any]:
        """Numeric sum of every shard's snapshot plus ``router.*``."""
        total: dict[str, Any] = {}
        for shard in range(self.num_shards):
            try:
                status, payload = self.forward(shard, "GET", "/v1/metrics")
            except ShardUnavailable:
                continue
            if status != 200:
                continue
            for name, value in payload.items():
                if isinstance(value, (int, float)) and not isinstance(
                        value, bool):
                    total[name] = total.get(name, 0) + value
        total.update(self.registry.snapshot())
        return total


class RouterServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the router for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, router: Router) -> None:
        super().__init__(address, RouterHandler)
        self.router = router


class RouterHandler(JsonApiHandler):
    """The fleet's ``/v1`` surface: resolve, forward, relay."""

    @property
    def router(self) -> Router:
        return self.server.router  # type: ignore[attr-defined]

    def api_healthz(self, *, query) -> tuple[int, dict[str, Any]]:
        """Aggregated fleet health."""
        return 200, self.router.health()

    def api_metrics(self, *, query) -> tuple[int, dict[str, Any]]:
        """Summed fleet metrics plus ``router.*`` counters."""
        return 200, self.router.metrics()

    def api_get_scenario(self, *, query,
                         request_id: str) -> tuple[int, dict[str, Any]]:
        """Poll the owning shard (spool fallback when it is gone)."""
        return self.router.get_scenario(request_id)

    def api_list_scenarios(self, *, query) -> tuple[int, dict[str, Any]]:
        """Fan the listing out to every shard and merge by id."""
        state, limit, cursor = parse_list_query(query, LISTABLE_STATES)
        return 200, self.router.list_scenarios(state=state, limit=limit,
                                               cursor=cursor)

    def api_submit_scenario(self, *, query) -> tuple[int, dict[str, Any]]:
        """Route the submission to its key's shard (reroute on drain)."""
        try:
            return self.router.submit(self.read_json_body())
        except ApiError:
            raise
        except Exception as exc:  # noqa: BLE001 — relay, don't hang
            raise ApiError(INTERNAL, f"{type(exc).__name__}: {exc}")


def make_router_server(router: Router, host: str = "127.0.0.1",
                       port: int = 0) -> RouterServer:
    """Bind a :class:`RouterServer` (``port=0`` picks an ephemeral one)."""
    return RouterServer((host, port), router)
