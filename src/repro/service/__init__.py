"""Always-on scenario service plane: priority queue, coalescing, HTTP API.

The paper's workflows are batch-shaped — a nightly window, a county-week
sweep — but the *demand* on such a system is interactive: planners ask
"what if tau were 0.95 in Vermont?" at arbitrary times, often the same
question within minutes of each other.  This package turns the
reproduction's execution stack into a long-running service:

- :mod:`~repro.service.api` — the versioned ``/v1`` surface: one routing
  table, one error envelope, legacy unversioned paths as deprecated
  aliases;
- :mod:`~repro.service.queue` — bounded admission with priority,
  deterministic aging (no starvation), and request coalescing keyed on
  canonical :func:`~repro.store.keys.instance_key` cache keys;
- :mod:`~repro.service.broker` — a background loop draining batches
  through :func:`~repro.store.memo.supervise_instances_memoized`, mapping
  every request to a terminal state even when workers die;
- :mod:`~repro.service.server` / :mod:`~repro.service.client` — a
  stdlib-only JSON HTTP API (``repro serve`` / ``repro submit``);
- :mod:`~repro.service.shard` / :mod:`~repro.service.router` — the
  scale-out plane: N independent broker/worker processes sharded by
  cache-key hash over one shared store, coalescing kept correct across
  processes by a lease table, fronted by a stateless router
  (``repro serve --shards N``).
"""

from .api import (
    API_PREFIX,
    API_VERSION,
    ERROR_CODES,
    ApiError,
    BadRequest,
    error_envelope,
    resolve,
    spec_from_request,
)
from .broker import Broker
from .client import (
    DrainingError,
    NotFoundError,
    QuarantinedError,
    QueueFullError,
    ServiceClient,
    ServiceError,
)
from .queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Admission,
    Claim,
    RequestRecord,
    ScenarioQueue,
)
from .router import Router, RouterServer, make_router_server
from .server import (
    DEFAULT_PORT,
    ScenarioServer,
    ScenarioService,
    make_server,
    record_view,
)
from .shard import ShardConfig, ShardFleet, shard_of

__all__ = [
    "API_PREFIX",
    "API_VERSION",
    "Admission",
    "ApiError",
    "BadRequest",
    "Broker",
    "CANCELLED",
    "Claim",
    "DEFAULT_PORT",
    "DONE",
    "DrainingError",
    "ERROR_CODES",
    "FAILED",
    "NotFoundError",
    "QUEUED",
    "QuarantinedError",
    "QueueFullError",
    "RUNNING",
    "RequestRecord",
    "Router",
    "RouterServer",
    "ScenarioQueue",
    "ScenarioServer",
    "ScenarioService",
    "ServiceClient",
    "ServiceError",
    "ShardConfig",
    "ShardFleet",
    "TERMINAL_STATES",
    "error_envelope",
    "make_router_server",
    "make_server",
    "record_view",
    "resolve",
    "shard_of",
    "spec_from_request",
]
