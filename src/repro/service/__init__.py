"""Always-on scenario service plane: priority queue, coalescing, HTTP API.

The paper's workflows are batch-shaped — a nightly window, a county-week
sweep — but the *demand* on such a system is interactive: planners ask
"what if tau were 0.95 in Vermont?" at arbitrary times, often the same
question within minutes of each other.  This package turns the
reproduction's execution stack into a long-running service:

- :mod:`~repro.service.queue` — bounded admission with priority,
  deterministic aging (no starvation), and request coalescing keyed on
  canonical :func:`~repro.store.keys.instance_key` cache keys;
- :mod:`~repro.service.broker` — a background loop draining batches
  through :func:`~repro.store.memo.supervise_instances_memoized`, mapping
  every request to a terminal state even when workers die;
- :mod:`~repro.service.server` / :mod:`~repro.service.client` — a
  stdlib-only JSON HTTP API (``repro serve`` / ``repro submit``).
"""

from .broker import Broker
from .client import QueueFullError, ServiceClient, ServiceError
from .queue import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Admission,
    Claim,
    RequestRecord,
    ScenarioQueue,
)
from .server import (
    DEFAULT_PORT,
    BadRequest,
    ScenarioServer,
    ScenarioService,
    make_server,
    record_view,
    spec_from_request,
)

__all__ = [
    "Admission",
    "BadRequest",
    "Broker",
    "CANCELLED",
    "Claim",
    "DEFAULT_PORT",
    "DONE",
    "FAILED",
    "QUEUED",
    "QueueFullError",
    "RUNNING",
    "RequestRecord",
    "ScenarioQueue",
    "ScenarioServer",
    "ScenarioService",
    "ServiceClient",
    "ServiceError",
    "TERMINAL_STATES",
    "make_server",
    "record_view",
    "spec_from_request",
]
