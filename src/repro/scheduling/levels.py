"""Level-oriented 2-D strip packing with DB constraints (Section V).

"Think of processors on the X-axis and time on the Y-axis.  The tasks are
mapped from left to right (in terms of available processors), in rows
forming levels.  Within the same level, all tasks are packed so that their
bottoms align.  The first level is the bottom of the strip and subsequent
levels are defined by the time taken of the slowest task on the previous
level."

Both the paper's mapping algorithms live here:

- **NFDT-DC** (Next-Fit Decreasing Time with DB constraints): place the
  next task (in non-increasing time) on the *current* level if it fits and
  the database-access constraint holds; otherwise close the level and open
  a new one.
- **FFDT-DC** (First-Fit Decreasing Time with DB constraints): try every
  open level in order; open a new one only when no level can accommodate
  the task.

Without the DB constraints these are the classical NFDH / FFDH shelf
algorithms with worst-case guarantees of 2 and 17/10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .wmp import MappingTask, WMPInstance


@dataclass
class Level:
    """One shelf of the packing."""

    index: int
    tasks: list[MappingTask] = field(default_factory=list)
    used_width: int = 0

    @property
    def height(self) -> float:
        """Level duration = slowest task on the level."""
        return max((t.est_time for t in self.tasks), default=0.0)

    def region_count(self, region_code: str) -> int:
        """Tasks of one region on this level (DB concurrency)."""
        return sum(1 for t in self.tasks if t.region_code == region_code)


@dataclass(frozen=True)
class PackingResult:
    """Outcome of a level-oriented packing.

    Attributes:
        algorithm: "NFDT-DC" or "FFDT-DC".
        levels: the shelves in bottom-to-top order.
        instance: the packed instance.
    """

    algorithm: str
    levels: list[Level]
    instance: WMPInstance

    @property
    def makespan_estimate(self) -> float:
        """Packing height: sum of level heights (the strict-levels model)."""
        return sum(lv.height for lv in self.levels)

    @property
    def n_levels(self) -> int:
        """Number of shelves opened."""
        return len(self.levels)

    def ordered_tasks(self) -> list[tuple[MappingTask, int]]:
        """(task, level) pairs in submission order for Slurm."""
        return [(t, lv.index) for lv in self.levels for t in lv.tasks]

    def validate(self) -> None:
        """Check width, DB caps and task conservation."""
        seen = set()
        for lv in self.levels:
            if lv.used_width > self.instance.machine_width:
                raise AssertionError(f"level {lv.index} over width")
            per_region: dict[str, int] = {}
            for t in lv.tasks:
                per_region[t.region_code] = per_region.get(t.region_code, 0) + 1
                if t.task_id in seen:
                    raise AssertionError(f"duplicate task {t.task_id}")
                seen.add(t.task_id)
            for code, n in per_region.items():
                cap = self.instance.db_caps.get(code)
                if cap is not None and n > cap:
                    raise AssertionError(
                        f"level {lv.index}: {code} exceeds DB cap")
        if len(seen) != len(self.instance.tasks):
            raise AssertionError("packing lost or invented tasks")


def _fits(level: Level, task: MappingTask, instance: WMPInstance) -> bool:
    if level.used_width + task.n_nodes > instance.machine_width:
        return False
    cap = instance.db_caps.get(task.region_code)
    if cap is not None and level.region_count(task.region_code) >= cap:
        return False
    return True


def _decreasing_time(tasks: list[MappingTask]) -> list[MappingTask]:
    # Stable tie-break on id keeps packings deterministic.
    return sorted(tasks, key=lambda t: (-t.est_time, t.task_id))


def pack_nfdt_dc(instance: WMPInstance) -> PackingResult:
    """Next-Fit Decreasing Time with database constraints."""
    levels: list[Level] = [Level(0)]
    for task in _decreasing_time(instance.tasks):
        current = levels[-1]
        if not _fits(current, task, instance) and current.tasks:
            levels.append(Level(len(levels)))
            current = levels[-1]
        if not _fits(current, task, instance):
            raise AssertionError(
                f"{task.task_id} cannot fit an empty level")
        current.tasks.append(task)
        current.used_width += task.n_nodes
    result = PackingResult("NFDT-DC", levels, instance)
    result.validate()
    return result


def pack_ffdt_dc(instance: WMPInstance) -> PackingResult:
    """First-Fit Decreasing Time with database constraints."""
    levels: list[Level] = []
    for task in _decreasing_time(instance.tasks):
        placed = False
        for level in levels:
            if _fits(level, task, instance):
                level.tasks.append(task)
                level.used_width += task.n_nodes
                placed = True
                break
        if not placed:
            level = Level(len(levels))
            if not _fits(level, task, instance):
                raise AssertionError(
                    f"{task.task_id} cannot fit an empty level")
            level.tasks.append(task)
            level.used_width += task.n_nodes
            levels.append(level)
    result = PackingResult("FFDT-DC", levels, instance)
    result.validate()
    return result


def packing_quality(result: PackingResult) -> float:
    """Makespan estimate over the strip-packing lower bound (>= 1)."""
    lb = result.instance.lower_bound()
    return result.makespan_estimate / lb if lb > 0 else 1.0
