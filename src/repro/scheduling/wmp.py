"""The Workflow Mapping Problem (WMP) and its DB-constrained variant.

Section V: workflows are 3-level hierarchies regions -> cells -> replicates;
the atomic job is a <cell, region> task T[c, r] with a known processor
requirement p(T[c, r]) and empirical mean running time t(T[c, r]).  The
mapping problem orders these tasks for Slurm so as to minimise overall
completion time; it is NP-hard (2-D bin packing reduces to it: a rectangle's
width is the processor count, its height the running time).  DB-WMP adds
the constraint that at most B(T[r]) tasks of a region run simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.costmodel import CostModel
from ..cluster.machines import BRIDGES, ClusterSpec
from ..synthpop.regions import ALL_CODES
from .categories import node_category


@dataclass(frozen=True, slots=True)
class MappingTask:
    """One T[c, r] task of the mapping problem.

    Attributes:
        region_code: region r.
        cell: cell index c.
        n_nodes: p(T[c, r]) — whole compute nodes (the paper fixes this per
            task and "intentionally avoided using partial nodes").
        est_time: t(T[c, r]) — empirical mean runtime in seconds.
        scenario: intervention scenario (affects est_time).
    """

    region_code: str
    cell: int
    n_nodes: int
    est_time: float
    scenario: str = "base"

    @property
    def task_id(self) -> str:
        """Unique job label."""
        return f"{self.region_code}-c{self.cell}"

    @property
    def area(self) -> float:
        """Node-seconds footprint (the 2-D bin-packing rectangle area)."""
        return self.n_nodes * self.est_time


@dataclass(frozen=True)
class WMPInstance:
    """A DB-WMP instance: tasks, machine width, and per-region DB caps."""

    tasks: list[MappingTask]
    machine_width: int
    db_caps: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for t in self.tasks:
            if t.n_nodes > self.machine_width:
                raise ValueError(f"{t.task_id} wider than the machine")
            if t.est_time <= 0:
                raise ValueError(f"{t.task_id} has non-positive time")

    @property
    def total_area(self) -> float:
        """Sum of task areas (node-seconds)."""
        return sum(t.area for t in self.tasks)

    @property
    def max_time(self) -> float:
        """Tallest task."""
        return max((t.est_time for t in self.tasks), default=0.0)

    def lower_bound(self) -> float:
        """Classical strip-packing lower bound on the makespan:
        max(total area / width, tallest task)."""
        return max(self.total_area / self.machine_width, self.max_time)

    def region_tasks(self, region_code: str) -> list[MappingTask]:
        """The region set RS(r) (Step 1 of the mapping heuristic)."""
        return [t for t in self.tasks if t.region_code == region_code]


def make_nightly_instance(
    *,
    cells_per_region: int = 12,
    replicates: int = 15,
    cost_model: CostModel | None = None,
    cluster: ClusterSpec = BRIDGES,
    regions: tuple[str, ...] = ALL_CODES,
    scenario: str = "base",
    db_cap: int = 16,
    db_nodes_reserved: bool = True,
    machine_width: int | None = None,
    seed: int = 0,
) -> WMPInstance:
    """Build a realistic nightly DB-WMP instance.

    One task per (cell, replicate, region) — a prediction night with the
    Table I design (12 cells x 15 replicates x 51 regions) yields the
    paper's 9,180 simulations.  Node counts come from the small/medium/
    large categorisation; runtimes are drawn from the cost model (the
    Figure 8 variance).  Per Assumption 3, the DB cap is per region.

    Args:
        cells_per_region: cells in tonight's design (12 for prediction,
            up to 300 for calibration workflows).
        replicates: replicates per cell (15 prediction, 1 calibration).
        cost_model: runtime/memory oracle (defaults to one on ``cluster``).
        cluster: the remote machine.
        regions: regions to include.
        scenario: intervention scenario for runtimes.
        db_cap: max simultaneous DB connections (jobs) per region.
        db_nodes_reserved: whether one node per region is set aside for the
            population database (reduces the schedulable width).
        machine_width: override the schedulable width (region-specific
            nights run on a right-sized sub-allocation).
        seed: RNG seed for runtime draws.
    """
    cm = cost_model or CostModel(cluster)
    rng = np.random.default_rng(seed)
    tasks: list[MappingTask] = []
    for code in regions:
        nodes = node_category(code)
        for cell in range(cells_per_region):
            for rep in range(replicates):
                est = cm.sample_runtime(code, nodes, rng, scenario=scenario)
                tasks.append(MappingTask(
                    region_code=code, cell=cell * replicates + rep,
                    n_nodes=nodes, est_time=est.runtime_seconds,
                    scenario=scenario))
    if machine_width is None:
        machine_width = cluster.n_nodes - (
            len(regions) if db_nodes_reserved else 0)
    return WMPInstance(
        tasks=tasks,
        machine_width=machine_width,
        db_caps={code: db_cap for code in regions},
    )
