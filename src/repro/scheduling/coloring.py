"""The r-relaxed coloring problem (Section V).

"We are given a graph G(V, E).  Edges represent conflicts, and vertices
represent tasks.  We are given a number r.  The r-relaxed-coloring is to
assign a color to each node in the graph such that if a node v gets color
c[v] then no more than r of its neighbors can get the color c[v]."

r = 1 recovers classical proper coloring (no neighbour may share a colour
beyond the allowance; with r interpreted as "fewer than r same-coloured
neighbours permitted", r = 1 forbids any).  We implement a greedy
first-feasible-colour heuristic, a validator, and the region-decomposition
observation the paper exploits: after splitting databases per region the
conflict graph is a disjoint union of cliques, for which greedy colouring
is optimal (ceil(clique size / r) colours).
"""

from __future__ import annotations

import networkx as nx


def validate_relaxed_coloring(
    graph: nx.Graph, colors: dict, r: int
) -> bool:
    """Check the r-relaxed property: every vertex has at most ``r - 1``...

    Following the paper's statement "no more than r of its neighbors can
    get the color c[v]" literally: for every vertex v, the number of
    neighbours sharing v's colour must be <= r, with r = 1 reducing to a
    relaxation where one same-coloured neighbour is tolerated *unless* the
    classical reading is intended.  We adopt the strict classical limit:
    at most ``r - 1`` same-coloured neighbours, so r = 1 is proper coloring
    (matching "If r = 1, we get the classical coloring problem").
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    for v in graph.nodes:
        same = sum(1 for u in graph.neighbors(v) if colors[u] == colors[v])
        if same > r - 1:
            return False
    return True


def greedy_relaxed_coloring(graph: nx.Graph, r: int) -> dict:
    """Greedy r-relaxed coloring: each vertex takes the smallest colour
    that keeps the relaxed property for itself and its neighbours.

    Vertices are processed in decreasing-degree order (the standard greedy
    improvement).  Always returns a valid colouring.
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    colors: dict = {}
    order = sorted(graph.nodes, key=lambda v: -graph.degree[v])
    for v in order:
        c = 0
        while True:
            # v may join colour c if it gains at most r-1 same-coloured
            # neighbours AND no already-coloured neighbour is pushed over
            # its own budget.
            same_neighbors = [
                u for u in graph.neighbors(v)
                if u in colors and colors[u] == c
            ]
            ok = len(same_neighbors) <= r - 1
            if ok:
                for u in same_neighbors:
                    u_same = sum(
                        1 for w in graph.neighbors(u)
                        if w in colors and colors[w] == c
                    )
                    if u_same + 1 > r - 1:
                        ok = False
                        break
            if ok:
                colors[v] = c
                break
            c += 1
    return colors


def clique_colors_needed(clique_size: int, r: int) -> int:
    """Optimal colour count for a clique under r-relaxation.

    In a clique every pair conflicts, so a colour class may hold at most r
    vertices (each sees the other r - 1).  Hence ceil(n / r) colours.
    """
    if clique_size < 0 or r < 1:
        raise ValueError("invalid arguments")
    return -(-clique_size // r)


def region_conflict_graph(
    region_sizes: dict[str, int]
) -> nx.Graph:
    """The paper's decomposed conflict graph: one clique per region.

    "There is no edge between the subset, and the graph within each subset
    is a complete graph."  Node labels are ``(region, cell)``.
    """
    g = nx.Graph()
    for region, n in region_sizes.items():
        members = [(region, i) for i in range(n)]
        g.add_nodes_from(members)
        g.add_edges_from(
            (members[i], members[j])
            for i in range(n) for j in range(i + 1, n))
    return g


def colors_to_waves(colors: dict) -> list[list]:
    """Group tasks by colour: each colour class is a schedulable wave."""
    waves: dict[int, list] = {}
    for node, c in colors.items():
        waves.setdefault(c, []).append(node)
    return [waves[c] for c in sorted(waves)]


def schedule_waves_makespan(
    waves: list[list], task_times: dict, *,
    machine_width: int, task_nodes: dict,
) -> float:
    """Makespan when colour classes execute as sequential waves.

    Within a wave tasks are concurrent if they fit the machine width; a
    wave's duration is driven by its tallest tasks packed greedily.
    """
    total = 0.0
    for wave in waves:
        shelf_used = 0
        shelf_height = 0.0
        wave_time = 0.0
        for node in sorted(wave, key=lambda n: -task_times[n]):
            w = task_nodes[node]
            if shelf_used + w > machine_width:
                wave_time += shelf_height
                shelf_used, shelf_height = 0, 0.0
            shelf_used += w
            shelf_height = max(shelf_height, task_times[node])
        wave_time += shelf_height
        total += wave_time
    return total
