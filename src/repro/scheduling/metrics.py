"""Scheduling metrics and the Figure 9 utilization experiment.

EC — the paper's empirical efficiency — is "the ratio of the total time
used by all processors as they were computing divided by the product of the
total processors and the time when the last task was completed"; that is
exactly :attr:`repro.cluster.slurm.ScheduleResult.utilization`.

This module executes packed workloads on the Slurm simulator and collects
the utilization distributions the paper plots as CDFs: FFDT-DC reaches a
~96% median; the initial NFDT-DC runs landed between 44% and 56%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.machines import BRIDGES, ClusterSpec
from ..cluster.slurm import Job, ScheduleResult, SlurmSimulator
from ..synthpop.regions import ALL_CODES
from .levels import PackingResult, pack_ffdt_dc, pack_nfdt_dc
from .wmp import make_nightly_instance

#: Execution policy matching each mapping algorithm's level semantics.
EXECUTION_POLICY: dict[str, str] = {
    "NFDT-DC": "levels",
    "FFDT-DC": "backfill",
}


def jobs_from_packing(result: PackingResult) -> list[Job]:
    """Convert a packing into the ordered Slurm job array."""
    return [
        Job(
            job_id=task.task_id,
            region_code=task.region_code,
            n_nodes=task.n_nodes,
            runtime=task.est_time,
            level=level,
        )
        for task, level in result.ordered_tasks()
    ]


def execute_packing(
    result: PackingResult,
    *,
    cluster: ClusterSpec = BRIDGES,
    reserved_nodes: int | None = None,
    metrics=None,
) -> ScheduleResult:
    """Run a packed workload on the Slurm simulator.

    One node per region is reserved for its population database (matching
    the instance's width reduction) unless overridden.  ``metrics``
    (a :class:`~repro.obs.registry.MetricsRegistry`) receives the
    simulator's ``slurm.*`` accounting when given.
    """
    instance = result.instance
    if reserved_nodes is None:
        reserved_nodes = cluster.n_nodes - instance.machine_width
    sim = SlurmSimulator(
        cluster,
        db_caps=instance.db_caps,
        reserved_nodes=reserved_nodes,
        metrics=metrics,
    )
    policy = EXECUTION_POLICY[result.algorithm]
    return sim.run(jobs_from_packing(result), policy=policy)


@dataclass(frozen=True, slots=True)
class UtilizationSample:
    """Utilization of one workflow night under one algorithm."""

    algorithm: str
    night: int
    utilization: float
    makespan_hours: float
    n_jobs: int


def utilization_experiment(
    *,
    n_nights: int,
    algorithms: tuple[str, ...] = ("NFDT-DC", "FFDT-DC"),
    cells_per_region: int = 12,
    replicates: int = 15,
    regions: tuple[str, ...] = ALL_CODES,
    cluster: ClusterSpec = BRIDGES,
    machine_width: int | None = None,
    db_cap: int = 16,
    seed: int = 0,
) -> list[UtilizationSample]:
    """Replay ``n_nights`` of workflows under each mapping algorithm.

    Each night draws fresh stochastic runtimes (as real nights would);
    both algorithms pack and execute the *same* task set per night.
    Region-specific nights (the Figure 9 right panel, Virginia-only) pass
    a narrower ``machine_width`` — utilization is measured against the
    *allocated* nodes, and single-region nights run on right-sized
    sub-allocations.
    """
    packers = {"NFDT-DC": pack_nfdt_dc, "FFDT-DC": pack_ffdt_dc}
    samples: list[UtilizationSample] = []
    for night in range(n_nights):
        instance = make_nightly_instance(
            cells_per_region=cells_per_region,
            replicates=replicates,
            regions=regions,
            cluster=cluster,
            machine_width=machine_width,
            db_cap=db_cap,
            seed=seed + night,
        )
        for algo in algorithms:
            packed = packers[algo](instance)
            outcome = execute_packing(packed, cluster=cluster)
            samples.append(UtilizationSample(
                algorithm=algo,
                night=night,
                utilization=outcome.utilization,
                makespan_hours=outcome.makespan / 3600.0,
                n_jobs=len(outcome.records),
            ))
    return samples


def utilization_cdf(values: list[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF points (x sorted, F(x)) for the Figure 9 plots."""
    x = np.sort(np.asarray(values, dtype=np.float64))
    f = np.arange(1, x.size + 1) / x.size
    return x, f


def median_utilization(samples: list[UtilizationSample],
                       algorithm: str) -> float:
    """Median utilization of one algorithm across nights."""
    vals = [s.utilization for s in samples if s.algorithm == algorithm]
    if not vals:
        raise ValueError(f"no samples for {algorithm}")
    return float(np.median(vals))
