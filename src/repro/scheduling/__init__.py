"""Job mapping and scheduling heuristics (paper Section V)."""

from .categories import (
    LARGE_NODES,
    MEDIUM_NODES,
    SMALL_NODES,
    category_name,
    category_table,
    node_category,
)
from .coloring import (
    clique_colors_needed,
    colors_to_waves,
    greedy_relaxed_coloring,
    region_conflict_graph,
    schedule_waves_makespan,
    validate_relaxed_coloring,
)
from .levels import (
    Level,
    PackingResult,
    pack_ffdt_dc,
    pack_nfdt_dc,
    packing_quality,
)
from .metrics import (
    UtilizationSample,
    execute_packing,
    jobs_from_packing,
    median_utilization,
    utilization_cdf,
    utilization_experiment,
)
from .wmp import MappingTask, WMPInstance, make_nightly_instance

__all__ = [
    "LARGE_NODES",
    "Level",
    "MEDIUM_NODES",
    "MappingTask",
    "PackingResult",
    "SMALL_NODES",
    "UtilizationSample",
    "WMPInstance",
    "category_name",
    "category_table",
    "clique_colors_needed",
    "colors_to_waves",
    "execute_packing",
    "greedy_relaxed_coloring",
    "jobs_from_packing",
    "make_nightly_instance",
    "median_utilization",
    "node_category",
    "pack_ffdt_dc",
    "pack_nfdt_dc",
    "packing_quality",
    "region_conflict_graph",
    "schedule_waves_makespan",
    "utilization_cdf",
    "utilization_experiment",
    "validate_relaxed_coloring",
]
