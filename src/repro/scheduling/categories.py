"""Region node-count categories (Section VI).

"For simplicity, we therefore divided the 51 regions (networks) into 3
categories: small (2 compute nodes), medium (4), and large (6).  With these
assignments, we were able to guarantee that the jobs have sufficient memory
to complete even the complex intervention scenarios."

The category is derived from the cost model's worst-case memory requirement
and snapped to the paper's {2, 4, 6} sizes.
"""

from __future__ import annotations

from ..cluster.costmodel import CostModel
from ..synthpop.regions import Region, get_region

SMALL_NODES: int = 2
MEDIUM_NODES: int = 4
LARGE_NODES: int = 6

_CATEGORY_CACHE: dict[str, int] = {}


def node_category(
    region: Region | str, cost_model: CostModel | None = None
) -> int:
    """Compute nodes allocated to a region's jobs (2, 4 or 6)."""
    if isinstance(region, str):
        region = get_region(region)
    if region.code in _CATEGORY_CACHE and cost_model is None:
        return _CATEGORY_CACHE[region.code]
    cm = cost_model or CostModel()
    need = cm.min_nodes(region)
    if need <= SMALL_NODES:
        cat = SMALL_NODES
    elif need <= MEDIUM_NODES:
        cat = MEDIUM_NODES
    else:
        cat = LARGE_NODES
    if cost_model is None:
        _CATEGORY_CACHE[region.code] = cat
    return cat


def category_name(n_nodes: int) -> str:
    """Human label for a category size."""
    return {SMALL_NODES: "small", MEDIUM_NODES: "medium",
            LARGE_NODES: "large"}.get(n_nodes, f"{n_nodes}-node")


def category_table() -> dict[str, list[str]]:
    """Mapping category name -> region codes, for reporting."""
    from ..synthpop.regions import ALL_CODES

    out: dict[str, list[str]] = {"small": [], "medium": [], "large": []}
    for code in ALL_CODES:
        out[category_name(node_category(code))].append(code)
    return out
