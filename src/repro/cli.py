"""Command-line interface to the reproduction.

Subcommands mirror the operational steps of the paper's pipeline::

    repro info                       # regions, categories, machine specs
    repro synth VA --scale 1e-3 -o out/       # build population + network
    repro simulate VA --days 120 --tau 0.22   # run EpiHiper for one region
    repro calibrate VA --cells 30 --days 80   # case-study-3 calibration
    repro night prediction                    # orchestrate a nightly cycle
    repro store stats                         # result-store maintenance
    repro plane stats                         # shared-memory asset plane
    repro trace summarize                     # where did the night go?
    repro chaos run VA --inject worker.crash:times=1   # fault drill
    repro serve --port 8377                   # always-on scenario service
    repro submit VT --tau 0.22 --days 60      # ask the running service
    repro surrogate train                     # fit the emulator fast path

``serve`` runs the scenario service plane: a bounded priority queue with
request coalescing (identical scenarios share one computation) in front
of the supervised, store-memoized fan-out, behind a JSON HTTP API.
``submit`` is its client.  ``serve --surrogate`` puts the trained
emulator (``repro surrogate train``) in front of the queue: confident
repeat-family scenarios are answered immediately with uncertainty bands
(``source: "surrogate"``), everything else runs exactly and feeds the
next retrain.  Commands that can lose work to faults —
``simulate --inject``, ``night`` when transfers exhaust retries,
``chaos run``, ``submit`` whose request fails — exit with code 4
(quarantined) so schedulers can tell partial loss from hard failure.

``chaos run`` executes a batch twice — clean, then under an injected
:class:`~repro.resilience.faults.FaultPlan` with supervised retries — and
verifies the surviving results are bit-identical to the clean run's
(recovery re-enters the same RNG streams).  ``night --degrade`` sheds the
lowest-priority replicates when the projected makespan blows the window.

``simulate``, ``calibrate`` and ``night`` are cached through the
content-addressed result store by default (``--no-cache`` bypasses it) and
journal to a JSONL run ledger with ``--ledger``; ``night --resume`` replays
the ledger and re-executes only the instances it does not record.

The same three commands stream a span/metrics trace to a JSONL file
(``--trace PATH``, default ``REPRO_TRACE_PATH`` or
``~/.cache/repro/trace.jsonl``; ``--no-trace`` keeps it in memory only).
``repro trace summarize`` renders the per-night report — engine phase
breakdown, workflow timeline, store hit rates, transfer volumes — and
``repro trace export`` emits the JSON form.

Run ``python -m repro.cli <cmd> -h`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

#: Cache-key namespace for the ``simulate`` command's summary payload
#: (confirmed + deaths series, attack rate, peak day).
SIMULATE_NAMESPACE = "simulate-summary/v1"

#: Exit code for "work was quarantined / lost to faults": distinct from
#: 1 (domain failure, e.g. blown window or mismatch) and 2 (bad usage),
#: so scripted callers can tell "ran but gave up on some work" apart.
EXIT_QUARANTINED = 4


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    """The shared caching / journaling options."""
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the result store (and ledger-based resume)")
    p.add_argument("--resume", action="store_true",
                   help="reuse completed work: for 'night', replay the "
                        "ledger and re-execute only missing instances; for "
                        "'simulate'/'calibrate' this is the default "
                        "whenever caching is enabled")
    p.add_argument("--ledger", metavar="PATH",
                   help="append run events to this JSONL journal")
    p.add_argument("--store-dir", metavar="DIR",
                   help="result-store directory (default REPRO_STORE_DIR "
                        "or ~/.cache/repro/store)")


def _resolve_store(args: argparse.Namespace):
    """The store implied by the flags (None when caching is off)."""
    if args.no_cache:
        if args.resume:
            raise SystemExit("--resume and --no-cache are contradictory")
        return None
    from .store import ContentStore, default_store

    if args.store_dir:
        return ContentStore(Path(args.store_dir))
    return default_store()


def _resolve_ledger(args: argparse.Namespace):
    """The run ledger implied by the flags (None when not journaling)."""
    if not args.ledger:
        return None
    from .store import RunLedger

    return RunLedger(Path(args.ledger))


def _resolve_checkpoint(args: argparse.Namespace, store, *,
                        salt: str | None = None):
    """The checkpoint plan ``--checkpoint-every`` implies (None = off).

    Snapshots ride the result store's CAS (``checkpoint/v1`` family), so
    the plan needs a store; heartbeats land in the store-adjacent lease
    table the shard fleet shares.
    """
    every = int(getattr(args, "checkpoint_every", 0) or 0)
    if every <= 0:
        return None
    if store is None:
        raise SystemExit(
            "--checkpoint-every needs the result store (drop --no-cache)")
    from .checkpoint import CheckpointPlan
    from .service.shard import lease_dir

    return CheckpointPlan(
        store_root=str(store.root), every=every, salt=salt,
        lease_root=str(lease_dir(store.root)),
        ledger_path=getattr(args, "ledger", None) or None)


def _add_trace_flags(p: argparse.ArgumentParser) -> None:
    """The shared tracing options."""
    p.add_argument("--trace", metavar="PATH",
                   help="write the span/metrics trace to this JSONL file "
                        "(default REPRO_TRACE_PATH or "
                        "~/.cache/repro/trace.jsonl)")
    p.add_argument("--no-trace", action="store_true",
                   help="keep the trace in memory only, write no file")


def _resolve_tracer(args: argparse.Namespace, run_id: str):
    """The tracer implied by the flags (always a live tracer; with
    ``--no-trace`` it records in memory without touching disk)."""
    from .obs import Tracer, default_trace_path

    if args.no_trace:
        return Tracer(None, run_id=run_id)
    path = Path(args.trace) if args.trace else default_trace_path()
    return Tracer(path, run_id=run_id)


def _add_plane_flags(p: argparse.ArgumentParser) -> None:
    """The shared-memory population-plane options."""
    p.add_argument("--plane", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="share region asset bundles across workers through "
                        "the shared-memory population plane (default: on "
                        "when REPRO_PLANE is set; --no-plane forces off)")
    p.add_argument("--plane-dir", metavar="DIR",
                   help="plane coordination directory (default "
                        "REPRO_PLANE_DIR or a per-user temp dir)")


def _enable_plane(args: argparse.Namespace) -> bool:
    """Apply the plane flags to the environment; True when active.

    Pool workers and service shards inherit the decision through
    ``REPRO_PLANE`` / ``REPRO_PLANE_DIR``, so this must run before any
    child process is spawned.
    """
    import os

    from .plane import plane_enabled

    if getattr(args, "plane_dir", None):
        os.environ["REPRO_PLANE_DIR"] = args.plane_dir
    plane = getattr(args, "plane", None)
    if plane is None:
        return plane_enabled()
    if plane:
        os.environ["REPRO_PLANE"] = "1"
    else:
        os.environ.pop("REPRO_PLANE", None)
    return bool(plane)


def _fmt_bytes(n: int) -> str:
    """``141152`` -> ``'137.8 KiB'`` (stats output)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (f"{value:,.0f} {unit}" if unit == "B"
                    else f"{value:,.1f} {unit}")
        value /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


def _cmd_info(args: argparse.Namespace) -> int:
    from .cluster.machines import BRIDGES, RIVANNA
    from .scheduling.categories import category_table
    from .synthpop.regions import REGIONS, total_counties, total_population

    print(f"regions: {len(REGIONS)} (50 states + DC), "
          f"{total_counties()} counties, "
          f"{total_population() / 1e6:.0f}M residents")
    cats = category_table()
    for name, codes in cats.items():
        print(f"{name:<7} ({len(codes):>2}): {' '.join(codes)}")
    for spec in (BRIDGES, RIVANNA):
        print(f"{spec.name}: {spec.n_nodes} nodes x "
              f"{spec.cores_per_node} cores = {spec.total_cores} cores")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from .synthpop import build_region_network
    from .synthpop.io import write_network_csv, write_persons_csv

    pop, net = build_region_network(args.region, scale=args.scale,
                                    seed=args.seed)
    print(f"{args.region}: {pop.size:,} persons, {net.n_edges:,} edges, "
          f"mean degree {net.mean_degree():.1f}")
    if args.output:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        p = out / f"{args.region.lower()}_persons.csv"
        e = out / f"{args.region.lower()}_network.csv"
        write_persons_csv(pop, p)
        write_network_csv(net, e)
        print(f"wrote {p} and {e}")
    return 0


def _simulate_params(args: argparse.Namespace) -> dict:
    params = {"TAU": args.tau, "SYMP": args.symp, "backend": args.backend}
    if args.sh_compliance is not None:
        params["SH_COMPLIANCE"] = args.sh_compliance
    if args.vhi_compliance is not None:
        params["VHI_COMPLIANCE"] = args.vhi_compliance
    return params


def _cmd_simulate_replicates(args: argparse.Namespace) -> int:
    """``simulate --replicates N``: one batched ensemble, N RNG streams.

    Replicates share region assets and horizon, so they form one batch
    group and ride the K-lane vectorized kernel via the standard
    memoized fan-out — each replicate still lands in the store under its
    own instance key, bit-identical to a solo run with the same seed.
    """
    import numpy as np

    from .core.parallel import InstanceSpec
    from .obs import MetricsRegistry
    from .store.memo import run_instances_memoized

    store = _resolve_store(args)
    ledger = _resolve_ledger(args)
    params = _simulate_params(args)
    specs = [
        InstanceSpec(
            region_code=args.region, params=params, n_days=args.days,
            scale=args.scale, seed=args.seed + r,
            label=f"simulate-{args.region}-r{r}", asset_seed=args.seed)
        for r in range(args.replicates)
    ]
    reg = MetricsRegistry()
    outcomes = run_instances_memoized(
        specs, store=store, ledger=ledger, parallel=False, registry=reg,
        checkpoint=_resolve_checkpoint(args, store))
    rates = np.array([o.attack_rate for o in outcomes])
    finals = [int(o.confirmed[-1]) for o in outcomes]
    print(f"{args.region}: {len(outcomes)} replicates, "
          f"attack {rates.mean():.1%} (min {rates.min():.1%}, "
          f"max {rates.max():.1%}), "
          f"confirmed {min(finals):,}..{max(finals):,}")
    print(f"batch: size={int(reg.value('batch.size'))} "
          f"groups={int(reg.value('batch.groups'))} "
          f"hits={int(reg.value('memo.hits'))} "
          f"misses={int(reg.value('memo.misses'))}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    from .core.parallel import InstanceSpec
    from .store.keys import instance_key

    _enable_plane(args)
    if args.replicates > 1:
        return _cmd_simulate_replicates(args)
    store = _resolve_store(args)
    ledger = _resolve_ledger(args)
    params = _simulate_params(args)
    spec = InstanceSpec(
        region_code=args.region, params=params, n_days=args.days,
        scale=args.scale, seed=args.seed,
        label=f"simulate-{args.region}", asset_seed=args.seed)
    key = instance_key(spec, namespace=SIMULATE_NAMESPACE)

    from .obs import MetricsRegistry

    reg = MetricsRegistry()
    tracer = _resolve_tracer(args, run_id=f"simulate:{args.region}")
    with tracer, tracer.span(f"simulate:{args.region}", days=args.days,
                             seed=args.seed) as root:
        payload = store.get(key) if store is not None else None
        cached = payload is not None
        root.attrs["cached"] = cached
        if payload is None:
            from .analytics import CONFIRMED, DEATHS, summarize, target_series
            from .core.parallel import _inject_worker_faults, _needs_tick_loop
            from .core.runner import (
                load_region_assets,
                run_instance,
                run_instance_checkpointed,
            )
            from .resilience import FaultPlan, RetryPolicy
            from .resilience.supervisor import supervise_map

            faults = None
            if args.inject:
                try:
                    faults = FaultPlan.parse(args.inject,
                                             seed=args.fault_seed)
                except ValueError as exc:
                    raise SystemExit(f"bad --inject spec: {exc}")
            ck_plan = _resolve_checkpoint(args, store)

            def _run(item, attempt, plan):
                _inject_worker_faults(item, attempt, plan, allow_exit=False)
                with tracer.span("load-assets", attempt=attempt):
                    assets = load_region_assets(args.region, args.scale,
                                                args.seed)
                with tracer.span("run-engine", attempt=attempt):
                    if _needs_tick_loop(ck_plan, plan):
                        result, model = run_instance_checkpointed(
                            item, assets, plan=ck_plan, attempt=attempt,
                            faults=plan, allow_exit=False, metrics=reg)
                    else:
                        result, model = run_instance(assets, params,
                                                     n_days=args.days,
                                                     seed=args.seed)
                reg.merge(result.metrics)
                summary = summarize(result, model)
                return {
                    "confirmed": target_series(summary, model, CONFIRMED),
                    "deaths": target_series(summary, model, DEATHS),
                    "attack_rate": np.asarray(result.attack_rate(model)),
                    "peak_day": np.asarray(result.peak_day(model)),
                }

            retry = RetryPolicy(max_attempts=args.retries,
                                base_delay_s=0.05, seed=args.fault_seed)
            res = supervise_map(_run, [spec], keys=[spec.label],
                                retry=retry, faults=faults, registry=reg,
                                ledger=ledger)
            if res.quarantined:
                for rec in res.quarantined:
                    print(f"quarantined: {rec.describe()}", file=sys.stderr)
                root.attrs["quarantined"] = len(res.quarantined)
                return EXIT_QUARANTINED
            payload = res.results[0]
            if store is not None:
                store.put(key, payload)
            if ck_plan is not None:
                # Terminal result landed: the checkpoint chain is dead
                # weight now — reclaim it.
                ck_plan.manager(metrics=reg).discard(
                    instance_key(spec, salt=ck_plan.salt))
            if ledger is not None:
                ledger.instance_completed(key, label=spec.label)
        elif ledger is not None:
            ledger.cache_hit(key, label=spec.label)
        if store is not None:
            reg.merge(store.metrics)
        tracer.metrics(reg, scope="simulate")

    confirmed = payload["confirmed"]
    deaths = payload["deaths"]
    print(f"{args.region}: attack {float(payload['attack_rate']):.1%}, "
          f"peak day {int(payload['peak_day'])}, "
          f"confirmed {int(confirmed[-1]):,}, deaths {int(deaths[-1]):,}"
          + (" [store hit]" if cached else ""))
    if reg.value("checkpoint.resumed"):
        print(f"checkpoint: resumed {int(reg.value('checkpoint.resumed'))} "
              f"attempt(s), saved "
              f"{int(reg.value('checkpoint.ticks_saved'))} ticks of "
              f"re-execution")
    if args.csv:
        import csv as _csv

        with open(args.csv, "w", newline="") as fh:
            w = _csv.writer(fh)
            w.writerow(["day", "confirmed_cumulative", "deaths_cumulative"])
            for d in range(args.days + 1):
                w.writerow([d, int(confirmed[d]), int(deaths[d])])
        print(f"wrote {args.csv}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .core.calibration_wf import run_calibration_workflow

    from .obs import MetricsRegistry, global_registry

    store = _resolve_store(args)
    ledger = _resolve_ledger(args)
    tracer = _resolve_tracer(args, run_id=f"calibrate:{args.region}")
    with tracer, tracer.span(f"calibrate:{args.region}", cells=args.cells,
                             days=args.days, seed=args.seed):
        cal = run_calibration_workflow(
            args.region, n_cells=args.cells, n_days=args.days,
            scale=args.scale, seed=args.seed,
            mcmc_samples=args.samples, mcmc_burn_in=args.burn_in,
            store=store, ledger=ledger)
        # Memoized batches publish to the process-global registry (pool
        # workers ship theirs home); fold in the store's own counters.
        reg = MetricsRegistry().merge(global_registry())
        if store is not None:
            reg.merge(store.metrics)
        tracer.metrics(reg, scope="calibrate")
    tight = cal.posterior.tightening()
    post = cal.posterior.theta_samples
    print(f"{args.region}: calibrated {args.cells} cells over "
          f"{args.days} days (onset at surveillance day {cal.onset_day})")
    if store is not None:
        s = store.stats
        print(f"  store: {s.hits} hits, {s.misses} misses "
              f"({s.hit_rate:.0%} served)")
    for k, name in enumerate(cal.space.names):
        print(f"  {name:<16} posterior {post[:, k].mean():.3f} "
              f"± {post[:, k].std():.3f}  (tightening {tight[k]:.2f}x)")
    corr = cal.posterior.posterior_correlation()
    print(f"  corr(TAU, SYMP) = {corr[0, 1]:+.3f}")
    return 0


def _night_prebuild_plane(design, seed: int) -> None:
    """Stage the design's region bundles on this node's plane.

    ``orchestrate_night`` models remote execution, so the prebuild is the
    night's node-local side effect: every region in the design gets its
    asset bundle built exactly once into shared memory before the cycle
    starts.  ``REPRO_PLANE_KEEP`` is set so the segments outlive this
    process and serve the workers that later run the design for real;
    ``repro plane gc`` reclaims them.
    """
    import os

    os.environ.setdefault("REPRO_PLANE_KEEP", "1")
    from .core.runner import load_region_assets
    from .obs import MetricsRegistry
    from .params import DEFAULT_SCALE

    reg = MetricsRegistry()
    for region in design.regions:
        load_region_assets(region, DEFAULT_SCALE, seed, metrics=reg)
    built = int(reg.value("plane.built"))
    if int(reg.value("plane.fallbacks")):
        print("plane: shared memory unavailable — bundles built privately, "
              "nothing staged", file=sys.stderr)
        return
    print(f"plane: staged {built} of {design.n_regions} region bundles "
          f"({int(reg.value('plane.bytes')):,} new shared bytes; "
          f"{design.n_regions - built} were already on the plane)")


def _cmd_night(args: argparse.Namespace) -> int:
    from .core.designs import (
        calibration_design,
        economic_design,
        prediction_design,
    )
    from .core.orchestrator import orchestrate_night

    designs = {
        "prediction": prediction_design,
        "economic": economic_design,
        "calibration": lambda: calibration_design(seed=args.seed),
    }
    design = designs[args.workflow]()
    if _enable_plane(args):
        _night_prebuild_plane(design, seed=args.seed)
    if args.resume and args.no_cache:
        raise SystemExit("--resume and --no-cache are contradictory")
    resume = args.resume
    if resume and not args.ledger:
        print("night --resume needs --ledger PATH to replay",
              file=sys.stderr)
        return 2
    faults = None
    if args.inject:
        from .resilience import DEFAULT_RETRY_POLICY, FaultPlan

        try:
            faults = FaultPlan.parse(args.inject, seed=args.fault_seed)
        except ValueError as exc:
            raise SystemExit(f"bad --inject spec: {exc}")
    from .resilience import TransientError

    tracer = _resolve_tracer(args, run_id=f"night:{args.workflow}")
    with tracer:
        try:
            report = orchestrate_night(
                design, algorithm=args.algorithm, seed=args.seed,
                ledger=_resolve_ledger(args), resume=resume, tracer=tracer,
                degrade=args.degrade, min_replicates=args.min_replicates,
                faults=faults,
                retry=DEFAULT_RETRY_POLICY if faults is not None else None,
                checkpoint_every=args.checkpoint_every)
        except TransientError as exc:
            # Retries exhausted on a pipeline leg (e.g. every transfer
            # attempt failed): the night lost work — report it as a
            # quarantine-class failure, not a traceback.
            print(f"night {args.workflow}: gave up after retries — {exc}",
                  file=sys.stderr)
            return EXIT_QUARANTINED
    print(report.summary())
    return 0 if report.fits_window else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.action == "sites":
        from .resilience.faults import FAULT_SITES

        for site, desc in sorted(FAULT_SITES.items()):
            print(f"{site:<18} {desc}")
        return 0

    import numpy as np

    from .core.parallel import InstanceSpec, run_instances, supervise_instances
    from .obs import MetricsRegistry
    from .resilience import FaultPlan, RetryPolicy
    from .store.keys import instance_key

    try:
        plan = FaultPlan.parse(args.inject or [], seed=args.fault_seed)
    except ValueError as exc:
        raise SystemExit(f"bad --inject spec: {exc}")
    retry = RetryPolicy(max_attempts=args.max_attempts,
                        base_delay_s=args.base_delay,
                        timeout_s=args.timeout,
                        seed=args.fault_seed)
    specs = [
        InstanceSpec(
            region_code=args.region,
            params={"TAU": args.tau, "SYMP": 0.65},
            n_days=args.days, scale=args.scale, seed=args.seed + 17 * i,
            label=f"chaos-{args.region}-i{i}", asset_seed=args.seed)
        for i in range(args.instances)
    ]
    parallel = not args.serial

    print(f"plan: {plan.describe() or '(no faults)'}")
    print(f"retry: {args.max_attempts} attempts, "
          f"base delay {args.base_delay}s"
          + (f", timeout {args.timeout}s" if args.timeout else ""))

    baseline = run_instances(specs, parallel=parallel,
                             max_workers=args.workers,
                             registry=MetricsRegistry())

    # The chaos leg (only) checkpoints: the baseline must stay the clean,
    # uninterrupted reference the equivalence check compares against.
    checkpoint = None
    if args.checkpoint_every > 0:
        import tempfile

        from .checkpoint import CheckpointPlan

        ck_root = args.store_dir or tempfile.mkdtemp(prefix="repro-chaos-ck-")
        checkpoint = CheckpointPlan(store_root=str(ck_root),
                                    every=args.checkpoint_every)
        print(f"checkpoint: every {args.checkpoint_every} ticks -> {ck_root}")

    reg = MetricsRegistry()
    ledger = _resolve_ledger(args)
    res = supervise_instances(specs, parallel=parallel,
                              max_workers=args.workers, registry=reg,
                              retry=retry, faults=plan, ledger=ledger,
                              checkpoint=checkpoint)
    print(f"chaos: {res.summary()}")
    for name in sorted(reg.names()):
        if (name.startswith(("faults.", "retry.", "checkpoint."))
                and reg.value(name)):
            print(f"  {name} = {int(reg.value(name))}")

    # Optional store leg: publish the surviving results through a faulted
    # store, so ``cas.corrupt`` plants bad blobs the read path must catch.
    if args.store_dir:
        from .store import ContentStore

        store = ContentStore(Path(args.store_dir), faults=plan)
        keys = [instance_key(s) for s in specs]
        from .store.memo import outcome_from_payload, outcome_payload

        for key, outcome in zip(keys, res.results):
            if outcome is not None:
                store.put(key, outcome_payload(outcome))
        recovered = 0
        for i, (key, outcome) in enumerate(zip(keys, res.results)):
            if outcome is None:
                continue
            payload = store.get(key)
            if payload is None:  # corrupt blob quarantined: re-publish
                store.put(key, outcome_payload(outcome))
                payload = store.get(key)
                recovered += 1
            if payload is None:
                print(f"  store: {key[:12]} unrecoverable")
                return 1
            res.results[i] = outcome_from_payload(specs[i], payload)
        print(f"  store: {int(store.metrics.value('faults.cas.corrupt'))} "
              f"corruptions injected, "
              f"{int(store.metrics.value('store.corrupt'))} detected, "
              f"{recovered} recovered; {store.summary()}")

    # The equivalence check: every spec that survived the chaos run must
    # match the clean run bit for bit.
    mismatched = []
    for clean, chaotic in zip(baseline, res.results):
        if chaotic is None:
            continue
        if (not np.array_equal(clean.confirmed, chaotic.confirmed)
                or clean.attack_rate != chaotic.attack_rate
                or clean.transitions != chaotic.transitions):
            mismatched.append(chaotic.spec.label)
    n_done = len(res.completed())
    if mismatched:
        print(f"equivalence: FAILED — {len(mismatched)}/{n_done} surviving "
              f"results differ from the clean run: "
              f"{', '.join(mismatched)}")
        return 1
    print(f"equivalence: OK — {n_done}/{len(specs)} surviving results "
          f"bit-identical to the clean run"
          + (f" ({len(res.quarantined)} quarantined)"
             if res.quarantined else ""))
    return EXIT_QUARANTINED if res.quarantined else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import default_trace_path, export_json, summarize

    path = Path(args.path) if args.path else default_trace_path()
    if not path.exists():
        print(f"no trace at {path} (run simulate/calibrate/night first, "
              f"or pass a path)", file=sys.stderr)
        return 2
    if args.action == "summarize":
        print(summarize(path).render(top=args.top))
    else:  # export
        body = export_json(path)
        if args.output:
            Path(args.output).write_text(body + "\n", encoding="utf-8")
            print(f"wrote {args.output}")
        else:
            print(body)
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from .store import ContentStore, default_store

    store = (ContentStore(Path(args.dir)) if args.dir
             else default_store())
    if args.action == "stats":
        print(store.summary())
        families = store.family_counts()
        if families:
            print("families:")
            for family, count in families.items():
                print(f"  {family:<24} {count} blobs")
    elif args.action == "gc":
        evicted = store.gc(args.max_bytes)
        print(f"evicted {len(evicted)} blobs, "
              f"{len(store)} remain ({store.total_bytes():,} bytes)")
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} blobs from {store.root}")
    return 0


def _cmd_plane(args: argparse.Namespace) -> int:
    import os

    if getattr(args, "dir", None):
        os.environ["REPRO_PLANE_DIR"] = args.dir

    if args.action == "stats":
        from .plane import plane_stats

        stats = plane_stats()
        state = ("available" if stats["available"]
                 else f"UNAVAILABLE ({stats['disabled_reason']})")
        print(f"plane root: {stats['root']} (shm {state})")
        for seg in stats["segments"]:
            owner = (f"owner {seg['owner_pid']}"
                     + ("" if seg["owner_alive"] else " [dead]"))
            print(f"  {seg['segment']}  {seg['region_code']} "
                  f"scale={seg['scale']:g} seed={seg['seed']} "
                  f"days={seg['truth_days']}  "
                  f"{_fmt_bytes(seg['nbytes'])}  "
                  f"refs={seg['live_refs']}  {owner}")
        print(f"{len(stats['segments'])} segment(s), "
              f"{_fmt_bytes(stats['total_bytes'])} shared")
        return 0

    if args.action == "gc":
        from .plane import plane_gc

        st = plane_gc()
        print(f"reclaimed {st['reclaimed']} of {st['segments']} segment(s) "
              f"({_fmt_bytes(st['reclaimed_bytes'])}), kept {st['kept']} "
              f"with live refs, removed {st['orphans']} orphan segment(s)")
        return 0

    # build: stage bundles that outlive this process (the exit reap is
    # skipped via REPRO_PLANE_KEEP; 'repro plane gc' reclaims them).
    os.environ["REPRO_PLANE"] = "1"
    os.environ.setdefault("REPRO_PLANE_KEEP", "1")
    from .core.runner import load_region_assets
    from .obs import MetricsRegistry

    reg = MetricsRegistry()
    for region in args.regions:
        assets = load_region_assets(region, args.scale, args.seed,
                                    metrics=reg)
        print(f"{region}: {assets.pop.size:,} persons, "
              f"{assets.net.n_edges:,} edges")
    if int(reg.value("plane.fallbacks")):
        print("plane unavailable: bundles were built privately, nothing "
              "staged (check /dev/shm)", file=sys.stderr)
        return 1
    built = int(reg.value("plane.built"))
    print(f"staged {built} new segment(s) "
          f"({int(reg.value('plane.bytes')):,} bytes); "
          f"{len(args.regions) - built} already on the plane. "
          f"Segments persist until 'repro plane gc'.")
    return 0


def _surrogate_store(args: argparse.Namespace):
    """The store a ``repro surrogate`` action operates on."""
    from .store import ContentStore, default_store

    return ContentStore(Path(args.dir)) if args.dir else default_store()


def _cmd_surrogate(args: argparse.Namespace) -> int:
    import numpy as np

    from .surrogate import (
        ModelRegistry,
        build_corpus,
        corpus_ledger_path,
        train_model,
    )

    store = _surrogate_store(args)
    extra = [Path(p) for p in (args.ledger or [])]
    corpus = build_corpus(store, ledgers=extra)
    registry = ModelRegistry(store, retrain_after=args.retrain_after)

    if args.action == "stats":
        info = registry.latest_info()
        stale = registry.stale(len(corpus))
        print(f"corpus: {len(corpus)} usable runs "
              f"(journal {corpus_ledger_path(store)})")
        if info is None:
            print("model: none published")
        else:
            print(f"model: {info['key'][:12]} trained on "
                  f"{info['n_train']} runs "
                  f"(p_eta {info['p_eta']}, seed {info['seed']}, "
                  f"version {info['version']})")
        print(f"stale: {'yes — retrain recommended' if stale else 'no'}")
        return 0

    if args.action == "train":
        if not args.force and not registry.stale(len(corpus)):
            info = registry.latest_info()
            print(f"model {info['key'][:12]} is fresh "
                  f"({info['n_train']} of {len(corpus)} runs trained; "
                  f"--force to retrain anyway)")
            return 0
        try:
            model = train_model(corpus, p_eta=args.p_eta, seed=args.seed)
        except ValueError as exc:
            print(f"cannot train: {exc}", file=sys.stderr)
            return 1
        key = registry.publish(model)
        print(f"trained on {len(corpus)} runs "
              f"({model.space.d_active} active features, "
              f"p_eta {model.basis.p}); published {key[:12]}")
        return 0

    # eval: hold out every k-th run, retrain on the rest, score honestly.
    n = len(corpus)
    test_idx = np.arange(0, n, args.every)
    train_idx = np.setdiff1d(np.arange(n), test_idx)
    if len(train_idx) < 3 or len(test_idx) == 0:
        print(f"cannot eval: corpus of {n} runs is too small to split "
              f"(need >= 4 with --every {args.every})", file=sys.stderr)
        return 1
    try:
        model = train_model(corpus.subset(train_idx), p_eta=args.p_eta,
                            seed=args.seed)
    except ValueError as exc:
        print(f"cannot eval: {exc}", file=sys.stderr)
        return 1
    rel_rmse, coverage, ar_err = [], [], []
    for i in test_idx:
        pred = model.predict_features(corpus.features[i])
        truth = corpus.outputs[i]
        peak = max(float(np.max(np.abs(truth))), 1e-9)
        rel_rmse.append(
            float(np.sqrt(np.mean((pred.mean - truth) ** 2))) / peak)
        lo, hi = pred.bands()
        coverage.append(float(np.mean((truth >= lo) & (truth <= hi))))
        ar_err.append(abs(pred.attack_rate - float(corpus.attack_rates[i])))
    print(f"held-out eval: {len(train_idx)} train / {len(test_idx)} test "
          f"(every {args.every}th run held out)")
    print(f"  trajectory rel. RMSE: mean {np.mean(rel_rmse):.3f}, "
          f"max {np.max(rel_rmse):.3f}")
    print(f"  ~95% band coverage:  mean {np.mean(coverage):.1%}, "
          f"min {np.min(coverage):.1%}")
    print(f"  attack-rate |error|: mean {np.mean(ar_err):.4f}, "
          f"max {np.max(ar_err):.4f}")
    return 0


def _serve_fleet(args: argparse.Namespace) -> int:
    """``serve --shards N``: N worker processes behind one router."""
    from .service import Router, ShardFleet, make_router_server

    if args.surrogate or args.inject:
        raise SystemExit(
            "--shards does not combine with --surrogate/--inject yet")
    store = _resolve_store(args)
    if store is None:
        raise SystemExit(
            "--shards needs the shared result store (drop --no-cache)")
    fleet = ShardFleet(
        store.root, args.shards, host=args.host,
        capacity=args.capacity, aging_every=args.aging_every,
        batch_size=args.batch_size, elastic_max=args.elastic_max,
        max_workers=args.workers, parallel=not args.serial,
        checkpoint_every=args.checkpoint_every,
        plane=_enable_plane(args), plane_dir=args.plane_dir or None)
    fleet.start()
    router = Router.for_fleet(fleet)
    server = make_router_server(router, host=args.host, port=args.port)
    port = server.server_address[1]
    if args.port_file:
        Path(args.port_file).write_text(f"{port}\n", encoding="utf-8")
    shards = ", ".join(f"s{h.index}@{h.address[1]}" for h in fleet.shards
                       if h.address is not None)
    print(f"repro router listening on http://{args.host}:{port} "
          f"({args.shards} shards: {shards})", flush=True)
    import signal

    def _graceful(_sig: int, _frame: object) -> None:
        raise KeyboardInterrupt

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, _graceful)
        except ValueError:  # pragma: no cover - non-main-thread embedding
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupt: draining shards...", flush=True)
    finally:
        server.server_close()
        fleet.stop()
    print("fleet stopped", flush=True)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ScenarioService, make_server

    if args.shards > 1:
        return _serve_fleet(args)
    _enable_plane(args)  # before the pool spawns: workers inherit the env
    store = _resolve_store(args)
    ledger = _resolve_ledger(args)
    tracer = _resolve_tracer(args, run_id="serve")
    faults = None
    if args.inject:
        from .resilience import FaultPlan

        try:
            faults = FaultPlan.parse(args.inject, seed=args.fault_seed)
        except ValueError as exc:
            raise SystemExit(f"bad --inject spec: {exc}")
    retry = None
    if args.max_attempts > 1:
        from .resilience import RetryPolicy

        retry = RetryPolicy(max_attempts=args.max_attempts,
                            base_delay_s=0.05, seed=args.fault_seed)
    surrogate = None
    if args.surrogate:
        if store is None:
            raise SystemExit(
                "--surrogate needs the result store (drop --no-cache)")
        from .surrogate import ModelRegistry, SurrogateGate

        surrogate = SurrogateGate(ModelRegistry(store),
                                  rtol=args.surrogate_rtol)
    service = ScenarioService(
        store=store, ledger=ledger, tracer=tracer,
        capacity=args.capacity, aging_every=args.aging_every,
        batch_size=args.batch_size, max_workers=args.workers,
        parallel=not args.serial, retry=retry, faults=faults,
        surrogate=surrogate, elastic_max=args.elastic_max,
        checkpoint=_resolve_checkpoint(args, store))
    server = make_server(service, host=args.host, port=args.port)
    port = server.server_address[1]
    if args.port_file:
        # Written after bind: a supervisor (or the CI smoke) polls this
        # file to learn the ephemeral port.
        Path(args.port_file).write_text(f"{port}\n", encoding="utf-8")
    service.start()
    print(f"repro service listening on http://{args.host}:{port} "
          f"(capacity={args.capacity}, batch={args.batch_size}, "
          f"cache={'on' if store is not None else 'off'}, "
          f"surrogate={'on' if surrogate is not None else 'off'})",
          flush=True)
    # Backgrounded children of non-interactive shells inherit SIGINT as
    # ignored, so rely on explicit handlers for graceful drain rather
    # than Python's default KeyboardInterrupt wiring.
    import signal

    def _graceful(_sig: int, _frame: object) -> None:
        raise KeyboardInterrupt

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(sig, _graceful)
        except ValueError:  # pragma: no cover - non-main-thread embedding
            pass
    with tracer:
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("interrupt: draining queue...", flush=True)
        finally:
            server.server_close()
            service.stop(drain=True)
    print("service stopped", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import os

    from .service import (
        DEFAULT_PORT,
        DrainingError,
        QuarantinedError,
        QueueFullError,
        ServiceClient,
        ServiceError,
    )

    url = (args.url or os.environ.get("REPRO_SERVICE_URL")
           or f"http://127.0.0.1:{DEFAULT_PORT}")
    params: dict[str, object] = {"TAU": args.tau, "SYMP": args.symp}
    if args.sh_compliance is not None:
        params["SH_COMPLIANCE"] = args.sh_compliance
    if args.vhi_compliance is not None:
        params["VHI_COMPLIANCE"] = args.vhi_compliance
    scenario = {"region": args.region, "params": params, "days": args.days,
                "scale": args.scale, "seed": args.seed,
                "priority": args.priority}
    client = ServiceClient(url)
    try:
        adm = client.submit(scenario)
    except QueueFullError as exc:
        print(f"rejected: queue full, retry after {exc.retry_after_s:.1f}s",
              file=sys.stderr)
        return 3
    except DrainingError as exc:
        print(f"rejected: service draining ({exc})", file=sys.stderr)
        return 3
    except QuarantinedError as exc:
        print(f"quarantined: {exc}", file=sys.stderr)
        return EXIT_QUARANTINED
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    print(f"{adm['id']}: {adm['status']} "
          f"(key {adm['key'][:12]}, depth {adm['depth']})")
    if args.no_wait:
        return 0
    try:
        view = client.wait(adm["id"], timeout_s=args.timeout,
                           poll_s=args.poll)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    if view["state"] == "done":
        result = view["result"]
        confirmed = result["confirmed"]
        source = result.get("source", "exact")
        print(f"{args.region}: attack {float(result['attack_rate']):.1%}, "
              f"confirmed {int(confirmed[-1]):,} "
              f"({view['total_s']:.2f}s, {source}"
              + (", coalesced)" if view.get("coalesced") else ")"))
        if source == "surrogate":
            lo = result["confirmed_lo"]
            hi = result["confirmed_hi"]
            print(f"  ~95% band on final confirmed: "
                  f"[{int(lo[-1]):,}, {int(hi[-1]):,}] "
                  f"(rtol {float(result['rtol']):.3f})")
        return 0
    print(f"{view['state']}: {view.get('error', 'no detail')}",
          file=sys.stderr)
    return EXIT_QUARANTINED


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import os

    from .service import DEFAULT_PORT, ServiceClient, ServiceError

    url = (args.url or os.environ.get("REPRO_SERVICE_URL")
           or f"http://127.0.0.1:{DEFAULT_PORT}")
    client = ServiceClient(url)
    cursor = args.cursor
    shown = 0
    try:
        while True:
            page = client.list(state=args.state, limit=args.limit,
                               cursor=cursor)
            for view in page["scenarios"]:
                line = (f"{view['id']}  {view['state']:<9} "
                        f"key {view['key'][:12]}  prio {view['priority']}")
                if view.get("coalesced"):
                    line += "  (coalesced)"
                if view.get("total_s") is not None:
                    line += f"  {view['total_s']:.2f}s"
                if view.get("error"):
                    line += f"  error: {view['error']}"
                print(line)
                shown += 1
            cursor = page.get("next_cursor")
            if not args.all or not cursor:
                break
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    if cursor:
        print(f"-- more: --cursor {cursor}")
    print(f"{shown} scenario(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable epidemiological workflows (IPDPS 2021 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="regions, categories, machine specs")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("synth", help="build a region's synthetic inputs")
    p.add_argument("region")
    p.add_argument("--scale", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", help="directory for CSV outputs")
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("simulate", help="run EpiHiper for one region")
    p.add_argument("region")
    p.add_argument("--days", type=int, default=120)
    p.add_argument("--scale", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tau", type=float, default=0.18)
    p.add_argument("--symp", type=float, default=0.65)
    p.add_argument("--sh-compliance", type=float)
    p.add_argument("--vhi-compliance", type=float)
    p.add_argument("--backend", choices=("dense", "frontier", "auto"),
                   default="auto",
                   help="transmission kernel (result-identical; A/B timing)")
    p.add_argument("--replicates", type=int, default=1,
                   help="run N replicates (seeds seed..seed+N-1) as one "
                        "batched ensemble; each replicate is cached "
                        "under its own key (default 1)")
    p.add_argument("--csv", help="write the daily series to this file "
                                 "(single-replicate runs only)")
    p.add_argument("--inject", action="append", metavar="SITE[:k=v,...]",
                   help="inject worker faults (see 'repro chaos sites'); "
                        "exit code 4 when the run is quarantined")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="fault-plan + backoff-jitter seed")
    p.add_argument("--retries", type=int, default=1,
                   help="attempts before quarantining the run (default 1)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   metavar="N",
                   help="snapshot in-flight state every N ticks through "
                        "the result store so retries resume instead of "
                        "restarting from tick 0 (default 0 = off; needs "
                        "the store)")
    _add_cache_flags(p)
    _add_trace_flags(p)
    _add_plane_flags(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("calibrate", help="run the calibration workflow")
    p.add_argument("region")
    p.add_argument("--cells", type=int, default=30)
    p.add_argument("--days", type=int, default=80)
    p.add_argument("--scale", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--samples", type=int, default=800)
    p.add_argument("--burn-in", type=int, default=600)
    _add_cache_flags(p)
    _add_trace_flags(p)
    p.set_defaults(func=_cmd_calibrate)

    p = sub.add_parser("night", help="orchestrate one nightly cycle")
    p.add_argument("workflow",
                   choices=("prediction", "economic", "calibration"))
    p.add_argument("--algorithm", default="FFDT-DC",
                   choices=("FFDT-DC", "NFDT-DC"))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--degrade", action="store_true",
                   help="shed lowest-priority replicates (deterministically, "
                        "preserving per-cell coverage) when the projected "
                        "makespan blows the window")
    p.add_argument("--min-replicates", type=int, default=1,
                   help="per-cell coverage floor when degrading (default 1)")
    p.add_argument("--inject", action="append", metavar="SITE[:k=v,...]",
                   help="inject faults (transfer.fail, ledger.torn); "
                        "repeatable — see 'repro chaos sites'")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="fault-plan seed (deterministic firing)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   metavar="N",
                   help="model remote jobs snapshotting every N simulated "
                        "days: the per-task write cost inflates the "
                        "projected makespan before the window-fit check "
                        "(default 0 = off)")
    _add_cache_flags(p)
    _add_trace_flags(p)
    _add_plane_flags(p)
    p.set_defaults(func=_cmd_night)

    p = sub.add_parser(
        "chaos", help="fault-injection drills against the live runtime")
    csub = p.add_subparsers(dest="action", required=True)
    sp = csub.add_parser("sites", help="list the injectable fault sites")
    sp.set_defaults(func=_cmd_chaos)
    sp = csub.add_parser(
        "run",
        help="run a batch clean, re-run it under injected faults with "
             "supervised retries, and verify bit-identical survival")
    sp.add_argument("region")
    sp.add_argument("--inject", action="append", metavar="SITE[:k=v,...]",
                    help="fault rule, e.g. worker.crash:times=1 or "
                         "worker.exception:p=0.3,match=i2; repeatable")
    sp.add_argument("--instances", type=int, default=4)
    sp.add_argument("--days", type=int, default=30)
    sp.add_argument("--scale", type=float, default=1e-3)
    sp.add_argument("--tau", type=float, default=0.18)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--fault-seed", type=int, default=0,
                    help="fault-plan + backoff-jitter seed")
    sp.add_argument("--max-attempts", type=int, default=3)
    sp.add_argument("--base-delay", type=float, default=0.05,
                    help="backoff base delay in seconds")
    sp.add_argument("--timeout", type=float, default=None,
                    help="per-attempt timeout in seconds (pooled runs)")
    sp.add_argument("--workers", type=int, default=None)
    sp.add_argument("--serial", action="store_true",
                    help="in-process execution (worker.crash raises "
                         "instead of killing a pool worker)")
    sp.add_argument("--ledger", metavar="PATH",
                    help="journal quarantines to this JSONL ledger")
    sp.add_argument("--store-dir", metavar="DIR",
                    help="also round-trip surviving results through a "
                         "store at DIR (cas.corrupt plants bad blobs "
                         "the integrity check must catch)")
    sp.add_argument("--checkpoint-every", type=int, default=0,
                    metavar="N",
                    help="checkpoint the chaos leg every N ticks (to "
                         "--store-dir, or a temp store) so "
                         "worker.crash_mid_run drills the crash -> "
                         "resume -> bit-identical path (default 0 = off)")
    sp.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve", help="run the always-on scenario service (HTTP API)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8377,
                   help="TCP port (0 picks an ephemeral one; default 8377)")
    p.add_argument("--port-file", metavar="PATH",
                   help="write the bound port here after listening "
                        "(for supervisors and smoke tests)")
    p.add_argument("--capacity", type=int, default=64,
                   help="max distinct queued scenarios before 429s")
    p.add_argument("--aging-every", type=int, default=8,
                   help="admissions per +1 priority boost of waiting work")
    p.add_argument("--batch-size", type=int, default=4,
                   help="scenarios per supervised fan-out batch")
    p.add_argument("--elastic-max", type=int, default=None,
                   help="let the claimed batch grow with the backlog up "
                        "to this bound (default: fixed --batch-size)")
    p.add_argument("--shards", type=int, default=1,
                   help="run N sharded worker processes behind a router "
                        "(scenarios are sharded by cache-key hash; needs "
                        "the shared result store)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size for each batch")
    p.add_argument("--serial", action="store_true",
                   help="in-process execution (no process pool)")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="per-scenario attempts before a request fails")
    p.add_argument("--inject", action="append", metavar="SITE[:k=v,...]",
                   help="service chaos drill: inject worker faults")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--surrogate", action=argparse.BooleanOptionalAction,
                   default=False,
                   help="answer confident repeat-family scenarios from the "
                        "trained emulator (see 'repro surrogate train'); "
                        "uncertain or out-of-distribution requests still "
                        "run exactly")
    p.add_argument("--surrogate-rtol", type=float, default=0.05,
                   help="relative-uncertainty gate: serve from the "
                        "surrogate only when mean predictive sd / peak "
                        "trajectory is below this (default 0.05)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   metavar="N",
                   help="snapshot in-flight scenarios every N ticks "
                        "through the result store so retries after "
                        "mid-run worker deaths resume instead of "
                        "restarting (default 0 = off; needs the store)")
    _add_cache_flags(p)
    _add_trace_flags(p)
    _add_plane_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a scenario to a running service")
    p.add_argument("region")
    p.add_argument("--days", type=int, default=120)
    p.add_argument("--scale", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tau", type=float, default=0.18)
    p.add_argument("--symp", type=float, default=0.65)
    p.add_argument("--sh-compliance", type=float)
    p.add_argument("--vhi-compliance", type=float)
    p.add_argument("--priority", type=int, default=0,
                   help="larger is more urgent (coalescing joins can "
                        "re-prioritize queued work)")
    p.add_argument("--url",
                   help="service base URL (default REPRO_SERVICE_URL or "
                        "http://127.0.0.1:8377)")
    p.add_argument("--no-wait", action="store_true",
                   help="print the request id and return immediately")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for a terminal state")
    p.add_argument("--poll", type=float, default=0.2,
                   help="poll interval in seconds")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "scenarios", help="inspect a running service's requests")
    scsub = p.add_subparsers(dest="action", required=True)
    sp = scsub.add_parser("list", help="list tracked requests (paginated)")
    sp.add_argument("--state",
                    choices=["queued", "running", "done", "failed",
                             "cancelled"],
                    help="only requests in this state")
    sp.add_argument("--limit", type=int, default=50,
                    help="page size (max 500)")
    sp.add_argument("--cursor",
                    help="resume after this request id (keyset pagination)")
    sp.add_argument("--all", action="store_true",
                    help="follow next_cursor to the end of the registry")
    sp.add_argument("--url",
                    help="service base URL (default REPRO_SERVICE_URL or "
                         "http://127.0.0.1:8377)")
    sp.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("trace", help="summarize or export a run trace")
    tsub = p.add_subparsers(dest="action", required=True)
    sp = tsub.add_parser("summarize", help="per-night text report")
    sp.add_argument("path", nargs="?",
                    help="trace file (default: where the last traced "
                         "command wrote)")
    sp.add_argument("--top", type=int, default=10,
                    help="how many slowest spans to list")
    sp.set_defaults(func=_cmd_trace)
    sp = tsub.add_parser("export", help="JSON export for dashboards")
    sp.add_argument("path", nargs="?",
                    help="trace file (default: where the last traced "
                         "command wrote)")
    sp.add_argument("-o", "--output", help="write JSON here, not stdout")
    sp.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "surrogate",
        help="train, inspect or evaluate the scenario emulator")
    usub = p.add_subparsers(dest="action", required=True)
    for action, desc in (
            ("train", "fit + publish a model over the run corpus"),
            ("stats", "corpus size, latest model, staleness"),
            ("eval", "held-out accuracy of a freshly trained model")):
        sp = usub.add_parser(action, help=desc)
        sp.add_argument("--dir", metavar="DIR",
                        help="store directory (default REPRO_STORE_DIR "
                             "or ~/.cache/repro/store)")
        sp.add_argument("--ledger", action="append", metavar="PATH",
                        help="extra run ledger(s) to replay into the "
                             "corpus (the store's own surrogate journal "
                             "is always included)")
        sp.add_argument("--seed", type=int, default=0,
                        help="training seed (fits are reproducible)")
        sp.add_argument("--p-eta", type=int, default=5,
                        help="output-basis size (default 5)")
        sp.add_argument("--retrain-after", type=int, default=32,
                        help="corpus growth beyond the trained set that "
                             "marks the model stale (default 32)")
        if action == "train":
            sp.add_argument("--force", action="store_true",
                            help="retrain even when the model is fresh")
        if action == "eval":
            sp.add_argument("--every", type=int, default=5,
                            help="hold out every Nth run (default 5)")
        sp.set_defaults(func=_cmd_surrogate)

    p = sub.add_parser("store", help="inspect or maintain the result store")
    ssub = p.add_subparsers(dest="action", required=True)
    for action, desc in (("stats", "blob count, bytes, session counters"),
                         ("gc", "evict least-recently-used blobs"),
                         ("clear", "delete every stored blob")):
        sp = ssub.add_parser(action, help=desc)
        sp.add_argument("--dir", metavar="DIR",
                        help="store directory (default REPRO_STORE_DIR "
                             "or ~/.cache/repro/store)")
        if action == "gc":
            sp.add_argument("--max-bytes", type=int, required=True,
                            help="size bound to evict down to")
        sp.set_defaults(func=_cmd_store)

    p = sub.add_parser(
        "plane", help="inspect or manage the shared-memory population plane")
    psub = p.add_subparsers(dest="action", required=True)
    for action, desc in (
            ("stats", "staged segments, shared bytes, live refs"),
            ("gc", "reclaim unreferenced and orphaned segments"),
            ("build", "pre-stage region bundles that outlive this process")):
        sp = psub.add_parser(action, help=desc)
        sp.add_argument("--dir", metavar="DIR",
                        help="plane coordination directory (default "
                             "REPRO_PLANE_DIR or a per-user temp dir)")
        if action == "build":
            sp.add_argument("regions", nargs="+", metavar="REGION")
            sp.add_argument("--scale", type=float, default=1e-3,
                            help="population scale (default 1e-3, matching "
                                 "'repro simulate')")
            sp.add_argument("--seed", type=int, default=0,
                            help="asset seed (default 0, matching "
                                 "'repro simulate')")
        sp.set_defaults(func=_cmd_plane)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
