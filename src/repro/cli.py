"""Command-line interface to the reproduction.

Subcommands mirror the operational steps of the paper's pipeline::

    repro info                       # regions, categories, machine specs
    repro synth VA --scale 1e-3 -o out/       # build population + network
    repro simulate VA --days 120 --tau 0.22   # run EpiHiper for one region
    repro calibrate VA --cells 30 --days 80   # case-study-3 calibration
    repro night prediction                    # orchestrate a nightly cycle

Run ``python -m repro.cli <cmd> -h`` for per-command options.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_info(args: argparse.Namespace) -> int:
    from .cluster.machines import BRIDGES, RIVANNA
    from .scheduling.categories import category_table
    from .synthpop.regions import REGIONS, total_counties, total_population

    print(f"regions: {len(REGIONS)} (50 states + DC), "
          f"{total_counties()} counties, "
          f"{total_population() / 1e6:.0f}M residents")
    cats = category_table()
    for name, codes in cats.items():
        print(f"{name:<7} ({len(codes):>2}): {' '.join(codes)}")
    for spec in (BRIDGES, RIVANNA):
        print(f"{spec.name}: {spec.n_nodes} nodes x "
              f"{spec.cores_per_node} cores = {spec.total_cores} cores")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    from .synthpop import build_region_network
    from .synthpop.io import write_network_csv, write_persons_csv

    pop, net = build_region_network(args.region, scale=args.scale,
                                    seed=args.seed)
    print(f"{args.region}: {pop.size:,} persons, {net.n_edges:,} edges, "
          f"mean degree {net.mean_degree():.1f}")
    if args.output:
        out = Path(args.output)
        out.mkdir(parents=True, exist_ok=True)
        p = out / f"{args.region.lower()}_persons.csv"
        e = out / f"{args.region.lower()}_network.csv"
        write_persons_csv(pop, p)
        write_network_csv(net, e)
        print(f"wrote {p} and {e}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .analytics import CONFIRMED, DEATHS, summarize, target_series
    from .core.runner import load_region_assets, run_instance

    assets = load_region_assets(args.region, args.scale, args.seed)
    params = {"TAU": args.tau, "SYMP": args.symp, "backend": args.backend}
    if args.sh_compliance is not None:
        params["SH_COMPLIANCE"] = args.sh_compliance
    if args.vhi_compliance is not None:
        params["VHI_COMPLIANCE"] = args.vhi_compliance
    result, model = run_instance(assets, params, n_days=args.days,
                                 seed=args.seed)
    summary = summarize(result, model)
    confirmed = target_series(summary, model, CONFIRMED)
    deaths = target_series(summary, model, DEATHS)
    print(f"{args.region}: attack {result.attack_rate(model):.1%}, "
          f"peak day {result.peak_day(model)}, "
          f"confirmed {confirmed[-1]:,}, deaths {deaths[-1]:,}")
    if args.csv:
        import csv as _csv

        with open(args.csv, "w", newline="") as fh:
            w = _csv.writer(fh)
            w.writerow(["day", "confirmed_cumulative", "deaths_cumulative"])
            for d in range(args.days + 1):
                w.writerow([d, int(confirmed[d]), int(deaths[d])])
        print(f"wrote {args.csv}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .core.calibration_wf import run_calibration_workflow

    cal = run_calibration_workflow(
        args.region, n_cells=args.cells, n_days=args.days,
        scale=args.scale, seed=args.seed,
        mcmc_samples=args.samples, mcmc_burn_in=args.burn_in)
    tight = cal.posterior.tightening()
    post = cal.posterior.theta_samples
    print(f"{args.region}: calibrated {args.cells} cells over "
          f"{args.days} days (onset at surveillance day {cal.onset_day})")
    for k, name in enumerate(cal.space.names):
        print(f"  {name:<16} posterior {post[:, k].mean():.3f} "
              f"± {post[:, k].std():.3f}  (tightening {tight[k]:.2f}x)")
    corr = cal.posterior.posterior_correlation()
    print(f"  corr(TAU, SYMP) = {corr[0, 1]:+.3f}")
    return 0


def _cmd_night(args: argparse.Namespace) -> int:
    from .core.designs import (
        calibration_design,
        economic_design,
        prediction_design,
    )
    from .core.orchestrator import orchestrate_night

    designs = {
        "prediction": prediction_design,
        "economic": economic_design,
        "calibration": lambda: calibration_design(seed=args.seed),
    }
    design = designs[args.workflow]()
    report = orchestrate_night(design, algorithm=args.algorithm,
                               seed=args.seed)
    print(report.summary())
    return 0 if report.fits_window else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scalable epidemiological workflows (IPDPS 2021 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="regions, categories, machine specs")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("synth", help="build a region's synthetic inputs")
    p.add_argument("region")
    p.add_argument("--scale", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", help="directory for CSV outputs")
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("simulate", help="run EpiHiper for one region")
    p.add_argument("region")
    p.add_argument("--days", type=int, default=120)
    p.add_argument("--scale", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tau", type=float, default=0.18)
    p.add_argument("--symp", type=float, default=0.65)
    p.add_argument("--sh-compliance", type=float)
    p.add_argument("--vhi-compliance", type=float)
    p.add_argument("--backend", choices=("dense", "frontier", "auto"),
                   default="auto",
                   help="transmission kernel (result-identical; A/B timing)")
    p.add_argument("--csv", help="write the daily series to this file")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("calibrate", help="run the calibration workflow")
    p.add_argument("region")
    p.add_argument("--cells", type=int, default=30)
    p.add_argument("--days", type=int, default=80)
    p.add_argument("--scale", type=float, default=1e-3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--samples", type=int, default=800)
    p.add_argument("--burn-in", type=int, default=600)
    p.set_defaults(func=_cmd_calibrate)

    p = sub.add_parser("night", help="orchestrate one nightly cycle")
    p.add_argument("workflow",
                   choices=("prediction", "economic", "calibration"))
    p.add_argument("--algorithm", default="FFDT-DC",
                   choices=("FFDT-DC", "NFDT-DC"))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_night)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
