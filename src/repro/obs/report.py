"""Per-night trace reports: where did the window go?

Turns a trace (a JSONL file, a tuple of parsed events, or a live
:class:`~repro.obs.spans.Tracer`) into the report the paper's operators
read every morning: the engine phase breakdown mirroring Figure 7, the
modelled workflow timeline, the top-N slowest spans, store hit rates, and
transfer volumes.  ``repro trace summarize`` renders the text form;
``repro trace export`` emits the JSON form for dashboards.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .registry import MetricsRegistry
from .spans import SpanRecord, Tracer, read_trace

#: The engine phases of the Figure 7 runtime breakdown, in report order.
ENGINE_PHASES: tuple[str, ...] = (
    "interventions", "transmission", "progression")


@dataclass
class TraceSummary:
    """The digested view of one trace."""

    n_events: int
    spans: list[SpanRecord] = field(default_factory=list)
    unfinished: list[dict[str, Any]] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    # -- derived tables --------------------------------------------------------

    def engine_phase_table(self) -> list[tuple[str, float, float]]:
        """``(phase, total_seconds, share)`` rows from ``engine.*_s``.

        Totals come from the merged metrics stream, i.e. the same timer
        observations the legacy ``*_s`` counters report — the two views
        agree by construction.
        """
        totals = {p: float(self.metrics.value(f"engine.{p}_s"))
                  for p in ENGINE_PHASES
                  if f"engine.{p}_s" in self.metrics}
        grand = sum(totals.values())
        return [(p, t, t / grand if grand else 0.0)
                for p, t in sorted(totals.items(),
                                   key=lambda kv: -kv[1])]

    def modelled_tasks(self) -> list[tuple[SpanRecord, float, float]]:
        """``(span, start_s, duration_s)`` rows on the modelled timeline.

        Workflow-task spans are *real* spans (they wrap the action) that
        carry the modelled timeline as ``modelled_start_s``/``modelled_s``
        attributes; purely modelled task spans fall back to their own
        start/wall fields.
        """
        rows = []
        for s in self.spans:
            if not s.name.startswith("task:"):
                continue
            start = float(s.attrs.get("modelled_start_s", s.start_s))
            dur = float(s.attrs.get("modelled_s", s.wall_s))
            rows.append((s, start, dur))
        return rows

    def instances(self) -> list[SpanRecord]:
        """Per-instance spans (one per <cell, region> job of the night)."""
        return [s for s in self.spans if s.name.startswith("instance:")]

    def top_spans(self, n: int = 10) -> list[SpanRecord]:
        """The ``n`` slowest finished real spans by wall time."""
        real = [s for s in self.spans if not s.modelled]
        return sorted(real, key=lambda s: -s.wall_s)[:n]

    # -- renderings ------------------------------------------------------------

    def render(self, top: int = 10) -> str:
        """The ``repro trace summarize`` text report."""
        from ..params import fmt_bytes

        m = self.metrics
        lines = [f"trace: {self.n_events} events, "
                 f"{len(self.spans)} spans"
                 + (f", {len(self.unfinished)} unfinished "
                    f"(partial trace)" if self.unfinished else "")]

        phases = self.engine_phase_table()
        if phases:
            lines.append("")
            lines.append("engine phase breakdown (Fig. 7):")
            lines.append(f"  {'phase':<15} {'total_s':>10} {'share':>7} "
                         f"{'ticks':>7}")
            for name, total, share in phases:
                ticks = m.count(f"engine.{name}_s")
                lines.append(f"  {name:<15} {total:>10.4f} {share:>6.1%} "
                             f"{ticks:>7d}")

        tasks = self.modelled_tasks()
        if tasks:
            lines.append("")
            lines.append("workflow tasks (modelled timeline):")
            lines.append(f"  {'task':<28} {'start_h':>8} {'dur_h':>8}")
            for s, start, dur in sorted(tasks, key=lambda row: row[1]):
                lines.append(
                    f"  {s.name.removeprefix('task:'):<28} "
                    f"{start / 3600:>8.2f} {dur / 3600:>8.2f}")

        inst = self.instances()
        if inst:
            total = sum(s.wall_s for s in inst)
            lines.append("")
            lines.append(f"instances: {len(inst)} "
                         f"(modelled work {total / 3600:.1f} job-hours)")

        spans = self.top_spans(top)
        if spans:
            lines.append("")
            lines.append(f"top {len(spans)} spans by wall time:")
            lines.append(f"  {'span':<36} {'wall_s':>10} {'cpu_s':>10}")
            for s in spans:
                indent = "  " * s.depth
                name = (indent + s.name)[:36]
                lines.append(f"  {name:<36} {s.wall_s:>10.4f} "
                             f"{s.cpu_s:>10.4f}")

        if "store.hits" in m or "store.misses" in m:
            hits = int(m.value("store.hits"))
            misses = int(m.value("store.misses"))
            lookups = hits + misses
            rate = hits / lookups if lookups else 1.0
            lines.append("")
            lines.append(f"store: {hits} hits, {misses} misses "
                         f"({rate:.0%} served), "
                         f"{int(m.value('store.puts'))} puts, "
                         f"{int(m.value('store.evictions'))} evictions")

        if "globus.transfers" in m:
            lines.append(
                f"transfers: {fmt_bytes(m.value('globus.bytes_out'))} out, "
                f"{fmt_bytes(m.value('globus.bytes_in'))} in "
                f"({int(m.value('globus.transfers'))} transfers, "
                f"{m.value('globus.transfer_s') / 3600:.2f}h modelled)")

        if "slurm.makespan_s" in m:
            lines.append(
                f"slurm: {int(m.value('slurm.jobs'))} jobs, makespan "
                f"{m.value('slurm.makespan_s') / 3600:.2f}h, "
                f"utilization {m.value('slurm.utilization'):.3f}, "
                f"mean queue wait "
                f"{m.value('slurm.queue_wait_s') / max(1, m.count('slurm.queue_wait_s')) / 3600:.2f}h")

        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """The ``repro trace export`` document."""
        return {
            "n_events": self.n_events,
            "metrics": self.metrics.snapshot(),
            "engine_phases": [
                {"phase": p, "total_s": t, "share": s}
                for p, t, s in self.engine_phase_table()],
            "spans": [
                {"span": s.span_id, "parent": s.parent_id, "name": s.name,
                 "depth": s.depth, "start_s": s.start_s, "wall_s": s.wall_s,
                 "cpu_s": s.cpu_s, "modelled": s.modelled,
                 "attrs": s.attrs}
                for s in self.spans],
            "unfinished": list(self.unfinished),
        }


def _span_from_event(rec: dict[str, Any], finished: bool) -> SpanRecord:
    return SpanRecord(
        span_id=int(rec.get("span", -1)),
        parent_id=rec.get("parent"),
        name=str(rec.get("name", "")),
        depth=int(rec.get("depth", 0)),
        start_s=float(rec.get("start_s", 0.0)),
        wall_s=float(rec.get("wall_s", 0.0)),
        cpu_s=float(rec.get("cpu_s", 0.0)),
        attrs=dict(rec.get("attrs") or {}),
        modelled=bool(rec.get("modelled", False)),
        finished=finished,
    )


def summarize_events(events: tuple[dict[str, Any], ...]) -> TraceSummary:
    """Digest parsed trace events into a :class:`TraceSummary`.

    ``span_start`` records without a matching ``span_end`` — the crashed
    part of a partial trace — surface under ``unfinished`` instead of
    being dropped.
    """
    summary = TraceSummary(n_events=len(events))
    started: dict[int, dict[str, Any]] = {}
    for rec in events:
        kind = rec.get("event")
        if kind == "span_start":
            started[int(rec["span"])] = rec
        elif kind == "span_end":
            start = started.pop(int(rec["span"]), {})
            merged = {**start, **rec}
            summary.spans.append(_span_from_event(merged, finished=True))
        elif kind == "span":  # modelled: complete in one record
            summary.spans.append(_span_from_event(rec, finished=True))
        elif kind == "metrics":
            summary.metrics.merge(rec.get("data") or {})
    summary.unfinished = [
        {"span": rec["span"], "name": rec.get("name", ""),
         "depth": rec.get("depth", 0)}
        for rec in started.values()]
    return summary


def summarize(source: "str | Path | Tracer | tuple") -> TraceSummary:
    """Summarize a trace file, parsed events, or a live tracer."""
    if isinstance(source, Tracer):
        summary = TraceSummary(n_events=0)
        summary.spans = list(source.spans)
        summary.unfinished = [
            {"span": s.span_id, "name": s.name, "depth": s.depth}
            for s in source.open_spans]
        return summary
    if isinstance(source, (str, Path)):
        return summarize_events(read_trace(source))
    return summarize_events(tuple(source))


def export_json(source: "str | Path | Tracer | tuple", *,
                indent: int = 2) -> str:
    """The JSON export body (stable key order for diffable dashboards)."""
    return json.dumps(summarize(source).to_json(),
                      indent=indent, sort_keys=True)
