"""Unified observability: metrics registry, span tracer, trace reports.

The single telemetry API for the whole stack (the Figures 7-10 problem:
a 10-hour nightly window is only operable if you can see where it went).
Every component publishes into one dotted namespace:

==============  ===========================================================
namespace       published by
==============  ===========================================================
``engine.*``    :mod:`repro.epihiper.engine` — phase timers, work counters
``runner.*``    :mod:`repro.core.runner` — asset/simulation timing per spec
``store.*``     :mod:`repro.store.cas` — hits, misses, puts, evictions
``memo.*``      :mod:`repro.store.memo` — batch fan-out accounting
``globus.*``    :mod:`repro.cluster.globus` — bytes/direction, transfer time
``slurm.*``     :mod:`repro.cluster.slurm` — jobs, makespan, queue waits
``events.*``    :mod:`repro.cluster.events` — discrete-event loop volume
==============  ===========================================================

- :mod:`~repro.obs.registry` — counters/gauges/timers, merge semantics;
- :mod:`~repro.obs.spans` — hierarchical tracer + JSONL event stream;
- :mod:`~repro.obs.report` — ``repro trace summarize|export`` reports.

The package itself is dependency-free (stdlib only) so any module can
publish without import cycles; trace files reuse the torn-line-tolerant
JSONL discipline of :mod:`repro.store.ledger`.
"""

from .registry import (
    COUNTER,
    GAUGE,
    TIMER,
    Metric,
    MetricsRegistry,
    global_registry,
)
from .registry import Stopwatch
from .report import TraceSummary, export_json, summarize, summarize_events
from .spans import SpanRecord, Tracer, default_trace_path, read_trace

__all__ = [
    "COUNTER",
    "GAUGE",
    "Metric",
    "MetricsRegistry",
    "SpanRecord",
    "Stopwatch",
    "TIMER",
    "TraceSummary",
    "Tracer",
    "default_trace_path",
    "export_json",
    "global_registry",
    "read_trace",
    "summarize",
    "summarize_events",
]
