"""Hierarchical span tracing with a crash-tolerant JSONL event stream.

A :class:`Tracer` records where a run's wall-clock went as a tree of named
spans — orchestrator → workflow → cell → instance → engine phase — each
with wall (``perf_counter``) and CPU (``process_time``) time.  Every span
boundary is also appended to a JSONL trace file through the same
append-and-flush discipline as the :mod:`repro.store.ledger` run journal,
so a night that crashes at hour nine still yields a readable partial trace
(the reader tolerates a torn final line and unfinished spans).

Two span flavours exist because the reproduction runs two kinds of time:

- :meth:`Tracer.span` measures *real* elapsed time around actual work;
- :meth:`Tracer.modelled_span` records a span whose start and duration
  come from a simulated clock (the Slurm schedule, the workflow
  timeline), letting the one trace carry both views of a night.

The tracer is deliberately free of knobs: if constructed without a path it
keeps spans in memory only, and instrumented code never branches on
whether tracing is on — which is what keeps instrumented and bare runs
bit-identical (the equivalence test in ``tests/obs`` pins this).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator


def default_trace_path() -> Path:
    """Where CLI commands write their trace unless told otherwise.

    ``REPRO_TRACE_PATH`` overrides; the fallback lives under the user
    cache so ``repro night … && repro trace summarize`` needs no flags.
    """
    env = os.environ.get("REPRO_TRACE_PATH")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "trace.jsonl"


@dataclass
class SpanRecord:
    """One (possibly still open) span.

    Attributes:
        span_id: unique id within the trace.
        parent_id: enclosing span's id (None for roots).
        name: dotted span name (``task:run-simulations``).
        depth: nesting depth (roots are 0).
        start_s: start offset from the tracer's epoch, seconds.
        wall_s: elapsed wall seconds (0 until finished).
        cpu_s: elapsed process-CPU seconds (0 until finished).
        attrs: free-form attributes attached at entry or during the span.
        modelled: True when times come from a simulated clock.
        finished: whether the span has ended.
    """

    span_id: int
    parent_id: int | None
    name: str
    depth: int
    start_s: float
    wall_s: float = 0.0
    cpu_s: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)
    modelled: bool = False
    finished: bool = False


class Tracer:
    """Records a span tree, optionally streaming events to a JSONL file."""

    def __init__(self, path: str | Path | None = None, *,
                 run_id: str | None = None, fresh: bool = True,
                 faults=None) -> None:
        """Args:
            path: JSONL trace file; None keeps the trace in memory only.
            run_id: stamped on every event (ties a trace to a night).
            fresh: truncate an existing file first — one trace file is one
                run; within the run every event is appended and flushed.
            faults: optional :class:`~repro.resilience.faults.FaultPlan`
                forwarded to the trace's journal; ``ledger.torn`` rules
                tear trace lines exactly as they tear run-ledger lines
                (chaos-testing the reader's crash tolerance).
        """
        self.spans: list[SpanRecord] = []
        self._stack: list[SpanRecord] = []
        self._next_id = 0
        self._epoch = time.perf_counter()
        self._ledger = None
        if path is not None:
            # Lazy import: repro.store.cas publishes into obs.registry, so
            # obs must not require repro.store at module import time.
            from ..store.ledger import RunLedger

            path = Path(path)
            if fresh and path.exists():
                path.unlink()
            self._ledger = RunLedger(path, run_id=run_id, faults=faults)

    # -- real spans ------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[SpanRecord]:
        """Measure a block as one span; nests under the current span."""
        rec = self._begin(name, attrs)
        t0 = time.perf_counter()
        c0 = time.process_time()
        try:
            yield rec
        finally:
            rec.wall_s = time.perf_counter() - t0
            rec.cpu_s = time.process_time() - c0
            self._end(rec)

    def _begin(self, name: str, attrs: dict[str, Any]) -> SpanRecord:
        parent = self._stack[-1] if self._stack else None
        rec = SpanRecord(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            depth=len(self._stack),
            start_s=time.perf_counter() - self._epoch,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(rec)
        self._write("span_start", span=rec.span_id, parent=rec.parent_id,
                    name=rec.name, depth=rec.depth, start_s=rec.start_s)
        return rec

    def _end(self, rec: SpanRecord) -> None:
        rec.finished = True
        if self._stack and self._stack[-1] is rec:
            self._stack.pop()
        self.spans.append(rec)
        self._write("span_end", span=rec.span_id, name=rec.name,
                    wall_s=rec.wall_s, cpu_s=rec.cpu_s, attrs=rec.attrs)

    # -- modelled spans and loose events --------------------------------------

    def modelled_span(self, name: str, *, start: float, wall_s: float,
                      **attrs: Any) -> SpanRecord:
        """Record a span timed by a simulated clock (schedule, timeline).

        The span nests under the currently open real span; ``start`` is in
        the simulated clock's own units and is not mixed with the tracer
        epoch.
        """
        parent = self._stack[-1] if self._stack else None
        rec = SpanRecord(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            depth=len(self._stack),
            start_s=float(start),
            wall_s=float(wall_s),
            attrs=dict(attrs),
            modelled=True,
            finished=True,
        )
        self._next_id += 1
        self.spans.append(rec)
        self._write("span", span=rec.span_id, parent=rec.parent_id,
                    name=rec.name, depth=rec.depth, start_s=rec.start_s,
                    wall_s=rec.wall_s, modelled=True, attrs=rec.attrs)
        return rec

    def event(self, name: str, **fields: Any) -> None:
        """Append a free-form annotation event to the stream."""
        self._write("annotation", name=name, **fields)

    def metrics(self, registry, scope: str = "") -> None:
        """Embed a registry dump in the stream (merged by the reader)."""
        self._write("metrics", scope=scope, data=registry.dump())

    # -- plumbing --------------------------------------------------------------

    def _write(self, event: str, **fields: Any) -> None:
        if self._ledger is not None:
            self._ledger.append(event, **fields)

    @property
    def open_spans(self) -> list[SpanRecord]:
        """Spans entered but not yet exited (innermost last)."""
        return list(self._stack)

    def close(self) -> None:
        """Close the underlying trace file (writes reopen it)."""
        if self._ledger is not None:
            self._ledger.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_trace(path: str | Path) -> tuple[dict[str, Any], ...]:
    """Parse a trace file into its event records.

    Reuses the torn-line-tolerant reader from :mod:`repro.store.ledger`:
    a truncated final line (the process died mid-append) is skipped, a
    missing file reads as an empty trace.
    """
    from ..store.ledger import replay_ledger

    return replay_ledger(path).events
