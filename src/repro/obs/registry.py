"""The metrics registry: one namespace for every counter in the stack.

The paper's nightly production runs were steered entirely by telemetry —
per-phase runtimes, memory, utilization (Figures 7-10) — yet ad-hoc
instrumentation fragments as a system grows: a timing dict here, a stats
dataclass there, a transfer ledger somewhere else.  :class:`MetricsRegistry`
is the single publication point: every component registers its numbers
under a dotted name (``engine.transmission_s``, ``store.hits``,
``globus.bytes_out``, ``slurm.queue_wait_s``) and every consumer — the
trace report, the run ledger, the legacy dict views — reads the same data.

Three metric kinds cover the stack:

- **counter** — a monotonically increasing integer (`transitions`, `hits`);
- **gauge** — a last-write-wins float (`makespan_s`, `utilization`);
- **timer** — accumulated ``perf_counter`` seconds plus an observation
  count (`transmission_s`); :meth:`MetricsRegistry.timer` is the context
  manager that owns the clock, so components never touch
  ``time.perf_counter`` themselves.

Registries are cheap, picklable, and mergeable: pool workers fill a fresh
registry each, ship :meth:`dump` back with the result, and the parent
:meth:`merge`s them — counters and timers add, gauges take the incoming
value.  The module-level :func:`global_registry` aggregates whatever the
current process ran, so a CLI command can report on work done anywhere in
the stack without threading a registry through every call.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

COUNTER = "counter"
GAUGE = "gauge"
TIMER = "timer"

_KINDS = (COUNTER, GAUGE, TIMER)


@dataclass
class Metric:
    """One named metric: its kind, value, and (for timers) sample count."""

    kind: str
    value: int | float = 0
    count: int = 0


class MetricsRegistry:
    """A mutable collection of named metrics under dotted namespaces."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- publication -----------------------------------------------------------

    def _declare(self, name: str, kind: str) -> Metric:
        m = self._metrics.get(name)
        if m is None:
            if kind not in _KINDS:
                raise ValueError(f"unknown metric kind: {kind!r}")
            m = Metric(kind=kind, value=0 if kind == COUNTER else 0.0)
            self._metrics[name] = m
        elif m.kind != kind:
            raise TypeError(
                f"{name!r} is a {m.kind}, not a {kind}")
        return m

    def counter(self, name: str) -> Metric:
        """Declare (or fetch) a counter without incrementing it."""
        return self._declare(name, COUNTER)

    def declare(self, name: str, kind: str) -> Metric:
        """Declare (or fetch) a metric of any kind at its zero value."""
        return self._declare(name, kind)

    def inc(self, name: str, n: int = 1) -> int:
        """Add ``n`` to a counter; returns the new value."""
        m = self._declare(name, COUNTER)
        m.value = int(m.value) + int(n)
        return m.value

    def gauge(self, name: str, value: float) -> float:
        """Set a gauge (last write wins)."""
        m = self._declare(name, GAUGE)
        m.value = float(value)
        return m.value

    def observe(self, name: str, seconds: float) -> float:
        """Accumulate one timed observation; returns the running total."""
        m = self._declare(name, TIMER)
        m.value = float(m.value) + float(seconds)
        m.count += 1
        return m.value

    def observe_n(self, name: str, seconds: float, n: int) -> float:
        """Accumulate ``n`` observations totalling ``seconds`` in one call.

        For drivers that time shared work under one clock and apportion
        it afterwards (the batched engine times K lanes per phase and
        credits each lane ``total / K`` across its ticks at flush) —
        keeps per-observation counts honest without per-tick overhead.
        """
        m = self._declare(name, TIMER)
        m.value = float(m.value) + float(seconds)
        m.count += int(n)
        return m.value

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block on the monotonic clock and :meth:`observe` it.

        This context manager is the stack's only sanctioned use of
        ``perf_counter`` for accumulation (the lint test in ``tests/obs``
        enforces that nothing outside ``repro.obs`` builds timing dicts by
        hand).
        """
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    # -- consumption -----------------------------------------------------------

    def value(self, name: str, default: int | float = 0) -> int | float:
        """Current value of a metric (timers report total seconds)."""
        m = self._metrics.get(name)
        return default if m is None else m.value

    def count(self, name: str) -> int:
        """Observation count of a timer (0 for anything else or missing)."""
        m = self._metrics.get(name)
        return 0 if m is None else m.count

    def names(self, prefix: str = "") -> list[str]:
        """Sorted metric names, optionally restricted to a prefix."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self, prefix: str = "",
                 strip: bool = False) -> dict[str, int | float]:
        """Flat name -> value view, optionally filtered and de-prefixed.

        Counters stay Python ints and timers/gauges floats, so legacy
        consumers that did arithmetic on a plain counters dict see the
        same types they always did.
        """
        out: dict[str, int | float] = {}
        for name in self.names(prefix):
            key = name[len(prefix):] if strip else name
            out[key] = self._metrics[name].value
        return out

    def dump(self, prefix: str = "") -> dict[str, dict[str, int | float | str]]:
        """Kind-preserving serialisation (what crosses process boundaries)."""
        return {
            name: {"kind": m.kind, "value": m.value, "count": m.count}
            for name, m in sorted(self._metrics.items())
            if name.startswith(prefix)
        }

    # -- combination -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry | Mapping") -> "MetricsRegistry":
        """Fold another registry (or a :meth:`dump`) into this one.

        Counters and timers add (and timer counts add), gauges take the
        incoming value — the semantics that make per-worker registries
        sum correctly in the parent.  Returns self for chaining.
        """
        if isinstance(other, MetricsRegistry):
            items = other.dump().items()
        else:
            items = other.items()
        for name, rec in items:
            kind = rec["kind"]
            m = self._declare(name, kind)
            if kind == COUNTER:
                m.value = int(m.value) + int(rec["value"])
            elif kind == TIMER:
                m.value = float(m.value) + float(rec["value"])
                m.count += int(rec.get("count", 0))
            else:  # gauge
                m.value = float(rec["value"])
        return self

    def clear(self, prefix: str = "") -> None:
        """Drop metrics (all of them, or one namespace)."""
        if not prefix:
            self._metrics.clear()
        else:
            for name in self.names(prefix):
                del self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({self.snapshot()!r})"


class Stopwatch:
    """A started ``perf_counter`` clock for code that needs the elapsed
    value itself (ledger events, log lines) rather than an accumulated
    timer.  Lives here so ``repro.obs`` stays the stack's only reader of
    the monotonic clock.
    """

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction (monotonic)."""
        return time.perf_counter() - self._t0


#: Process-wide aggregation point: components that are not handed a
#: registry explicitly still publish here, so "what did this process do"
#: is always answerable.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (per-process; workers ship theirs home)."""
    return _GLOBAL
