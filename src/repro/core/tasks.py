"""Workflow task-graph primitives.

The paper's workflows are "a complex series of data ingestion, simulation
and analytics steps" split across two sites.  A :class:`WorkflowTask` names
one step, the site it runs on, its dependencies, and an action; executing a
task may produce :class:`DataArtifact` objects whose sizes drive the
transfer accounting of Figure 1 / Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..params import fmt_bytes

#: The two execution sites.
HOME = "home"
REMOTE = "remote"
SITES = (HOME, REMOTE)


@dataclass(frozen=True, slots=True)
class DataArtifact:
    """A named data product of a workflow step.

    Attributes:
        name: artifact label ("summary-output").
        site: where it currently resides.
        size_bytes: paper-scale size for transfer accounting.
        payload: optional in-memory object carrying the real (scaled) data.
    """

    name: str
    site: str
    size_bytes: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown site {self.site!r}")
        if self.size_bytes < 0:
            raise ValueError("size must be non-negative")

    def at(self, site: str) -> "DataArtifact":
        """The same artifact after a transfer to ``site``."""
        return DataArtifact(self.name, site, self.size_bytes, self.payload)

    def __str__(self) -> str:
        return f"{self.name}@{self.site}({fmt_bytes(self.size_bytes)})"


@dataclass
class WorkflowTask:
    """One executable workflow step.

    Attributes:
        name: unique step name.
        site: execution site (HOME or REMOTE).
        action: callable ``(context) -> dict[str, DataArtifact] | None``;
            the context is the shared mutable workflow state.
        deps: names of steps that must complete first.
        automated: False for steps needing human initiation (the manual
            Globus transfers and review steps of Figure 2).
        est_duration: modelled wall-clock seconds for the timeline.
    """

    name: str
    site: str
    action: Callable[[dict], dict[str, DataArtifact] | None]
    deps: tuple[str, ...] = ()
    automated: bool = True
    est_duration: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown site {self.site!r}")


@dataclass(frozen=True, slots=True)
class TaskRun:
    """Provenance record of one executed step."""

    task_name: str
    site: str
    started: float
    finished: float
    produced: tuple[str, ...] = field(default=())

    @property
    def duration(self) -> float:
        """Modelled duration."""
        return self.finished - self.started
