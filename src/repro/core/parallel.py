"""Process-parallel execution of simulation instances.

The production system's per-night throughput comes from running thousands
of independent <cell, region, replicate> simulations concurrently.  At
reproduction scale the same fan-out is available through a process pool:
instances are embarrassingly parallel, each worker builds (and caches) its
own region inputs, and only the small aggregated series cross process
boundaries — the classic scatter/gather layout of the mpi4py guide, with
``ProcessPoolExecutor`` standing in for MPI ranks.

Fan-out is *supervised*, not mapped: each instance is submitted as its own
future under :func:`repro.resilience.supervisor.supervise_map`, so one
worker exception no longer aborts the batch, a dead worker rebuilds the
pool and salvages everything already completed, and specs that keep
failing are quarantined instead of killing the night (see
:func:`supervise_instances`).  Because every retry re-runs the same spec
with the same seed, a recovered batch is bit-identical to an undisturbed
one.

Fan-out is also *warm*: specs are submitted sorted by their asset key
``(region, scale, asset_seed)`` so each worker's per-process asset LRU
mostly hits instead of thrashing across regions, and a pool initializer
pre-loads the dominant asset keys once per worker so the first instance on
every worker starts hot.  Results are restored to input order before
returning.
"""

from __future__ import annotations

import os
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..params import DEFAULT_SCALE, DEFAULT_SEED
from ..resilience.faults import CRASH_EXIT_CODE, FaultPlan, InjectedFault
from ..resilience.retry import RetryPolicy
from ..resilience.supervisor import (
    QUARANTINE,
    RAISE,
    FanoutResult,
    supervise_map,
)

#: Cap on asset keys the pool initializer builds per worker: warming the
#: dominant regions is a win, rebuilding every region in every worker is not.
#: Overridable per deployment via ``REPRO_MAX_PRELOAD_ASSETS`` (see
#: :func:`max_preload_assets`) — service workloads skew to a few hot
#: regions and want a smaller warm set than a 50-state nightly sweep.
MAX_PRELOAD_ASSETS: int = 4


def max_preload_assets() -> int:
    """The effective preload cap: ``REPRO_MAX_PRELOAD_ASSETS`` or the
    module default.  ``0`` disables pre-warming entirely."""
    raw = os.environ.get("REPRO_MAX_PRELOAD_ASSETS")
    if raw is None or not raw.strip():
        return MAX_PRELOAD_ASSETS
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_MAX_PRELOAD_ASSETS must be an integer, got {raw!r}")
    if value < 0:
        raise ValueError(
            f"REPRO_MAX_PRELOAD_ASSETS must be >= 0, got {value}")
    return value


@dataclass(frozen=True, slots=True)
class InstanceSpec:
    """One simulation instance to execute.

    Attributes mirror the cell-configuration fields the runner needs; the
    spec is small and picklable, which is what lets it cross to workers.
    """

    region_code: str
    params: dict[str, Any]
    n_days: int
    scale: float
    seed: int
    label: str = ""
    asset_seed: int = DEFAULT_SEED  #: population/network seed (fixed per
    #: night: instances share inputs, only the simulation stream varies)


@dataclass(frozen=True, slots=True)
class InstanceOutcome:
    """The gathered result of one instance (small arrays only).

    Attributes:
        spec: the executed spec.
        confirmed: cumulative confirmed series, length ``n_days + 1``.
        attack_rate: fraction ever infected.
        transitions: raw transition-log length (for accounting).
    """

    spec: InstanceSpec
    confirmed: np.ndarray
    attack_rate: float
    transitions: int


def _spec_key(spec: InstanceSpec) -> str:
    """The operation key faults and backoff jitter match against."""
    return spec.label or f"{spec.region_code}:{spec.seed}"


def _inject_worker_faults(spec: InstanceSpec, attempt: int,
                          faults: FaultPlan | None, *,
                          allow_exit: bool) -> None:
    """Apply the worker-side fault sites for (spec, attempt).

    ``worker.crash`` kills the process hard when ``allow_exit`` (pool
    workers — the parent sees ``BrokenProcessPool`` and rebuilds); the
    in-process path raises it as a transient :class:`InjectedFault`
    instead, since exiting would kill the supervisor itself.
    """
    if faults is None:
        return
    key = _spec_key(spec)
    if faults.fires("worker.crash", key, attempt):
        if allow_exit:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedFault("worker.crash",
                            f"{key} attempt {attempt} (in-process)")
    if faults.fires("worker.exception", key, attempt):
        raise InjectedFault("worker.exception", f"{key} attempt {attempt}")
    delay = faults.delay("worker.slow", key, attempt)
    if delay > 0:
        time.sleep(delay)


def _execute_one(spec: InstanceSpec, attempt: int = 0,
                 faults: FaultPlan | None = None, *,
                 allow_exit: bool = False) -> tuple[InstanceOutcome, dict]:
    """Worker: run one spec; return its outcome plus a telemetry dump.

    Imports happen inside the worker so forked/spawned processes
    initialise cleanly; the per-process ``load_region_assets`` LRU cache
    (inside :func:`~repro.core.runner.execute_spec`) amortises input
    construction across a worker's instances.

    Telemetry that is not embedded in the result object would otherwise
    die with the worker, so each execution fills a fresh registry and
    ships its kind-preserving dump home for the parent to merge.  Faults
    are injected *before* the simulation touches its RNG stream, so a
    retried attempt reproduces the clean run bit for bit.
    """
    from ..obs.registry import MetricsRegistry
    from .runner import execute_spec

    _inject_worker_faults(spec, attempt, faults, allow_exit=allow_exit)
    reg = MetricsRegistry()
    if faults is not None and faults.delay("worker.slow",
                                           _spec_key(spec), attempt) > 0:
        reg.inc("faults.worker.slow")
    outcome = execute_spec(spec, metrics=reg)
    return outcome, reg.dump()


def _execute_one_pooled(spec: InstanceSpec, attempt: int,
                        faults: FaultPlan | None) -> tuple[InstanceOutcome,
                                                           dict]:
    """Pool-worker entry: like :func:`_execute_one`, with hard crashes."""
    return _execute_one(spec, attempt, faults, allow_exit=True)


def _asset_key(spec: InstanceSpec) -> tuple[str, float, int]:
    """The key ``load_region_assets`` caches on."""
    return (spec.region_code, spec.scale, spec.asset_seed)


def _warm_worker(asset_keys: tuple[tuple[str, float, int], ...]) -> None:
    """Pool initializer: pre-load the dominant assets into the worker LRU."""
    from .runner import load_region_assets

    for region_code, scale, asset_seed in asset_keys:
        load_region_assets(region_code, scale, asset_seed)


def pool_chunksize(n_specs: int, workers: int) -> int:
    """Batch size yielding ~4 contiguous chunks per worker.

    The supervised fan-out submits one future per instance (retries and
    quarantine need per-instance failure domains), so this no longer
    feeds a ``pool.map``; it remains the sizing rule for bulk transports
    that do batch (benchmarks, external executors).
    """
    return max(1, n_specs // (4 * workers))


def supervise_instances(
    specs: list[InstanceSpec],
    *,
    max_workers: int | None = None,
    parallel: bool = True,
    registry=None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    ledger=None,
    on_failure: str = QUARANTINE,
) -> FanoutResult:
    """Execute instances under supervision; never die mid-batch.

    The resilient core of the fan-out: per-instance futures, retries with
    deterministic backoff, broken-pool rebuild with salvage of completed
    results, and quarantine of specs that exhaust their attempts — the
    batch always returns, with ``result.results[i] is None`` marking
    quarantined positions and ``result.quarantined`` carrying the report.

    Args:
        specs: the instances (order of results matches the input).
        max_workers: pool size; defaults to ``os.cpu_count()`` capped at
            the number of instances.
        parallel: set False for in-process execution (debugging, or when
            the workload is too small to amortise pool start-up).
        registry: :class:`~repro.obs.registry.MetricsRegistry` receiving
            every worker's telemetry dump plus the supervisor's
            ``retry.*`` / ``faults.*`` accounting; defaults to the
            process :func:`~repro.obs.registry.global_registry`.  Dumps
            are merged incrementally as results arrive, so telemetry of
            completed instances survives a mid-batch failure.
        retry: the retry policy (None = single attempt, no backoff; pool
            rebuilds stay active).
        faults: optional fault-injection plan, threaded to every worker.
        ledger: optional run journal; quarantines are recorded as
            ``instance_failed`` events with ``quarantined=True``.
        on_failure: ``"quarantine"`` (default) or ``"raise"``.

    Returns:
        A :class:`~repro.resilience.supervisor.FanoutResult` whose
        ``results`` are :class:`InstanceOutcome` (or None), input order.
    """
    from ..obs.registry import global_registry

    sink = registry if registry is not None else global_registry()
    if not specs:
        return supervise_map(_execute_one, [], registry=sink)
    workers = min(max_workers or os.cpu_count() or 1, len(specs))
    keys = [_spec_key(s) for s in specs]

    def merge_dump(_i: int, pair: tuple[InstanceOutcome, dict]) -> None:
        sink.merge(pair[1])

    if not parallel or len(specs) == 1 or workers <= 1:
        res = supervise_map(
            _execute_one, specs, keys=keys, retry=retry, faults=faults,
            on_failure=on_failure, registry=sink, ledger=ledger,
            on_result=merge_dump)
    else:
        order = sorted(range(len(specs)), key=lambda i: _asset_key(specs[i]))
        freq = Counter(_asset_key(s) for s in specs)
        warm_keys = tuple(k for k, _ in freq.most_common(max_preload_assets()))

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_warm_worker,
                initargs=(warm_keys,),
            )

        res = supervise_map(
            _execute_one, specs, keys=keys, make_pool=make_pool,
            pool_fn=_execute_one_pooled, submit_order=order, retry=retry,
            faults=faults, on_failure=on_failure, registry=sink,
            ledger=ledger, on_result=merge_dump)
        sink.gauge("parallel.workers", workers)
    res.results = [pair[0] if pair is not None else None
                   for pair in res.results]
    return res


def run_instances(
    specs: list[InstanceSpec],
    *,
    max_workers: int | None = None,
    parallel: bool = True,
    registry=None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
) -> list[InstanceOutcome]:
    """Execute instances, optionally across a process pool.

    The historical all-or-nothing contract: every spec's outcome, in
    input order, or the first unrecoverable exception.  Internally this
    is :func:`supervise_instances` with ``on_failure="raise"`` — worker
    loss still rebuilds the pool, and a :class:`RetryPolicy` (when given)
    still retries transient failures; only exhaustion propagates.  Night
    orchestration and chaos runs use :func:`supervise_instances` directly
    to get partial results plus a quarantine report instead.

    Args:
        specs: the instances (order of results matches the input).
        max_workers: pool size; defaults to ``os.cpu_count()`` capped at
            the number of instances.
        parallel: set False for in-process execution (debugging, or when
            the workload is too small to amortise pool start-up).
        registry: :class:`~repro.obs.registry.MetricsRegistry` that
            receives every worker's telemetry dump (``runner.*`` and
            aggregated ``engine.*``), merged in the parent; defaults to
            the process :func:`~repro.obs.registry.global_registry`, so
            pool-worker telemetry is never silently lost.
        retry: optional retry policy for transient worker failures.
        faults: optional fault-injection plan (chaos testing).

    Returns:
        One :class:`InstanceOutcome` per spec, in input order.
    """
    res = supervise_instances(
        specs, max_workers=max_workers, parallel=parallel,
        registry=registry, retry=retry, faults=faults, on_failure=RAISE)
    return res.results  # type: ignore[return-value] — RAISE means no Nones


def specs_for_design(
    design,
    *,
    n_days: int = 120,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> list[InstanceSpec]:
    """Expand an experiment design into executable instance specs."""
    out: list[InstanceSpec] = []
    for i, (cell, region, rep) in enumerate(design.instances()):
        out.append(InstanceSpec(
            region_code=region,
            params=dict(cell.params),
            n_days=n_days,
            scale=scale,
            seed=seed + 17 * i,
            label=f"{region}-c{cell.index}-r{rep}",
            asset_seed=seed,
        ))
    return out


def gather_ensemble(outcomes: list[InstanceOutcome]) -> np.ndarray:
    """Stack outcomes' confirmed series into an ``(R, T + 1)`` ensemble."""
    if not outcomes:
        raise ValueError("no outcomes to gather")
    return np.vstack([o.confirmed for o in outcomes])
