"""Process-parallel execution of simulation instances.

The production system's per-night throughput comes from running thousands
of independent <cell, region, replicate> simulations concurrently.  At
reproduction scale the same fan-out is available through a process pool:
instances are embarrassingly parallel, each worker builds (and caches) its
own region inputs, and only the small aggregated series cross process
boundaries — the classic scatter/gather layout of the mpi4py guide, with
``ProcessPoolExecutor`` standing in for MPI ranks.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..params import DEFAULT_SCALE, DEFAULT_SEED


@dataclass(frozen=True, slots=True)
class InstanceSpec:
    """One simulation instance to execute.

    Attributes mirror the cell-configuration fields the runner needs; the
    spec is small and picklable, which is what lets it cross to workers.
    """

    region_code: str
    params: dict[str, Any]
    n_days: int
    scale: float
    seed: int
    label: str = ""
    asset_seed: int = DEFAULT_SEED  #: population/network seed (fixed per
    #: night: instances share inputs, only the simulation stream varies)


@dataclass(frozen=True, slots=True)
class InstanceOutcome:
    """The gathered result of one instance (small arrays only).

    Attributes:
        spec: the executed spec.
        confirmed: cumulative confirmed series, length ``n_days + 1``.
        attack_rate: fraction ever infected.
        transitions: raw transition-log length (for accounting).
    """

    spec: InstanceSpec
    confirmed: np.ndarray
    attack_rate: float
    transitions: int


def _execute_one(spec: InstanceSpec) -> InstanceOutcome:
    """Worker: build/reuse region assets, run, aggregate, return summary.

    Imports happen inside the worker so forked/spawned processes
    initialise cleanly; the per-process ``load_region_assets`` LRU cache
    amortises input construction across a worker's instances.
    """
    from .runner import confirmed_series, load_region_assets, run_instance

    assets = load_region_assets(spec.region_code, spec.scale,
                                spec.asset_seed)
    result, model = run_instance(
        assets, spec.params, n_days=spec.n_days, seed=spec.seed)
    return InstanceOutcome(
        spec=spec,
        confirmed=confirmed_series(result, model, spec.n_days),
        attack_rate=result.attack_rate(model),
        transitions=result.log.size,
    )


def run_instances(
    specs: list[InstanceSpec],
    *,
    max_workers: int | None = None,
    parallel: bool = True,
) -> list[InstanceOutcome]:
    """Execute instances, optionally across a process pool.

    Args:
        specs: the instances (order of results matches the input).
        max_workers: pool size; defaults to ``os.cpu_count()`` capped at
            the number of instances.
        parallel: set False for in-process execution (debugging, or when
            the workload is too small to amortise pool start-up).

    Returns:
        One :class:`InstanceOutcome` per spec, in input order.
    """
    if not specs:
        return []
    if not parallel or len(specs) == 1:
        return [_execute_one(s) for s in specs]
    workers = min(max_workers or os.cpu_count() or 1, len(specs))
    if workers <= 1:
        return [_execute_one(s) for s in specs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_execute_one, specs, chunksize=1))


def specs_for_design(
    design,
    *,
    n_days: int = 120,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> list[InstanceSpec]:
    """Expand an experiment design into executable instance specs."""
    out: list[InstanceSpec] = []
    for i, (cell, region, rep) in enumerate(design.instances()):
        out.append(InstanceSpec(
            region_code=region,
            params=dict(cell.params),
            n_days=n_days,
            scale=scale,
            seed=seed + 17 * i,
            label=f"{region}-c{cell.index}-r{rep}",
            asset_seed=seed,
        ))
    return out


def gather_ensemble(outcomes: list[InstanceOutcome]) -> np.ndarray:
    """Stack outcomes' confirmed series into an ``(R, T + 1)`` ensemble."""
    if not outcomes:
        raise ValueError("no outcomes to gather")
    return np.vstack([o.confirmed for o in outcomes])
