"""Process-parallel execution of simulation instances.

The production system's per-night throughput comes from running thousands
of independent <cell, region, replicate> simulations concurrently.  At
reproduction scale the same fan-out is available through a process pool:
instances are embarrassingly parallel, each worker builds (and caches) its
own region inputs, and only the small aggregated series cross process
boundaries — the classic scatter/gather layout of the mpi4py guide, with
``ProcessPoolExecutor`` standing in for MPI ranks.

Fan-out is *supervised*, not mapped: each instance is submitted as its own
future under :func:`repro.resilience.supervisor.supervise_map`, so one
worker exception no longer aborts the batch, a dead worker rebuilds the
pool and salvages everything already completed, and specs that keep
failing are quarantined instead of killing the night (see
:func:`supervise_instances`).  Because every retry re-runs the same spec
with the same seed, a recovered batch is bit-identical to an undisturbed
one.

Fan-out is also *warm*: specs are submitted sorted by their asset key
``(region, scale, asset_seed)`` so each worker's per-process asset LRU
mostly hits instead of thrashing across regions, and a pool initializer
pre-loads the dominant asset keys once per worker so the first instance on
every worker starts hot.  Results are restored to input order before
returning.
"""

from __future__ import annotations

import functools
import os
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..params import DEFAULT_SCALE, DEFAULT_SEED
from ..plane.manifest import AssetKey, plane_enabled
from ..resilience.faults import CRASH_EXIT_CODE, FaultPlan, InjectedFault
from ..resilience.retry import (
    NO_RETRY_POLICY,
    PERMANENT,
    QuarantineRecord,
    RetryPolicy,
    classify,
)
from ..resilience.supervisor import (
    QUARANTINE,
    RAISE,
    FanoutResult,
    supervise_map,
)
from .batching import batch_groups, batching_enabled

#: Cap on asset keys the pool initializer builds per worker: warming the
#: dominant regions is a win, rebuilding every region in every worker is not.
#: Overridable per deployment via ``REPRO_MAX_PRELOAD_ASSETS`` (see
#: :func:`max_preload_assets`) — service workloads skew to a few hot
#: regions and want a smaller warm set than a 50-state nightly sweep.
MAX_PRELOAD_ASSETS: int = 4


def max_preload_assets() -> int:
    """The effective preload cap: ``REPRO_MAX_PRELOAD_ASSETS`` or the
    module default.  ``0`` disables pre-warming entirely."""
    raw = os.environ.get("REPRO_MAX_PRELOAD_ASSETS")
    if raw is None or not raw.strip():
        return MAX_PRELOAD_ASSETS
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_MAX_PRELOAD_ASSETS must be an integer, got {raw!r}")
    if value < 0:
        raise ValueError(
            f"REPRO_MAX_PRELOAD_ASSETS must be >= 0, got {value}")
    return value


@dataclass(frozen=True, slots=True)
class InstanceSpec:
    """One simulation instance to execute.

    Attributes mirror the cell-configuration fields the runner needs; the
    spec is small and picklable, which is what lets it cross to workers.
    """

    region_code: str
    params: dict[str, Any]
    n_days: int
    scale: float
    seed: int
    label: str = ""
    asset_seed: int = DEFAULT_SEED  #: population/network seed (fixed per
    #: night: instances share inputs, only the simulation stream varies)


@dataclass(frozen=True, slots=True)
class InstanceOutcome:
    """The gathered result of one instance (small arrays only).

    Attributes:
        spec: the executed spec.
        confirmed: cumulative confirmed series, length ``n_days + 1``.
        attack_rate: fraction ever infected.
        transitions: raw transition-log length (for accounting).
    """

    spec: InstanceSpec
    confirmed: np.ndarray
    attack_rate: float
    transitions: int


def _spec_key(spec: InstanceSpec) -> str:
    """The operation key faults and backoff jitter match against."""
    return spec.label or f"{spec.region_code}:{spec.seed}"


def _inject_worker_faults(spec: InstanceSpec, attempt: int,
                          faults: FaultPlan | None, *,
                          allow_exit: bool) -> None:
    """Apply the worker-side fault sites for (spec, attempt).

    ``worker.crash`` kills the process hard when ``allow_exit`` (pool
    workers — the parent sees ``BrokenProcessPool`` and rebuilds); the
    in-process path raises it as a transient :class:`InjectedFault`
    instead, since exiting would kill the supervisor itself.
    """
    if faults is None:
        return
    key = _spec_key(spec)
    if faults.fires("worker.crash", key, attempt):
        if allow_exit:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedFault("worker.crash",
                            f"{key} attempt {attempt} (in-process)")
    if faults.fires("worker.exception", key, attempt):
        raise InjectedFault("worker.exception", f"{key} attempt {attempt}")
    delay = faults.delay("worker.slow", key, attempt)
    if delay > 0:
        time.sleep(delay)


def _needs_tick_loop(checkpoint, faults: FaultPlan | None) -> bool:
    """Whether execution must go through the checkpoint-aware tick loop.

    True when checkpointing is enabled *or* a ``worker.crash_mid_run``
    rule is present (the crash-tick drill needs the driver-owned loop
    even with checkpointing off — that is the no-checkpoint baseline).
    """
    return ((checkpoint is not None and checkpoint.enabled)
            or (faults is not None
                and faults.active("worker.crash_mid_run")))


def _execute_one(spec: InstanceSpec, attempt: int = 0,
                 faults: FaultPlan | None = None, *,
                 allow_exit: bool = False,
                 checkpoint=None) -> tuple[InstanceOutcome, dict]:
    """Worker: run one spec; return its outcome plus a telemetry dump.

    Imports happen inside the worker so forked/spawned processes
    initialise cleanly; the per-process ``load_region_assets`` LRU cache
    (inside :func:`~repro.core.runner.execute_spec`) amortises input
    construction across a worker's instances.

    Telemetry that is not embedded in the result object would otherwise
    die with the worker, so each execution fills a fresh registry and
    ships its kind-preserving dump home for the parent to merge.  Faults
    are injected *before* the simulation touches its RNG stream, so a
    retried attempt reproduces the clean run bit for bit.
    """
    from ..obs.registry import MetricsRegistry
    from .runner import execute_spec, execute_spec_checkpointed

    _inject_worker_faults(spec, attempt, faults, allow_exit=allow_exit)
    reg = MetricsRegistry()
    if faults is not None and faults.delay("worker.slow",
                                           _spec_key(spec), attempt) > 0:
        reg.inc("faults.worker.slow")
    if _needs_tick_loop(checkpoint, faults):
        outcome = execute_spec_checkpointed(
            spec, plan=checkpoint, attempt=attempt, faults=faults,
            allow_exit=allow_exit, metrics=reg)
    else:
        outcome = execute_spec(spec, metrics=reg)
    return outcome, reg.dump()


def _execute_one_pooled(spec: InstanceSpec, attempt: int,
                        faults: FaultPlan | None,
                        checkpoint=None) -> tuple[InstanceOutcome, dict]:
    """Pool-worker entry: like :func:`_execute_one`, with hard crashes."""
    return _execute_one(spec, attempt, faults, allow_exit=True,
                        checkpoint=checkpoint)


def _execute_group(specs: list[InstanceSpec], attempt: int = 0,
                   faults: FaultPlan | None = None, *,
                   allow_exit: bool = False,
                   checkpoint=None) -> tuple[list, dict]:
    """Worker: run one batchable spec group through the stacked kernel.

    Faults are injected per spec *before* the batch is built: a spec
    whose injection raises is **evicted** — it becomes an ``("err",
    exc)`` entry while the surviving lanes run batched, so one poisoned
    replicate never costs the group its results.  The parent re-triages
    evictions through the per-spec retry/quarantine machinery.

    A :class:`~repro.epihiper.batch.BatchIncompatible` group (lane models
    that cannot share a tick loop) falls back to per-spec serial
    execution inside this worker — same results, no batch speedup.

    Returns:
        ``(entries, batch_dump)`` — per-spec entries in input order, each
        ``("ok", (outcome, lane_dump))`` or ``("err", exception)``, plus
        the batch-level telemetry dump (``runner.assets_s``, batch phase
        timers, ``batch.size``).
    """
    from ..epihiper.batch import BatchIncompatible
    from ..obs.registry import MetricsRegistry
    from .runner import (
        execute_spec,
        execute_spec_checkpointed,
        execute_specs_batched,
        execute_specs_batched_checkpointed,
    )

    entries: list = [None] * len(specs)
    live: list[int] = []
    for j, spec in enumerate(specs):
        try:
            _inject_worker_faults(spec, attempt, faults,
                                  allow_exit=allow_exit)
        except Exception as exc:  # noqa: BLE001 — parent re-triages
            entries[j] = ("err", exc)
            continue
        live.append(j)
    reg = MetricsRegistry()
    if live:
        if faults is not None:
            for j in live:
                if faults.delay("worker.slow", _spec_key(specs[j]),
                                attempt) > 0:
                    reg.inc("faults.worker.slow")
        live_specs = [specs[j] for j in live]
        tick_loop = _needs_tick_loop(checkpoint, faults)
        try:
            if tick_loop:
                pairs = execute_specs_batched_checkpointed(
                    live_specs, plan=checkpoint, attempt=attempt,
                    faults=faults, allow_exit=allow_exit, metrics=reg)
            else:
                pairs = execute_specs_batched(live_specs, metrics=reg)
        except BatchIncompatible:
            reg.inc("batch.incompatible")
            pairs = []
            for spec in live_specs:
                lane_reg = MetricsRegistry()
                if tick_loop:
                    outcome = execute_spec_checkpointed(
                        spec, plan=checkpoint, attempt=attempt,
                        faults=faults, allow_exit=allow_exit,
                        metrics=lane_reg)
                else:
                    outcome = execute_spec(spec, metrics=lane_reg)
                pairs.append((outcome, lane_reg.dump()))
        for j, pair in zip(live, pairs):
            entries[j] = ("ok", pair)
    return entries, reg.dump()


def _execute_group_pooled(specs: list[InstanceSpec], attempt: int,
                          faults: FaultPlan | None,
                          checkpoint=None) -> tuple[list, dict]:
    """Pool-worker entry: like :func:`_execute_group`, with hard crashes."""
    return _execute_group(specs, attempt, faults, allow_exit=True,
                          checkpoint=checkpoint)


def _asset_key(spec: InstanceSpec) -> AssetKey:
    """The canonical key ``load_region_assets`` caches on.

    This is :meth:`AssetKey.of_spec` — one key type shared with the
    runner cache, replicate batch grouping, and the plane manifest, so
    the warm preload can never drift from what executions actually cache
    on (the historical tuple dropped ``truth_days``).
    """
    return AssetKey.of_spec(spec)


def _scaled_timeout_of(checkpoint, retry: RetryPolicy):
    """Per-attempt timeout scaled to the ticks actually remaining.

    With checkpointing on, a retried attempt resumes mid-run — holding it
    to the full-run deadline would let a wedged worker squat for the
    whole budget after 90% of the work is already banked.  The parent
    reads the (cheap, pointer-file-only) latest checkpoint tick at
    submission time and scales the policy timeout by the remaining
    fraction, floored at one tick's worth.  Returns None when the policy
    has no timeout (nothing to scale).
    """
    base = retry.timeout_s
    if base is None or not checkpoint.enabled:
        return None
    from ..store.keys import instance_key

    manager = checkpoint.manager()

    def timeout_of(item, attempt: int) -> float:
        specs = item if isinstance(item, list) else [item]
        n_days = max(s.n_days for s in specs)
        start = min(
            (manager.latest_tick(instance_key(s, salt=checkpoint.salt))
             or 0) for s in specs)
        remaining = max(1, n_days - start)
        return base * remaining / max(1, n_days)

    return timeout_of


def _warm_worker(asset_keys: tuple[AssetKey, ...]) -> None:
    """Pool initializer: warm the dominant assets into the worker cache.

    With the plane on this *attaches* read-only zero-copy views to the
    node's segments (built once by the supervisor's
    :func:`_prebuild_plane`) instead of rebuilding a private copy per
    worker — the warm-up cost drops from a full synthesis to an mmap.
    """
    from .runner import load_assets

    for key in asset_keys:
        load_assets(key)


def _prebuild_plane(asset_keys: tuple[AssetKey, ...], sink) -> None:
    """Build the warm set into the node plane before starting the pool.

    One deterministic build in the supervisor instead of a lease race
    among the first wave of workers: every worker then attaches views,
    and a fork-context pool inherits the parent's mappings outright.
    Failures fall through silently — workers simply build private copies.
    """
    from .runner import load_assets

    for key in asset_keys:
        try:
            load_assets(key, metrics=sink)
        except Exception:  # noqa: BLE001 — warm-up must never kill the run
            pass


def pool_chunksize(n_specs: int, workers: int) -> int:
    """Batch size yielding ~4 contiguous chunks per worker.

    The supervised fan-out submits one future per instance (retries and
    quarantine need per-instance failure domains), so this no longer
    feeds a ``pool.map``; it remains the sizing rule for bulk transports
    that do batch (benchmarks, external executors).

    Callers sizing chunks for *batched* replicate execution must count
    group items, not specs: :func:`supervise_instances` computes its
    batch groups **before** the warm-pool asset-key sort reorders
    submission, and each group crosses to a worker as one indivisible
    item — so ``pool_chunksize(len(groups), workers)``, never
    ``pool_chunksize(len(specs), workers)``, and a replicate batch is
    never split across workers by a chunk boundary.
    """
    return max(1, n_specs // (4 * workers))


def supervise_instances(
    specs: list[InstanceSpec],
    *,
    max_workers: int | None = None,
    parallel: bool = True,
    registry=None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    ledger=None,
    on_failure: str = QUARANTINE,
    checkpoint=None,
) -> FanoutResult:
    """Execute instances under supervision; never die mid-batch.

    The resilient core of the fan-out: per-instance futures, retries with
    deterministic backoff, broken-pool rebuild with salvage of completed
    results, and quarantine of specs that exhaust their attempts — the
    batch always returns, with ``result.results[i] is None`` marking
    quarantined positions and ``result.quarantined`` carrying the report.

    Args:
        specs: the instances (order of results matches the input).
        max_workers: pool size; defaults to ``os.cpu_count()`` capped at
            the number of instances.
        parallel: set False for in-process execution (debugging, or when
            the workload is too small to amortise pool start-up).
        registry: :class:`~repro.obs.registry.MetricsRegistry` receiving
            every worker's telemetry dump plus the supervisor's
            ``retry.*`` / ``faults.*`` accounting; defaults to the
            process :func:`~repro.obs.registry.global_registry`.  Dumps
            are merged incrementally as results arrive, so telemetry of
            completed instances survives a mid-batch failure.
        retry: the retry policy (None = single attempt, no backoff; pool
            rebuilds stay active).
        faults: optional fault-injection plan, threaded to every worker.
        ledger: optional run journal; quarantines are recorded as
            ``instance_failed`` events with ``quarantined=True``.
        on_failure: ``"quarantine"`` (default) or ``"raise"``.
        checkpoint: optional
            :class:`~repro.checkpoint.CheckpointPlan`.  When enabled,
            workers snapshot in-flight state every ``plan.every`` ticks
            through the CAS, retried attempts resume from the newest
            valid snapshot instead of tick 0, per-attempt timeouts scale
            to the work remaining, and the result reports
            ``ticks_saved``.  Disabled plans leave execution unchanged.

    Returns:
        A :class:`~repro.resilience.supervisor.FanoutResult` whose
        ``results`` are :class:`InstanceOutcome` (or None), input order.
    """
    from ..obs.registry import global_registry

    sink = registry if registry is not None else global_registry()
    if not specs:
        return supervise_map(_execute_one, [], registry=sink)
    workers = min(max_workers or os.cpu_count() or 1, len(specs))
    ck_enabled = checkpoint is not None and checkpoint.enabled
    ck_saved0 = sink.value("checkpoint.ticks_saved") if ck_enabled else 0
    timeout_of = (_scaled_timeout_of(checkpoint, retry)
                  if ck_enabled and retry is not None else None)

    # Partition into batchable replicate groups BEFORE any warm-pool
    # sorting: the asset-key sort reorders submission, and chunking over
    # already-formed groups is what guarantees a batch is never split
    # across workers (each group crosses as one indivisible item).
    group_idx = (batch_groups(specs) if batching_enabled()
                 else [[i] for i in range(len(specs))])
    multi = [g for g in group_idx if len(g) > 1]
    single_idx = [g[0] for g in group_idx if len(g) == 1]

    if not multi:
        res = _fanout_singles(
            specs, list(range(len(specs))), workers=workers,
            parallel=parallel, sink=sink, retry=retry, faults=faults,
            ledger=ledger, on_failure=on_failure, checkpoint=checkpoint,
            timeout_of=timeout_of)
        if ck_enabled:
            res.ticks_saved = int(
                sink.value("checkpoint.ticks_saved") - ck_saved0)
        return res

    sink.inc("batch.groups", len(multi))

    # ---- phase 1: replicate groups through the batched kernel --------
    group_items = [[specs[i] for i in g] for g in multi]
    group_keys = [f"batch/{_spec_key(gi[0])}+{len(gi) - 1}"
                  for gi in group_items]

    def merge_group(_i: int, res: tuple[list, dict]) -> None:
        entries, dump = res
        sink.merge(dump)
        for entry in entries:
            if entry is not None and entry[0] == "ok":
                sink.merge(entry[1][1])

    fn_group = (functools.partial(_execute_group, checkpoint=checkpoint)
                if checkpoint is not None else _execute_group)
    pool_group = (functools.partial(_execute_group_pooled,
                                    checkpoint=checkpoint)
                  if checkpoint is not None else _execute_group_pooled)

    # Pool whenever the caller asked for parallelism — even a single
    # group: process isolation is what turns a hard worker death into a
    # rebuild-and-salvage instead of taking down the supervisor.
    if parallel and workers > 1:
        g_workers = min(workers, len(group_items))
        order = sorted(range(len(group_items)),
                       key=lambda i: _asset_key(group_items[i][0]))
        freq = Counter(_asset_key(gi[0]) for gi in group_items)
        warm_keys = tuple(
            k for k, _ in freq.most_common(max_preload_assets()))
        if warm_keys and plane_enabled():
            _prebuild_plane(warm_keys, sink)

        def make_group_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=g_workers,
                initializer=_warm_worker,
                initargs=(warm_keys,),
            )

        gres = supervise_map(
            fn_group, group_items, keys=group_keys,
            make_pool=make_group_pool, pool_fn=pool_group,
            submit_order=order, retry=retry, faults=faults,
            on_failure=on_failure, registry=sink, ledger=ledger,
            on_result=merge_group, timeout_of=timeout_of)
        sink.gauge("parallel.workers", g_workers)
    else:
        gres = supervise_map(
            fn_group, group_items, keys=group_keys, retry=retry,
            faults=faults, on_failure=on_failure, registry=sink,
            ledger=ledger, on_result=merge_group)

    results: list = [None] * len(specs)
    quarantined: list[tuple[int, QuarantineRecord]] = []
    evicted: list[tuple[int, BaseException]] = []
    qmap = {rec.key: rec for rec in gres.quarantined}
    for g, gi, gkey, res in zip(multi, group_items, group_keys,
                                gres.results):
        if res is None:
            # The whole group was given up on (repeated pool loss or an
            # unexpected batch-level error — under RAISE the exception
            # already propagated out of supervise_map): expand the group
            # record to per-spec records so the report stays per
            # instance.
            rec = qmap[gkey]
            for pos, spec in zip(g, gi):
                quarantined.append((pos, QuarantineRecord(
                    key=_spec_key(spec), item=spec, error=rec.error,
                    kind=rec.kind, attempts=rec.attempts)))
            continue
        entries, _dump = res
        for pos, entry in zip(g, entries):
            tag, payload = entry
            if tag == "ok":
                results[pos] = payload[0]
            else:
                evicted.append((pos, payload))

    # ---- eviction triage: per-spec retry/quarantine ------------------
    # Mirrors ``_Supervisor.on_error`` for the first (batched) attempt:
    # a transient eviction re-enters the solo fan-out at attempt 1 with
    # one failure charged against its budget; a permanent one (or a
    # one-attempt policy) is quarantined here.
    policy = retry if retry is not None else NO_RETRY_POLICY
    retry_pos: set[int] = set()
    n_evict_retries = 0
    for pos, exc in sorted(evicted, key=lambda pair: pair[0]):
        spec = specs[pos]
        key = _spec_key(spec)
        if isinstance(exc, InjectedFault):
            sink.inc(f"faults.{exc.site}")
        sink.inc("retry.failures")
        kind = classify(exc)
        if kind == PERMANENT or policy.max_attempts <= 1:
            sink.inc("retry.quarantined")
            if ledger is not None:
                ledger.instance_failed(
                    key, error=f"{type(exc).__name__}: {exc}",
                    quarantined=True, kind=kind, attempts=1)
            if on_failure == RAISE:
                raise exc
            quarantined.append((pos, QuarantineRecord(
                key=key, item=spec, error=f"{type(exc).__name__}: {exc}",
                kind=kind, attempts=1)))
            continue
        sink.inc("retry.retries")
        delay = policy.backoff_s(key, 0)
        sink.observe("retry.backoff_s", delay)
        if delay > 0:
            time.sleep(delay)
        n_evict_retries += 1
        retry_pos.add(pos)

    # ---- phase 2: singles plus retried evictions, per-spec futures ---
    solo_idx = sorted(single_idx + list(retry_pos))
    sres = None
    if solo_idx:
        sres = _fanout_singles(
            specs, solo_idx, workers=workers, parallel=parallel,
            sink=sink, retry=retry, faults=faults, ledger=ledger,
            on_failure=on_failure, checkpoint=checkpoint,
            timeout_of=timeout_of,
            start_attempts=[1 if i in retry_pos else 0 for i in solo_idx],
            prior_failures=[1 if i in retry_pos else 0 for i in solo_idx])
        qiter = iter(sres.quarantined)
        for i, outcome in zip(solo_idx, sres.results):
            if outcome is None:
                quarantined.append((i, next(qiter)))
            else:
                results[i] = outcome

    quarantined.sort(key=lambda pair: pair[0])
    return FanoutResult(
        results=results,
        quarantined=[rec for _i, rec in quarantined],
        attempts=gres.attempts + (sres.attempts if sres else 0),
        retries=(gres.retries + n_evict_retries
                 + (sres.retries if sres else 0)),
        pool_rebuilds=(gres.pool_rebuilds
                       + (sres.pool_rebuilds if sres else 0)),
        ticks_saved=(int(sink.value("checkpoint.ticks_saved") - ck_saved0)
                     if ck_enabled else 0),
    )


def _fanout_singles(
    specs: list[InstanceSpec],
    idx: list[int],
    *,
    workers: int,
    parallel: bool,
    sink,
    retry: RetryPolicy | None,
    faults: FaultPlan | None,
    ledger,
    on_failure: str,
    checkpoint=None,
    timeout_of=None,
    start_attempts: list[int] | None = None,
    prior_failures: list[int] | None = None,
) -> FanoutResult:
    """Per-spec supervised fan-out over ``specs[i] for i in idx``.

    The historical one-future-per-instance path, shared by the no-batch
    case and phase 2 of the batched flow (singleton groups plus specs
    evicted from their batch, which arrive with non-zero
    ``start_attempts`` / ``prior_failures`` so their attempt sequence
    continues where the batch left off).  Results come back unpacked
    (outcome or None), in ``idx`` order.
    """
    items = [specs[i] for i in idx]
    keys = [_spec_key(s) for s in items]
    fn_one = (functools.partial(_execute_one, checkpoint=checkpoint)
              if checkpoint is not None else _execute_one)
    pool_one = (functools.partial(_execute_one_pooled, checkpoint=checkpoint)
                if checkpoint is not None else _execute_one_pooled)

    def merge_dump(_i: int, pair: tuple[InstanceOutcome, dict]) -> None:
        sink.merge(pair[1])

    if not parallel or len(items) == 1 or workers <= 1:
        res = supervise_map(
            fn_one, items, keys=keys, retry=retry, faults=faults,
            on_failure=on_failure, registry=sink, ledger=ledger,
            on_result=merge_dump, start_attempts=start_attempts,
            prior_failures=prior_failures)
    else:
        s_workers = min(workers, len(items))
        order = sorted(range(len(items)),
                       key=lambda i: _asset_key(items[i]))
        freq = Counter(_asset_key(s) for s in items)
        warm_keys = tuple(
            k for k, _ in freq.most_common(max_preload_assets()))
        if warm_keys and plane_enabled():
            _prebuild_plane(warm_keys, sink)

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=s_workers,
                initializer=_warm_worker,
                initargs=(warm_keys,),
            )

        res = supervise_map(
            fn_one, items, keys=keys, make_pool=make_pool,
            pool_fn=pool_one, submit_order=order, retry=retry,
            faults=faults, on_failure=on_failure, registry=sink,
            ledger=ledger, on_result=merge_dump,
            start_attempts=start_attempts, prior_failures=prior_failures,
            timeout_of=timeout_of)
        sink.gauge("parallel.workers", s_workers)
    res.results = [pair[0] if pair is not None else None
                   for pair in res.results]
    return res


def run_instances(
    specs: list[InstanceSpec],
    *,
    max_workers: int | None = None,
    parallel: bool = True,
    registry=None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    checkpoint=None,
) -> list[InstanceOutcome]:
    """Execute instances, optionally across a process pool.

    The historical all-or-nothing contract: every spec's outcome, in
    input order, or the first unrecoverable exception.  Internally this
    is :func:`supervise_instances` with ``on_failure="raise"`` — worker
    loss still rebuilds the pool, and a :class:`RetryPolicy` (when given)
    still retries transient failures; only exhaustion propagates.  Night
    orchestration and chaos runs use :func:`supervise_instances` directly
    to get partial results plus a quarantine report instead.

    Args:
        specs: the instances (order of results matches the input).
        max_workers: pool size; defaults to ``os.cpu_count()`` capped at
            the number of instances.
        parallel: set False for in-process execution (debugging, or when
            the workload is too small to amortise pool start-up).
        registry: :class:`~repro.obs.registry.MetricsRegistry` that
            receives every worker's telemetry dump (``runner.*`` and
            aggregated ``engine.*``), merged in the parent; defaults to
            the process :func:`~repro.obs.registry.global_registry`, so
            pool-worker telemetry is never silently lost.
        retry: optional retry policy for transient worker failures.
        faults: optional fault-injection plan (chaos testing).

    Returns:
        One :class:`InstanceOutcome` per spec, in input order.
    """
    res = supervise_instances(
        specs, max_workers=max_workers, parallel=parallel,
        registry=registry, retry=retry, faults=faults, on_failure=RAISE,
        checkpoint=checkpoint)
    return res.results  # type: ignore[return-value] — RAISE means no Nones


def specs_for_design(
    design,
    *,
    n_days: int = 120,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> list[InstanceSpec]:
    """Expand an experiment design into executable instance specs."""
    out: list[InstanceSpec] = []
    for i, (cell, region, rep) in enumerate(design.instances()):
        out.append(InstanceSpec(
            region_code=region,
            params=dict(cell.params),
            n_days=n_days,
            scale=scale,
            seed=seed + 17 * i,
            label=f"{region}-c{cell.index}-r{rep}",
            asset_seed=seed,
        ))
    return out


def gather_ensemble(outcomes: list[InstanceOutcome]) -> np.ndarray:
    """Stack outcomes' confirmed series into an ``(R, T + 1)`` ensemble."""
    if not outcomes:
        raise ValueError("no outcomes to gather")
    return np.vstack([o.confirmed for o in outcomes])
