"""Process-parallel execution of simulation instances.

The production system's per-night throughput comes from running thousands
of independent <cell, region, replicate> simulations concurrently.  At
reproduction scale the same fan-out is available through a process pool:
instances are embarrassingly parallel, each worker builds (and caches) its
own region inputs, and only the small aggregated series cross process
boundaries — the classic scatter/gather layout of the mpi4py guide, with
``ProcessPoolExecutor`` standing in for MPI ranks.

Fan-out is *warm*: specs are executed sorted by their asset key
``(region, scale, asset_seed)`` and handed out in contiguous chunks, so each
worker's per-process asset LRU actually hits instead of thrashing across
regions; a pool initializer pre-loads the dominant asset keys once per
worker so the first instance on every worker starts hot.  Results are
restored to input order before returning.
"""

from __future__ import annotations

import os
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..params import DEFAULT_SCALE, DEFAULT_SEED

#: Cap on asset keys the pool initializer builds per worker: warming the
#: dominant regions is a win, rebuilding every region in every worker is not.
MAX_PRELOAD_ASSETS: int = 4


@dataclass(frozen=True, slots=True)
class InstanceSpec:
    """One simulation instance to execute.

    Attributes mirror the cell-configuration fields the runner needs; the
    spec is small and picklable, which is what lets it cross to workers.
    """

    region_code: str
    params: dict[str, Any]
    n_days: int
    scale: float
    seed: int
    label: str = ""
    asset_seed: int = DEFAULT_SEED  #: population/network seed (fixed per
    #: night: instances share inputs, only the simulation stream varies)


@dataclass(frozen=True, slots=True)
class InstanceOutcome:
    """The gathered result of one instance (small arrays only).

    Attributes:
        spec: the executed spec.
        confirmed: cumulative confirmed series, length ``n_days + 1``.
        attack_rate: fraction ever infected.
        transitions: raw transition-log length (for accounting).
    """

    spec: InstanceSpec
    confirmed: np.ndarray
    attack_rate: float
    transitions: int


def _execute_one(spec: InstanceSpec) -> tuple[InstanceOutcome, dict]:
    """Worker: run one spec; return its outcome plus a telemetry dump.

    Imports happen inside the worker so forked/spawned processes
    initialise cleanly; the per-process ``load_region_assets`` LRU cache
    (inside :func:`~repro.core.runner.execute_spec`) amortises input
    construction across a worker's instances.

    Telemetry that is not embedded in the result object would otherwise
    die with the worker, so each execution fills a fresh registry and
    ships its kind-preserving dump home for the parent to merge.
    """
    from ..obs.registry import MetricsRegistry
    from .runner import execute_spec

    reg = MetricsRegistry()
    outcome = execute_spec(spec, metrics=reg)
    return outcome, reg.dump()


def _asset_key(spec: InstanceSpec) -> tuple[str, float, int]:
    """The key ``load_region_assets`` caches on."""
    return (spec.region_code, spec.scale, spec.asset_seed)


def _warm_worker(asset_keys: tuple[tuple[str, float, int], ...]) -> None:
    """Pool initializer: pre-load the dominant assets into the worker LRU."""
    from .runner import load_region_assets

    for region_code, scale, asset_seed in asset_keys:
        load_region_assets(region_code, scale, asset_seed)


def pool_chunksize(n_specs: int, workers: int) -> int:
    """Batch size for ``pool.map``: ~4 chunks per worker.

    ``chunksize=1`` round-robins specs across workers, which both pays one
    IPC round-trip per instance and interleaves regions so per-worker asset
    caches miss; contiguous chunks of the region-sorted spec list keep each
    worker on one region for a whole chunk.
    """
    return max(1, n_specs // (4 * workers))


def run_instances(
    specs: list[InstanceSpec],
    *,
    max_workers: int | None = None,
    parallel: bool = True,
    registry=None,
) -> list[InstanceOutcome]:
    """Execute instances, optionally across a process pool.

    Args:
        specs: the instances (order of results matches the input).
        max_workers: pool size; defaults to ``os.cpu_count()`` capped at
            the number of instances.
        parallel: set False for in-process execution (debugging, or when
            the workload is too small to amortise pool start-up).
        registry: :class:`~repro.obs.registry.MetricsRegistry` that
            receives every worker's telemetry dump (``runner.*`` and
            aggregated ``engine.*``), merged in the parent; defaults to
            the process :func:`~repro.obs.registry.global_registry`, so
            pool-worker telemetry is never silently lost.

    Returns:
        One :class:`InstanceOutcome` per spec, in input order.
    """
    from ..obs.registry import global_registry

    sink = registry if registry is not None else global_registry()
    if not specs:
        return []
    workers = min(max_workers or os.cpu_count() or 1, len(specs))
    if not parallel or len(specs) == 1 or workers <= 1:
        pairs = [_execute_one(s) for s in specs]
        for _outcome, dump in pairs:
            sink.merge(dump)
        return [outcome for outcome, _dump in pairs]

    order = sorted(range(len(specs)), key=lambda i: _asset_key(specs[i]))
    sorted_specs = [specs[i] for i in order]
    freq = Counter(_asset_key(s) for s in specs)
    warm_keys = tuple(k for k, _ in freq.most_common(MAX_PRELOAD_ASSETS))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_warm_worker,
        initargs=(warm_keys,),
    ) as pool:
        sorted_out = list(pool.map(
            _execute_one, sorted_specs,
            chunksize=pool_chunksize(len(specs), workers)))
    sink.gauge("parallel.workers", workers)
    out: list[InstanceOutcome | None] = [None] * len(specs)
    for pos, (res, dump) in zip(order, sorted_out):
        out[pos] = res
        sink.merge(dump)
    return out  # type: ignore[return-value]


def specs_for_design(
    design,
    *,
    n_days: int = 120,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> list[InstanceSpec]:
    """Expand an experiment design into executable instance specs."""
    out: list[InstanceSpec] = []
    for i, (cell, region, rep) in enumerate(design.instances()):
        out.append(InstanceSpec(
            region_code=region,
            params=dict(cell.params),
            n_days=n_days,
            scale=scale,
            seed=seed + 17 * i,
            label=f"{region}-c{cell.index}-r{rep}",
            asset_seed=seed,
        ))
    return out


def gather_ensemble(outcomes: list[InstanceOutcome]) -> np.ndarray:
    """Stack outcomes' confirmed series into an ``(R, T + 1)`` ensemble."""
    if not outcomes:
        raise ValueError("no outcomes to gather")
    return np.vstack([o.confirmed for o in outcomes])
