"""Experiment designs: the regions-cells-replicates hierarchy (Section V).

"Each workflow is comprised of 51 regions ..., and each region is then
comprised of a number of cells that each denotes one combination of various
parameters used to study a given problem.  Each cell is further comprised
of a number of replicates."

A :class:`Cell` is one parameter combination; an :class:`ExperimentDesign`
is the full 3-level hierarchy.  Factories reproduce the paper's named
designs (Table I and Figures 3-5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..calibration.lhs import ParameterSpace, sample_design
from ..synthpop.regions import ALL_CODES


@dataclass(frozen=True, slots=True)
class Cell:
    """One simulation configuration (a cell of the statistical design).

    Attributes:
        index: cell number within the design.
        params: parameter name -> value for this combination.
    """

    index: int
    params: dict[str, Any] = field(default_factory=dict)

    def label(self) -> str:
        """Compact human-readable cell label."""
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"cell{self.index}[{inner}]"


@dataclass(frozen=True)
class ExperimentDesign:
    """A named regions x cells x replicates design.

    Attributes:
        name: design label ("economic", "prediction", "calibration").
        cells: the parameter combinations.
        regions: region codes covered.
        replicates: replicates per (cell, region).
    """

    name: str
    cells: tuple[Cell, ...]
    regions: tuple[str, ...] = ALL_CODES
    replicates: int = 1

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("a design needs at least one cell")
        if self.replicates < 1:
            raise ValueError("replicates must be >= 1")

    @property
    def n_cells(self) -> int:
        """Number of cells."""
        return len(self.cells)

    @property
    def n_regions(self) -> int:
        """Number of regions."""
        return len(self.regions)

    @property
    def n_simulations(self) -> int:
        """Total simulation instances = cells x regions x replicates."""
        return self.n_cells * self.n_regions * self.replicates

    def instances(self):
        """Iterate (cell, region_code, replicate) triples in order."""
        for cell in self.cells:
            for region in self.regions:
                for rep in range(self.replicates):
                    yield cell, region, rep


def factorial_cells(factors: dict[str, list[Any]]) -> tuple[Cell, ...]:
    """Full factorial expansion of named factors into cells."""
    if not factors:
        raise ValueError("need at least one factor")
    names = list(factors)
    combos = itertools.product(*(factors[n] for n in names))
    return tuple(
        Cell(i, dict(zip(names, combo))) for i, combo in enumerate(combos)
    )


def lhs_cells(
    space: ParameterSpace, n: int, rng: np.random.Generator
) -> tuple[Cell, ...]:
    """LHS-sampled cells over a continuous parameter space."""
    design = sample_design(space, n, rng)
    return tuple(
        Cell(i, dict(zip(space.names, row.tolist())))
        for i, row in enumerate(design)
    )


# --- the paper's named designs ---------------------------------------------------


def economic_design(replicates: int = 15) -> ExperimentDesign:
    """Figure 3: (2 VHI compliances x 3 lockdown durations x 2 lockdown
    compliances) x 51 states x 15 replicates = 9,180 simulations."""
    cells = factorial_cells({
        "vhi_compliance": [0.5, 0.8],
        "lockdown_days": [30, 45, 60],
        "sh_compliance": [0.6, 0.9],
    })
    return ExperimentDesign("economic", cells, ALL_CODES, replicates)


def prediction_design(replicates: int = 15) -> ExperimentDesign:
    """Figure 5: (3 partial reopening levels x 4 contact tracing
    compliances) x 51 states x 15 replicates = 9,180 simulations."""
    cells = factorial_cells({
        "reopen_level": [0.25, 0.5, 0.75],
        "tracing_compliance": [0.2, 0.4, 0.6, 0.8],
    })
    return ExperimentDesign("prediction", cells, ALL_CODES, replicates)


def calibration_design(
    n_cells: int = 300, seed: int = 0
) -> ExperimentDesign:
    """Figure 4: 300 cells x 51 states x 1 replicate = 15,300 simulations.

    Cells sample the case-study-3 parameter space: disease transmissibility
    (TAU), symptomatic fraction (SYMP), and SH / VHI compliances.
    """
    rng = np.random.default_rng(seed)
    cells = lhs_cells(case_study_space(), n_cells, rng)
    return ExperimentDesign("calibration", cells, ALL_CODES, replicates=1)


def case_study_space() -> ParameterSpace:
    """The four calibrated parameters of Figure 15."""
    return ParameterSpace(
        names=("TAU", "SYMP", "SH_COMPLIANCE", "VHI_COMPLIANCE"),
        lower=np.asarray([0.05, 0.35, 0.2, 0.2]),
        upper=np.asarray([0.50, 0.85, 0.9, 0.9]),
    )
