"""Stakeholder weekly report generation.

"We have provided uninterrupted weekly projections and analytical products
to the analysts and senior officials of the state hospital referral regions
(HRR) and local universities ... We also provide our weekly forecasts to
the Centers for Disease Control and Prevention (CDC), and our analytical
products to the Department of Defense (DoD)" (Section I).

This module assembles that weekly product from the pipeline outputs: the
situation summary (observed counts, trend), the calibrated-parameter
readout, the forecast table with uncertainty, the hospital-capacity
assessment, and the review verdict — one plain-text briefing per region,
the artifact a Figure 2 cycle ends with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analytics.capacity import capacity_report
from ..analytics.targets import HOSPITAL_CENSUS, VENTILATOR_CENSUS
from .calibration_wf import CalibrationWorkflowResult
from .prediction_wf import PredictionWorkflowResult
from .review import ReviewOutcome, review_prediction


@dataclass(frozen=True)
class WeeklyReport:
    """One region's weekly briefing.

    Attributes:
        region_code: region covered.
        text: the rendered briefing.
        review: the automated review verdict the briefing embeds.
    """

    region_code: str
    text: str
    review: ReviewOutcome

    @property
    def approved_for_release(self) -> bool:
        """Whether the embedded review accepted the forecast."""
        return self.review.accepted


def _trend_label(history: np.ndarray, window: int = 14) -> str:
    if history.shape[0] < window + 1:
        return "insufficient history"
    recent = float(history[-1] - history[-window - 1])
    prior = float(history[-window - 1]
                  - history[max(0, history.shape[0] - 2 * window - 1)])
    if recent < 1.0:
        return "flat"
    if prior < 1.0:
        return "emerging"
    ratio = recent / prior
    if ratio > 1.25:
        return "accelerating"
    if ratio < 0.75:
        return "decelerating"
    return "steady"


def generate_weekly_report(
    calibration: CalibrationWorkflowResult,
    prediction: PredictionWorkflowResult,
    *,
    horizons: tuple[int, ...] = (7, 14, 28),
) -> WeeklyReport:
    """Render the weekly briefing for one region.

    Args:
        calibration: the week's calibration output.
        prediction: the forecast built on it.
        horizons: forecast rows to include (days ahead).
    """
    region = calibration.region_code
    history = prediction.history
    band = prediction.confirmed_band
    t0 = history.shape[0] - 1
    review = review_prediction(prediction)

    lines: list[str] = []
    lines.append(f"WEEKLY COVID-19 BRIEFING — {region}")
    lines.append("=" * 44)

    # Situation.
    lines.append("SITUATION")
    lines.append(f"  cumulative confirmed (model scale): {history[-1]:,.0f}")
    lines.append(f"  14-day trend: {_trend_label(history)}")

    # Calibration readout.
    lines.append("CALIBRATED PARAMETERS (posterior mean ± sd)")
    post = calibration.posterior.theta_samples
    for k, name in enumerate(calibration.space.names):
        lines.append(f"  {name:<16} {post[:, k].mean():.3f} "
                     f"± {post[:, k].std():.3f}")

    # Forecast.
    lines.append(f"FORECAST (cumulative confirmed, {prediction.n_members}"
                 "-member ensemble)")
    for h in horizons:
        d = min(t0 + h, band.n_days - 1)
        lines.append(
            f"  +{h:>2}d  median {band.median[d]:>9,.0f}   "
            f"95% [{band.lower[d]:,.0f}, {band.upper[d]:,.0f}]")

    # Hospital capacity.
    hosp_band = prediction.target_bands.get(HOSPITAL_CENSUS.name)
    vent_band = prediction.target_bands.get(VENTILATOR_CENSUS.name)
    if hosp_band is not None and vent_band is not None:
        reports = capacity_report(
            hosp_band.upper, vent_band.upper, region,
            scale=calibration.assets.scale)
        lines.append("HOSPITAL CAPACITY (against upper-band demand)")
        for name, rep in reports.items():
            if rep.overflows:
                lines.append(
                    f"  {name}: OVERFLOW risk from day "
                    f"{rep.first_overflow_day} "
                    f"(peak {rep.peak_utilization:.0%} of capacity)")
            else:
                lines.append(
                    f"  {name}: within capacity "
                    f"(peak {rep.peak_utilization:.0%})")

    # Review verdict.
    lines.append("QUALITY REVIEW")
    verdict = "APPROVED for release" if review.accepted else \
        "HELD — recalibration requested"
    lines.append(f"  {verdict}")
    for f in review.failures:
        lines.append(f"  failed check: {f.check} ({f.detail})")

    return WeeklyReport(
        region_code=region,
        text="\n".join(lines),
        review=review,
    )
