"""Dual-cluster orchestration: the Figure 1 combined workflow and the
Figure 2 multi-day timeline.

Each nightly cycle: configurations are generated on the home cluster,
transferred to the remote supercluster via Globus, population databases are
instantiated from snapshots, the packed job array runs inside the 10-hour
window under the FFDT-DC mapping, summaries are generated and transferred
back, and home-cluster analytics close the loop.  The orchestrator builds
this as a :class:`~repro.core.engine.WorkflowEngine` graph with paper-scale
artifact sizes, so the run reproduces both the data-movement ledger
(Table II) and the window-fit check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.globus import GlobusLink
from ..cluster.machines import BRIDGES, NIGHTLY_WINDOW, AccessWindow, ClusterSpec
from ..cluster.popdb import SNAPSHOT_SECONDS_PER_M
from ..cluster.slurm import ScheduleResult
from ..obs.registry import MetricsRegistry
from ..obs.spans import Tracer
from ..params import MB, TB
from ..resilience.degrade import degrade_to_window
from ..resilience.faults import FaultPlan
from ..resilience.retry import RetryPolicy
from ..scheduling.levels import pack_ffdt_dc, pack_nfdt_dc
from ..scheduling.metrics import execute_packing
from ..scheduling.wmp import WMPInstance, make_nightly_instance
from ..store.ledger import RunLedger, replay_ledger
from .accounting import account_workflow
from .designs import ExperimentDesign
from .engine import WorkflowEngine, WorkflowRun
from .tasks import HOME, REMOTE, DataArtifact, WorkflowTask

#: Modelled home-side step durations (seconds), from the Figure 2 cadence.
CONFIG_GENERATION_SECONDS: float = 1800.0
ANALYTICS_SECONDS: float = 7200.0
AGGREGATION_SECONDS: float = 1800.0

#: Size of one cell's per-region configuration bundle (disease model JSON,
#: intervention specs, seeding tables).  Sized so the nightly configuration
#: volume falls in Table II's 100MB-8.7GB daily range: the 12-cell
#: prediction design ships ~0.3GB, the 300-cell calibration design ~7.7GB.
CONFIG_BYTES_PER_CELL: float = 0.5 * MB

#: Modelled checkpoint costs for ``orchestrate_night(checkpoint_every=N)``.
#: Nightly production runs simulate ~4 months of epidemic; one snapshot is
#: the full agent-state dump to the parallel filesystem (seconds at
#: EpiHiper scale).  Interval N thus adds HORIZON//N * WRITE_SECONDS of
#: wall time per task — the window-fit trade the knob exists to expose.
NIGHTLY_HORIZON_DAYS: int = 120
CHECKPOINT_WRITE_SECONDS: float = 5.0


@dataclass(frozen=True)
class NightlyReport:
    """Outcome of one orchestrated night.

    Attributes:
        design: the executed design.
        workflow_run: task-level provenance (modelled timeline).
        schedule: the remote-cluster execution.
        link: the Globus ledger.
        window: the access window used.
        metrics: the night's telemetry (``globus.*``, ``slurm.*``,
            ``night.*`` namespaces).
    """

    design: ExperimentDesign
    workflow_run: WorkflowRun
    schedule: ScheduleResult
    link: GlobusLink
    window: AccessWindow
    night_id: str = ""  #: ledger scope: design, algorithm and seed
    n_resumed: int = 0  #: instances served from the ledger, not re-run
    n_shed: int = 0  #: instances shed by deadline-aware degradation
    shed_task_ids: tuple[str, ...] = ()  #: which ones (journaled too)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def degraded(self) -> bool:
        """Whether the night shed replicates to fit its window."""
        return self.n_shed > 0

    @property
    def fits_window(self) -> bool:
        """Whether the remote makespan fits the nightly window."""
        return self.schedule.makespan <= self.window.duration_seconds

    @property
    def remote_hours(self) -> float:
        """Remote-cluster makespan in hours."""
        return self.schedule.makespan / 3600.0

    @property
    def utilization(self) -> float:
        """Remote utilization of the night."""
        return self.schedule.utilization

    def summary(self) -> str:
        """Human-readable night report."""
        acct = account_workflow(self.design)
        lines = [
            f"design: {self.design.name} "
            f"({acct.n_simulations} simulations)",
            f"remote makespan: {self.remote_hours:.2f}h "
            f"(window {self.window.duration_hours:.0f}h, "
            f"fits: {self.fits_window})",
            f"utilization: {self.utilization:.3f}",
            self.link.summary(),
        ]
        if self.n_resumed:
            lines.insert(1, f"resumed: {self.n_resumed} instances already "
                            f"complete in the ledger, "
                            f"{len(self.schedule.records)} re-executed")
        if self.degraded:
            lines.insert(1, f"degraded: shed {self.n_shed} replicate "
                            f"instances to fit the window")
        return "\n".join(lines)


def orchestrate_night(
    design: ExperimentDesign,
    *,
    cluster: ClusterSpec = BRIDGES,
    window: AccessWindow = NIGHTLY_WINDOW,
    algorithm: str = "FFDT-DC",
    include_onetime_transfer: bool = False,
    seed: int = 0,
    ledger: RunLedger | None = None,
    resume: bool = False,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    degrade: bool = False,
    min_replicates: int = 1,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    checkpoint_every: int = 0,
) -> NightlyReport:
    """Run one full nightly cycle for ``design``.

    Args:
        design: the experiment design to execute.
        cluster: the remote machine.
        window: the nightly access window.
        algorithm: mapping algorithm ("FFDT-DC" or "NFDT-DC").
        include_onetime_transfer: also account the one-time 2TB synthetic
            data staging of Figure 1.
        seed: runtime-draw seed.
        ledger: optional run journal; every completed instance is recorded
            so an interrupted night can be resumed.
        resume: replay ``ledger`` first and re-execute only the instances
            of this night (same design, algorithm and seed) that it does
            not already record as completed.
        tracer: optional span tracer; the (second, accurately-timed)
            workflow pass runs under a ``night:<id>`` root span with one
            ``task:<name>`` span per workflow task and one modelled
            ``instance:<job_id>`` span per scheduled simulation job.
        registry: telemetry sink for the night's ``globus.*`` /
            ``slurm.*`` / ``night.*`` metrics; a fresh registry is created
            (and returned on the report) when omitted.
        degrade: when the projected makespan blows the window, shed the
            highest replicate tiers (deterministically, preserving at
            least ``min_replicates`` per <cell, region>) until the night
            fits; the shed set is journaled as ``work_shed`` events and
            reported on :attr:`NightlyReport.n_shed`.
        min_replicates: per-cell coverage floor when degrading.
        faults: optional fault plan threaded to the Globus link (the
            ``transfer.fail`` site) and the ledger (``ledger.torn``).
        retry: retry budget for faulted transfers.
        checkpoint_every: snapshot interval in simulated days for the
            remote simulation jobs (0 = off).  The nightly timeline is
            modelled, so the knob prices the trade the execution plane
            makes for real: each task pays
            ``NIGHTLY_HORIZON_DAYS // N`` snapshot writes of
            :data:`CHECKPOINT_WRITE_SECONDS`, inflating the projected
            makespan *before* the window-fit check and the degradation
            decision (``night.checkpoint_overhead_s`` on the registry).
    """
    if resume and ledger is None:
        raise ValueError("resume needs a ledger to replay")
    night_id = f"{design.name}:{algorithm}:seed{seed}"
    reg = registry if registry is not None else MetricsRegistry()
    link = GlobusLink("rivanna", "bridges", metrics=reg,
                      faults=faults, retry=retry)
    if faults is not None and ledger is not None and ledger.faults is None:
        ledger.faults = faults
    acct = account_workflow(design)
    instance = make_nightly_instance(
        cells_per_region=design.n_cells,
        replicates=design.replicates,
        regions=design.regions,
        cluster=cluster,
        seed=seed,
    )
    # Resume: the full instance is rebuilt deterministically (same seed →
    # same tasks and runtimes), then the ledger's completed work is
    # subtracted, so only the missing <cell, region> jobs are re-packed.
    n_resumed = 0
    if resume:
        done = replay_ledger(ledger.path).completed("task_id",
                                                    night=night_id)
        remaining = [t for t in instance.tasks if t.task_id not in done]
        n_resumed = len(instance.tasks) - len(remaining)
        instance = WMPInstance(
            tasks=remaining,
            machine_width=instance.machine_width,
            db_caps=instance.db_caps,
        )
    # Checkpoint overhead lands before packing/degradation so both the
    # window-fit projection and the shed decision see the true task costs.
    if checkpoint_every > 0:
        from dataclasses import replace as _replace

        per_task = ((NIGHTLY_HORIZON_DAYS // checkpoint_every)
                    * CHECKPOINT_WRITE_SECONDS)
        instance = WMPInstance(
            tasks=[_replace(t, est_time=t.est_time + per_task)
                   for t in instance.tasks],
            machine_width=instance.machine_width,
            db_caps=instance.db_caps,
        )
        reg.gauge("night.checkpoint_overhead_s",
                  per_task * len(instance.tasks))
    packer = pack_ffdt_dc if algorithm == "FFDT-DC" else pack_nfdt_dc

    # Deadline-aware degradation: project the makespan before building the
    # workflow, and shed the lowest-priority replicates until the night
    # fits.  Deterministic — no RNG — so a degraded night is reproducible.
    n_shed = 0
    shed_task_ids: tuple[str, ...] = ()
    if degrade:
        dres = degrade_to_window(
            instance,
            window_s=window.duration_seconds,
            packer=packer,
            replicates=design.replicates,
            cluster=cluster,
            min_replicates=min_replicates,
            metrics=reg,
        )
        instance = dres.instance
        n_shed = len(dres.shed)
        shed_task_ids = dres.shed_task_ids

    state: dict = {}

    def gen_configs(ctx: dict):
        size = CONFIG_BYTES_PER_CELL * design.n_cells * design.n_regions
        return {"configurations": DataArtifact("configurations", HOME, size)}

    def stage_static(ctx: dict):
        art = DataArtifact("static-networks", HOME, 2 * TB)
        rec = link.transfer("static-networks", "rivanna", "bridges",
                            int(art.size_bytes))
        return {"xfer:static-networks": art.at(REMOTE)}

    def transfer_configs(ctx: dict):
        art = ctx["artifacts"]["configurations"]
        link.transfer("configurations", "rivanna", "bridges",
                      int(art.size_bytes))
        return {"xfer:configurations": art.at(REMOTE)}

    def start_dbs(ctx: dict):
        return None

    def simulate(ctx: dict):
        packed = packer(instance)
        state["schedule"] = execute_packing(packed, cluster=cluster,
                                            metrics=reg)
        if tracer is not None and state.get("trace_instances"):
            # Modelled per-job spans (simulated Slurm clock), nested under
            # the live task:run-simulations span of the traced pass.
            for rec in state["schedule"].records:
                tracer.modelled_span(
                    f"instance:{rec.job.job_id}",
                    start=rec.start,
                    wall_s=rec.finish - rec.start,
                    region=rec.job.region_code,
                    nodes=rec.job.n_nodes,
                    level=rec.job.level,
                )
        return {"raw-output": DataArtifact(
            "raw-output", REMOTE, acct.raw_bytes)}

    def aggregate(ctx: dict):
        return {"summary": DataArtifact(
            "summary-output", REMOTE, acct.summary_bytes)}

    def transfer_back(ctx: dict):
        art = ctx["artifacts"]["summary"]
        link.transfer("summary-output", "bridges", "rivanna",
                      int(art.size_bytes))
        return {"xfer:summary": art.at(HOME)}

    def analyze(ctx: dict):
        return None

    # Mean DB start-up across regions (snapshots, one server per region).
    db_startup = SNAPSHOT_SECONDS_PER_M * 6.0  # ~6M persons per region

    tasks = [
        WorkflowTask("generate-configurations", HOME, gen_configs,
                     est_duration=CONFIG_GENERATION_SECONDS),
        WorkflowTask("transfer-configurations", HOME, transfer_configs,
                     deps=("generate-configurations",), automated=False,
                     est_duration=link.duration_of(int(
                         CONFIG_BYTES_PER_CELL * design.n_cells
                         * design.n_regions))),
        WorkflowTask("start-population-databases", REMOTE, start_dbs,
                     deps=("transfer-configurations",),
                     est_duration=db_startup),
        WorkflowTask("run-simulations", REMOTE, simulate,
                     deps=("start-population-databases",),
                     est_duration=0.0),  # patched below from the schedule
        WorkflowTask("aggregate-output", REMOTE, aggregate,
                     deps=("run-simulations",),
                     est_duration=AGGREGATION_SECONDS),
        WorkflowTask("transfer-summaries", REMOTE, transfer_back,
                     deps=("aggregate-output",), automated=False,
                     est_duration=link.duration_of(int(acct.summary_bytes))),
        WorkflowTask("home-analytics", HOME, analyze,
                     deps=("transfer-summaries",),
                     est_duration=ANALYTICS_SECONDS),
    ]
    if include_onetime_transfer:
        tasks.insert(0, WorkflowTask(
            "stage-static-data", HOME, stage_static, automated=False,
            est_duration=link.duration_of(2 * TB)))
        for t in tasks:
            if t.name == "start-population-databases":
                t.deps = t.deps + ("stage-static-data",)

    # Two-pass execution: first to obtain the schedule, then rebuild the
    # simulate task with its true duration for an accurate timeline.  Only
    # the second pass is traced and only its telemetry is kept — the
    # closures run twice, so the first pass's accounting is discarded.
    engine = WorkflowEngine(tasks)
    run = engine.execute()
    schedule = state["schedule"]
    for t in tasks:
        if t.name == "run-simulations":
            t.est_duration = schedule.makespan
    link.reset_accounting()
    reg.clear("slurm.")
    state["trace_instances"] = True
    if tracer is not None:
        with tracer.span(f"night:{night_id}", design=design.name,
                         algorithm=algorithm,
                         n_instances=len(instance.tasks)):
            run = WorkflowEngine(tasks).execute(tracer=tracer)
    else:
        run = WorkflowEngine(tasks).execute()
    schedule = state["schedule"]

    # Night-level headline numbers for the trace report.
    reg.inc("night.instances", len(schedule.records))
    reg.gauge("night.makespan_s", schedule.makespan)
    reg.gauge("night.window_s", window.duration_seconds)
    reg.gauge("night.fits_window",
              1.0 if schedule.makespan <= window.duration_seconds else 0.0)
    if n_shed:
        reg.inc("night.shed_instances", n_shed)
    reg.gauge("night.degraded", 1.0 if n_shed else 0.0)
    if tracer is not None:
        tracer.metrics(reg, scope="night")

    # Journal the night only after both passes: the closures run twice,
    # and the ledger must record each completed instance exactly once.
    if ledger is not None:
        ledger.run_started(night=night_id, design=design.name,
                           n_instances=len(instance.tasks) + n_resumed,
                           resumed=n_resumed, shed=n_shed)
        for task_id in shed_task_ids:
            ledger.work_shed(task_id, night=night_id)
        for rec in schedule.records:
            ledger.instance_completed(
                rec.job.job_id, task_id=rec.job.job_id, night=night_id,
                wall_s=rec.finish - rec.start)
        ledger.run_completed(night=night_id,
                             makespan_s=schedule.makespan,
                             executed=len(schedule.records),
                             resumed=n_resumed)

    return NightlyReport(
        design=design,
        workflow_run=run,
        schedule=schedule,
        link=link,
        window=window,
        night_id=night_id,
        n_resumed=n_resumed,
        n_shed=n_shed,
        shed_task_ids=shed_task_ids,
        metrics=reg,
    )


def weekly_timeline(reports: list[NightlyReport]) -> str:
    """Render a Figure 2 style multi-day timeline of nightly cycles."""
    lines = ["day  design        remote(h)  fits  util"]
    for day, rep in enumerate(reports):
        lines.append(
            f"{day:<4d} {rep.design.name:<12} {rep.remote_hours:>8.2f}  "
            f"{str(rep.fits_window):<5} {rep.utilization:.3f}")
    return "\n".join(lines)
