"""The calibration workflow (Figure 4 and Case study 3).

Steps, as in the paper:

1. Ingest county-level incidence data (synthetic multi-source surveillance).
2. Generate a prior design of model configurations (LHS over TAU, SYMP and
   the SH / VHI compliances — the Figure 15 parameters).
3. Simulate every cell with EpiHiper and aggregate simulated case counts.
4. Compare against ground truth with the Bayesian GP-emulator framework and
   produce plausible posterior configurations for the prediction workflow.

Cell simulations fan out through :func:`~repro.core.parallel.run_instances`
and are memoized through the result store when one is supplied: a repeated
workflow call with identical arguments serves every instance from the
store, and iterative rounds only pay for configurations they have not seen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..calibration.gpmsa import CalibrationResult, GPMSACalibrator
from ..calibration.lhs import ParameterSpace, sample_design
from ..params import DEFAULT_SCALE, DEFAULT_SEED
from ..store.cas import ContentStore
from ..store.ledger import RunLedger
from ..store.memo import run_instances_memoized
from ..surveillance.truth import GroundTruth
from .designs import case_study_space
from .parallel import InstanceSpec
from .runner import RegionAssets, load_region_assets, observed_series

__all__ = [
    "CalibrationWorkflowResult",
    "align_onset",
    "run_calibration_workflow",
    "run_iterative_calibration",
]


@dataclass(frozen=True)
class CalibrationWorkflowResult:
    """Everything the calibration workflow hands downstream.

    Attributes:
        region_code: calibrated region.
        space: parameter space.
        prior_design: ``(n_cells, d)`` LHS prior configurations.
        sim_series: ``(n_cells, T + 1)`` simulated confirmed curves.
        observed: ``(T + 1,)`` ground truth at simulation scale.
        posterior: the Bayesian calibration output.
        calibrator: the fitted emulator (for Figure 16 bands).
        assets: the region inputs used.
    """

    region_code: str
    space: ParameterSpace
    prior_design: np.ndarray
    sim_series: np.ndarray
    observed: np.ndarray
    posterior: CalibrationResult
    calibrator: GPMSACalibrator
    assets: RegionAssets
    onset_day: int = 0  #: surveillance day aligned with simulation tick 0

    def posterior_configurations(
        self, n: int, rng: np.random.Generator
    ) -> list[dict[str, float]]:
        """``n`` posterior cells as runner-compatible parameter dicts."""
        draws = self.posterior.select_configurations(n, rng)
        return [dict(zip(self.space.names, row.tolist())) for row in draws]


def align_onset(
    truth: GroundTruth, scale: float, n_days: int
) -> tuple[np.ndarray, int]:
    """Align the simulation clock with the outbreak.

    Surveillance leads with a quiet importation period, while simulations
    are seeded "now": tick 0 therefore corresponds to the first
    surveillance day with a meaningful case count (mirroring the paper's
    seeding from current county-level confirmed cases).

    Args:
        truth: the region's surveillance ground truth.
        scale: simulation scale the truth is rescaled to.
        n_days: observation window in ticks.

    Returns:
        ``(observed, onset)``: the ``(n_days + 1,)`` truth window starting
        at the onset day, and the onset day itself (clamped so the window
        fits inside the truth series).
    """
    full = observed_series(truth, scale, truth.n_days - 1)
    nz = np.flatnonzero(full >= 1.0)
    onset = int(nz[0]) if nz.size else 0
    onset = min(onset, full.shape[0] - (n_days + 1))
    return full[onset: onset + n_days + 1], onset


def _design_specs(
    region_code: str,
    space: ParameterSpace,
    design: np.ndarray,
    *,
    n_days: int,
    scale: float,
    seed: int,
    seed_offset: int,
    label_prefix: str,
) -> list[InstanceSpec]:
    """Executable specs for the rows of a calibration design matrix.

    Per-row simulation seeds are ``seed + seed_offset + row`` — exactly
    the sequence the historical serial loops used, so the parallel and
    memoized paths stay bit-identical with them.
    """
    return [
        InstanceSpec(
            region_code=region_code,
            params=dict(zip(space.names, row.tolist())),
            n_days=n_days,
            scale=scale,
            seed=seed + seed_offset + i,
            label=f"{label_prefix}-c{i}",
            asset_seed=seed,
        )
        for i, row in enumerate(design)
    ]


def run_calibration_workflow(
    region_code: str = "VA",
    *,
    n_cells: int = 40,
    n_days: int = 80,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    space: ParameterSpace | None = None,
    mcmc_samples: int = 1200,
    mcmc_burn_in: int = 800,
    store: ContentStore | None = None,
    ledger: RunLedger | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
) -> CalibrationWorkflowResult:
    """Execute the full calibration workflow for one region.

    Args:
        region_code: region to calibrate (case study 3 uses Virginia).
        n_cells: prior design size (the case study uses 100; the paper's
            production calibration runs 300 per region).
        n_days: observation window in ticks.
        scale: simulation scale.
        seed: master seed.
        space: parameter space override (defaults to the Figure 15 space).
        mcmc_samples / mcmc_burn_in: posterior exploration budget.
        store: optional result store; instances already present are served
            instead of simulated (bit-identical either way).
        ledger: optional run journal for the instance events.
        parallel / max_workers: cell fan-out controls.
    """
    space = space or case_study_space()
    rng = np.random.default_rng((seed, 11))
    assets = load_region_assets(region_code, scale, seed)

    prior = sample_design(space, n_cells, rng)
    specs = _design_specs(
        region_code, space, prior, n_days=n_days, scale=scale, seed=seed,
        seed_offset=1000, label_prefix=f"{region_code}-cal")
    outcomes = run_instances_memoized(
        specs, store=store, ledger=ledger,
        parallel=parallel, max_workers=max_workers)
    series = np.vstack([o.confirmed for o in outcomes])

    observed, onset = align_onset(assets.truth, scale, n_days)

    calibrator = GPMSACalibrator(
        space, prior, series, observed, seed=seed + 17)
    posterior = calibrator.calibrate(
        n_samples=mcmc_samples, burn_in=mcmc_burn_in)

    return CalibrationWorkflowResult(
        region_code=region_code,
        space=space,
        prior_design=prior,
        sim_series=series,
        observed=observed,
        posterior=posterior,
        calibrator=calibrator,
        assets=assets,
        onset_day=onset,
    )


def run_iterative_calibration(
    region_code: str = "VA",
    *,
    n_rounds: int = 2,
    n_cells: int = 25,
    n_days: int = 80,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    mcmc_samples: int = 800,
    mcmc_burn_in: int = 600,
    store: ContentStore | None = None,
    ledger: RunLedger | None = None,
    parallel: bool = True,
    max_workers: int | None = None,
) -> list[CalibrationWorkflowResult]:
    """Sequential calibration rounds (Figure 16's "continue calibrating
    with more iterations").

    Round 1 trains on an LHS prior; each later round augments the training
    set with simulations at configurations drawn from the previous round's
    posterior — concentrating emulator accuracy where the posterior lives,
    the standard sequential-design refinement.  Each round's new cells fan
    out together, and with a ``store`` any configuration simulated in an
    earlier call is served instead of re-run.

    Returns one :class:`CalibrationWorkflowResult` per round; successive
    posteriors should tighten (or hold) as the emulator improves.
    """
    if n_rounds < 1:
        raise ValueError("need at least one round")
    results: list[CalibrationWorkflowResult] = []
    space = case_study_space()
    assets = load_region_assets(region_code, scale, seed)
    rng = np.random.default_rng((seed, 29))

    design = sample_design(space, n_cells, rng)
    series_rows: list[np.ndarray] = []
    design_rows: list[np.ndarray] = []
    run_counter = 0

    for round_idx in range(n_rounds):
        specs = _design_specs(
            region_code, space, design, n_days=n_days, scale=scale,
            seed=seed, seed_offset=3000 + run_counter,
            label_prefix=f"{region_code}-iter-r{round_idx}")
        run_counter += len(specs)
        outcomes = run_instances_memoized(
            specs, store=store, ledger=ledger,
            parallel=parallel, max_workers=max_workers)
        series_rows.extend(o.confirmed for o in outcomes)
        design_rows.extend(design)

        all_design = np.vstack(design_rows)
        all_series = np.vstack(series_rows)
        observed, onset = align_onset(assets.truth, scale, n_days)

        calibrator = GPMSACalibrator(
            space, all_design, all_series, observed,
            seed=seed + 17 + round_idx)
        posterior = calibrator.calibrate(
            n_samples=mcmc_samples, burn_in=mcmc_burn_in)
        results.append(CalibrationWorkflowResult(
            region_code=region_code,
            space=space,
            prior_design=all_design,
            sim_series=all_series,
            observed=observed,
            posterior=posterior,
            calibrator=calibrator,
            assets=assets,
            onset_day=onset,
        ))
        # Next round's design: draws from this posterior.
        if round_idx + 1 < n_rounds:
            design = posterior.select_configurations(
                max(5, n_cells // 2), rng)
    return results
