"""The counter-factual / economic workflow (Figure 3, Case study 1).

"Counter-factual analysis refers to the study of outcomes under various
posted scenarios ... Usually such an analysis entails running a large
factorial design and then computing certain outcomes that combine the
output of the simulations and detailed synthetic social network,
demographic and socio-economic data."

The concrete instantiation is the medical-cost study: a 12-cell factorial
(2 VHI compliances x 3 lockdown durations x 2 lockdown compliances), with
county-level seeding from recent confirmed-case counts, whose aggregate
output feeds the economic model on the home cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analytics.aggregate import RegionSummary, summarize
from ..economics.costs import CostParameters, MedicalCosts, compute_medical_costs
from ..params import DEFAULT_SCALE, DEFAULT_SEED
from .designs import Cell, ExperimentDesign, economic_design
from .runner import load_region_assets, run_instance


@dataclass(frozen=True)
class ScenarioOutcome:
    """Aggregated outcome of one factorial cell."""

    cell: Cell
    mean_attack_rate: float
    costs: MedicalCosts
    summaries: tuple[RegionSummary, ...]

    @property
    def total_cost(self) -> float:
        """Paper-scale total medical cost of the scenario."""
        return self.costs.total


@dataclass(frozen=True)
class EconomicWorkflowResult:
    """Output of the economic workflow: one outcome per cell."""

    design: ExperimentDesign
    outcomes: tuple[ScenarioOutcome, ...]

    def cheapest(self) -> ScenarioOutcome:
        """Scenario with the lowest medical cost."""
        return min(self.outcomes, key=lambda o: o.total_cost)

    def most_expensive(self) -> ScenarioOutcome:
        """Scenario with the highest medical cost."""
        return max(self.outcomes, key=lambda o: o.total_cost)

    def cost_table(self) -> str:
        """Per-cell cost report."""
        lines = [f"{'cell':<50} {'total $':>15} {'attack':>7}"]
        for o in self.outcomes:
            lines.append(
                f"{o.cell.label():<50} {o.total_cost:>15,.0f} "
                f"{o.mean_attack_rate:>7.3f}")
        return "\n".join(lines)


def run_economic_workflow(
    *,
    regions: tuple[str, ...] = ("VA",),
    design: ExperimentDesign | None = None,
    replicates: int = 2,
    n_days: int = 120,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    cost_params: CostParameters | None = None,
) -> EconomicWorkflowResult:
    """Execute the economic workflow over a factorial design.

    Args:
        regions: regions simulated (the paper runs all 51; the default
            keeps the example laptop-sized).
        design: factorial design; defaults to the Figure 3 12-cell design
            restricted to ``regions`` and ``replicates``.
        replicates: replicates per cell-region.
        n_days: simulation horizon.
        scale: simulation scale.
        seed: master seed.
        cost_params: unit-cost overrides.
    """
    if design is None:
        base = economic_design(replicates)
        design = ExperimentDesign(base.name, base.cells, regions, replicates)
    outcomes: list[ScenarioOutcome] = []
    run_idx = 0
    for cell in design.cells:
        summaries: list[RegionSummary] = []
        attack_rates: list[float] = []
        cost_acc: dict[str, float] = {
            "outpatient": 0.0, "hospital": 0.0,
            "ventilator": 0.0, "admissions": 0.0}
        for region in design.regions:
            assets = load_region_assets(region, scale, seed)
            for rep in range(design.replicates):
                result, model = run_instance(
                    assets, cell.params, n_days=n_days,
                    seed=seed + 9000 + run_idx)
                run_idx += 1
                summary = summarize(result, model)
                summaries.append(summary)
                attack_rates.append(result.attack_rate(model))
                c = compute_medical_costs(
                    summary, model, scale=scale, params=cost_params)
                cost_acc["outpatient"] += c.outpatient
                cost_acc["hospital"] += c.hospital
                cost_acc["ventilator"] += c.ventilator
                cost_acc["admissions"] += c.admissions
        n_runs = design.n_regions * design.replicates
        costs = MedicalCosts(
            outpatient=cost_acc["outpatient"] / n_runs * design.n_regions,
            hospital=cost_acc["hospital"] / n_runs * design.n_regions,
            ventilator=cost_acc["ventilator"] / n_runs * design.n_regions,
            admissions=cost_acc["admissions"] / n_runs * design.n_regions,
        )
        outcomes.append(ScenarioOutcome(
            cell=cell,
            mean_attack_rate=float(np.mean(attack_rates)),
            costs=costs,
            summaries=tuple(summaries),
        ))
    return EconomicWorkflowResult(design=design, outcomes=tuple(outcomes))
