"""The prediction workflow (Figure 5, Figure 17, Case study 2/3 handoff).

"To make predictions, we run simulations using the model configurations
generated from the calibration workflow, and aggregate individual-level
output to obtain future counts for various forecasting targets ... The
ensemble of the model configurations and the simulation output provides
uncertainty quantification on the predictions."

The workflow optionally expands the posterior configurations with what-if
scenarios (partial reopening levels x contact-tracing compliances, the
Figure 5 factorial) before simulating.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analytics.aggregate import summarize
from ..analytics.ensembles import EnsembleBand, ensemble_band
from ..analytics.targets import ALL_TARGETS, Target, target_series
from ..params import DEFAULT_SEED
from .calibration_wf import CalibrationWorkflowResult
from .runner import confirmed_series, run_instance


@dataclass(frozen=True)
class PredictionWorkflowResult:
    """Prediction-workflow output.

    Attributes:
        region_code: region predicted.
        horizon: forecast ticks simulated.
        confirmed_ensemble: ``(R, horizon + 1)`` cumulative confirmed curves.
        confirmed_band: the Figure 17 median + 95% band.
        target_bands: per forecast target, the ensemble band.
        history: observed series preceding the forecast (sim scale).
        what_if: the scenario labels per ensemble member ("as-is" when no
            expansion was requested).
    """

    region_code: str
    horizon: int
    confirmed_ensemble: np.ndarray
    confirmed_band: EnsembleBand
    target_bands: dict[str, EnsembleBand]
    history: np.ndarray
    what_if: tuple[str, ...]

    @property
    def n_members(self) -> int:
        """Ensemble size."""
        return int(self.confirmed_ensemble.shape[0])


def what_if_expansion(
    base_params: dict[str, float],
    *,
    reopen_levels: tuple[float, ...] = (),
    tracing_compliances: tuple[float, ...] = (),
) -> list[tuple[str, dict[str, float]]]:
    """Expand one configuration with the Figure 5 what-if factorial.

    Returns labelled parameter dicts; with no factors given, the single
    "as-is" configuration is returned.
    """
    if not reopen_levels and not tracing_compliances:
        return [("as-is", dict(base_params))]
    out: list[tuple[str, dict[str, float]]] = []
    levels = reopen_levels or (None,)
    traces = tracing_compliances or (None,)
    for ro in levels:
        for ct in traces:
            params = dict(base_params)
            label_parts = []
            if ro is not None:
                params["reopen_level"] = ro
                label_parts.append(f"RO={ro}")
            if ct is not None:
                params["tracing_compliance"] = ct
                label_parts.append(f"CT={ct}")
            out.append(("+".join(label_parts), params))
    return out


def run_prediction_workflow(
    calibration: CalibrationWorkflowResult,
    *,
    n_configurations: int = 10,
    replicates: int = 3,
    horizon: int = 56,
    reopen_levels: tuple[float, ...] = (),
    tracing_compliances: tuple[float, ...] = (),
    targets: tuple[Target, ...] = ALL_TARGETS,
    seed: int = DEFAULT_SEED,
) -> PredictionWorkflowResult:
    """Simulate posterior configurations forward and build forecast bands.

    Args:
        calibration: output of the calibration workflow.
        n_configurations: posterior cells to simulate.
        replicates: replicates per cell.
        horizon: forecast ticks (Figure 17 shows 8 weeks = 56 days).
        reopen_levels / tracing_compliances: optional what-if factors.
        targets: forecast targets to band.
        seed: RNG seed.
    """
    rng = np.random.default_rng((seed, 23))
    assets = calibration.assets
    configs = calibration.posterior_configurations(n_configurations, rng)

    curves: list[np.ndarray] = []
    labels: list[str] = []
    per_target: dict[str, list[np.ndarray]] = {t.name: [] for t in targets}
    total_days = calibration.observed.shape[0] - 1 + horizon

    member = 0
    for params in configs:
        for label, expanded in what_if_expansion(
            params,
            reopen_levels=reopen_levels,
            tracing_compliances=tracing_compliances,
        ):
            for rep in range(replicates):
                result, model = run_instance(
                    assets, expanded, n_days=total_days,
                    seed=seed + 5000 + member)
                member += 1
                curves.append(confirmed_series(result, model, total_days))
                labels.append(label)
                summary = summarize(result, model)
                for t in targets:
                    per_target[t.name].append(
                        target_series(summary, model, t))

    ensemble = np.vstack(curves)
    return PredictionWorkflowResult(
        region_code=calibration.region_code,
        horizon=horizon,
        confirmed_ensemble=ensemble,
        confirmed_band=ensemble_band(ensemble),
        target_bands={
            name: ensemble_band(np.vstack(series))
            for name, series in per_target.items()
        },
        history=calibration.observed,
        what_if=tuple(labels),
    )
