"""Replicate batching: partition instance specs into batchable groups.

Calibration rounds, ensemble designs, and scenario-service requests are
dominated by *replicate batches*: many :class:`~repro.core.parallel.
InstanceSpec`s that share a region, scale, asset seed, and horizon and
differ only in RNG seed and cell parameters.  Those are exactly the specs
:class:`~repro.epihiper.batch.BatchedSimulation` can advance through one
vectorized tick loop, K lanes at a time, with bit-identical per-replicate
outputs.

This module owns the partitioning policy and nothing else: given a spec
list, return index groups whose members may share one batched kernel.
The execution planes (:func:`~repro.core.parallel.supervise_instances`
and everything stacked on it — memoized runs, calibration workflows, the
scenario service broker) route whole groups to the batched executor and
keep per-instance retry/quarantine semantics by *evicting* faulting specs
from their group rather than failing the group.

Batching is on by default and controlled by two environment variables:

- ``REPRO_BATCH_REPLICATES`` — set to ``0`` / ``false`` / ``off`` / ``no``
  to disable grouping entirely (every spec runs solo, the historical
  path).  Results are bit-identical either way; the knob exists for
  debugging and A/B timing.
- ``REPRO_MAX_BATCH_LANES`` — cap on lanes per batched kernel (default
  64).  Wider batches amortise per-tick dispatch further but grow the
  stacked ``(K, N)`` / ``(K, E)`` working set; past the cache-friendly
  width the speedup flattens.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Sequence

from ..plane.manifest import AssetKey

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .parallel import InstanceSpec

#: Default cap on replicate lanes sharing one batched kernel.
MAX_BATCH_LANES: int = 64

#: Values of ``REPRO_BATCH_REPLICATES`` that disable batching.
_DISABLE_TOKENS: frozenset[str] = frozenset({"0", "false", "off", "no"})


def batching_enabled() -> bool:
    """Whether replicate batching is active for this process.

    On unless ``REPRO_BATCH_REPLICATES`` is set to a disable token
    (``0`` / ``false`` / ``off`` / ``no``, case-insensitive).
    """
    raw = os.environ.get("REPRO_BATCH_REPLICATES")
    if raw is None or not raw.strip():
        return True
    return raw.strip().lower() not in _DISABLE_TOKENS


def max_batch_lanes() -> int:
    """The effective lane cap: ``REPRO_MAX_BATCH_LANES`` or the default."""
    raw = os.environ.get("REPRO_MAX_BATCH_LANES")
    if raw is None or not raw.strip():
        return MAX_BATCH_LANES
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_MAX_BATCH_LANES must be an integer, got {raw!r}")
    if value < 1:
        raise ValueError(
            f"REPRO_MAX_BATCH_LANES must be >= 1, got {value}")
    return value


def group_key(spec: "InstanceSpec") -> tuple[AssetKey, int]:
    """The sharing key two specs must agree on to ride one batch.

    The canonical :class:`~repro.plane.manifest.AssetKey` (which pins the
    shared population/network/surveillance bundle — the same key the
    runner cache, warm preload, and plane manifest use) plus the tick
    horizon.  Cell parameters and seeds deliberately do not participate:
    the batched engine takes heterogeneous models and RNG streams as
    lanes (it falls back to per-instance execution itself, via
    :class:`~repro.epihiper.batch.BatchIncompatible`, in the rare case a
    parameter produces a structurally incompatible model).
    """
    return (AssetKey.of_spec(spec), int(spec.n_days))


def batch_groups(
    specs: Sequence[Any],
    max_lanes: int | None = None,
) -> list[list[int]]:
    """Partition spec indices into batchable groups.

    Groups are keyed by :func:`group_key` and ordered by each key's first
    occurrence in ``specs``; within a group, indices keep input order
    (each lane's seed/params pairing is position-stable, which is what
    lets callers map batched results back to input positions).  Groups
    larger than the lane cap are split into consecutive chunks so no
    single kernel exceeds ``max_lanes`` lanes.

    Args:
        specs: objects with the :func:`group_key` fields.
        max_lanes: lane cap override (default: :func:`max_batch_lanes`).

    Returns:
        Index groups covering ``0..len(specs)-1`` exactly once.  A group
        of size 1 means the spec has no batch partner and should run solo.
    """
    cap = max_lanes if max_lanes is not None else max_batch_lanes()
    by_key: dict[tuple, list[int]] = {}
    for i, spec in enumerate(specs):
        by_key.setdefault(group_key(spec), []).append(i)
    groups: list[list[int]] = []
    for members in by_key.values():
        for lo in range(0, len(members), cap):
            groups.append(members[lo:lo + cap])
    return groups
