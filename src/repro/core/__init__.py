"""The epidemiological workflows (the paper's primary contribution)."""

from .accounting import (
    WorkflowAccounting,
    account_workflow,
    raw_bytes_per_simulation,
    summary_bytes_per_simulation,
    table_i,
)
from .calibration_wf import (
    CalibrationWorkflowResult,
    align_onset,
    run_calibration_workflow,
    run_iterative_calibration,
)
from .counterfactual_wf import (
    EconomicWorkflowResult,
    ScenarioOutcome,
    run_economic_workflow,
)
from .cellconfig import (
    CellConfig,
    configs_from_design,
    execute_config,
    read_config_bundle,
    write_config_bundle,
)
from .designs import (
    Cell,
    ExperimentDesign,
    calibration_design,
    case_study_space,
    economic_design,
    factorial_cells,
    lhs_cells,
    prediction_design,
)
from .engine import WorkflowEngine, WorkflowError, WorkflowRun
from .national import NationalRun, run_national
from .parallel import (
    InstanceOutcome,
    InstanceSpec,
    gather_ensemble,
    run_instances,
    specs_for_design,
)
from .orchestrator import (
    NightlyReport,
    orchestrate_night,
    weekly_timeline,
)
from .prediction_wf import (
    PredictionWorkflowResult,
    run_prediction_workflow,
    what_if_expansion,
)
from .report import WeeklyReport, generate_weekly_report
from .review import (
    ReviewFinding,
    ReviewOutcome,
    calibrate_predict_review_loop,
    review_prediction,
)
from .runner import (
    RegionAssets,
    build_interventions,
    confirmed_series,
    execute_spec,
    load_region_assets,
    observed_series,
    run_instance,
)
from .tasks import HOME, REMOTE, DataArtifact, TaskRun, WorkflowTask

__all__ = [
    "WeeklyReport",
    "generate_weekly_report",
    "ReviewFinding",
    "ReviewOutcome",
    "calibrate_predict_review_loop",
    "review_prediction",
    "InstanceOutcome",
    "InstanceSpec",
    "gather_ensemble",
    "run_instances",
    "specs_for_design",
    "run_iterative_calibration",
    "CellConfig",
    "configs_from_design",
    "execute_config",
    "read_config_bundle",
    "write_config_bundle",
    "NationalRun",
    "run_national",
    "Cell",
    "CalibrationWorkflowResult",
    "DataArtifact",
    "EconomicWorkflowResult",
    "ExperimentDesign",
    "HOME",
    "NightlyReport",
    "PredictionWorkflowResult",
    "REMOTE",
    "RegionAssets",
    "ScenarioOutcome",
    "TaskRun",
    "WorkflowAccounting",
    "WorkflowEngine",
    "WorkflowError",
    "WorkflowRun",
    "WorkflowTask",
    "account_workflow",
    "align_onset",
    "build_interventions",
    "calibration_design",
    "case_study_space",
    "confirmed_series",
    "economic_design",
    "execute_spec",
    "factorial_cells",
    "lhs_cells",
    "load_region_assets",
    "observed_series",
    "orchestrate_night",
    "prediction_design",
    "raw_bytes_per_simulation",
    "run_calibration_workflow",
    "run_economic_workflow",
    "run_instance",
    "run_prediction_workflow",
    "summary_bytes_per_simulation",
    "table_i",
    "weekly_timeline",
    "what_if_expansion",
]
