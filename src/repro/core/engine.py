"""Workflow DAG execution engine.

Executes :class:`~repro.core.tasks.WorkflowTask` graphs in dependency order,
actually running each task's Python action (the scaled-down computation)
while accumulating a *modelled* timeline from the tasks' estimated durations
— the same duality the reproduction uses everywhere: real code paths, paper-
scale accounting.

Site semantics: tasks on the same site serialise on that site's clock;
cross-site data movement must be an explicit transfer task (the engine
verifies that a task only consumes artifacts resident on its own site,
which is the paper's core operational constraint).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tasks import DataArtifact, TaskRun, WorkflowTask


class WorkflowError(RuntimeError):
    """Raised on dependency cycles or site violations."""


@dataclass
class WorkflowRun:
    """Result of executing one workflow graph.

    Attributes:
        runs: per-task provenance, in execution order.
        artifacts: final artifact store (name -> artifact).
        context: the shared context after execution.
        site_clocks: modelled busy-time per site.
    """

    runs: list[TaskRun] = field(default_factory=list)
    artifacts: dict[str, DataArtifact] = field(default_factory=dict)
    context: dict = field(default_factory=dict)
    site_clocks: dict[str, float] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Modelled completion time of the last task."""
        return max((r.finished for r in self.runs), default=0.0)

    def task_run(self, name: str) -> TaskRun:
        """Provenance of one task."""
        for r in self.runs:
            if r.task_name == name:
                return r
        raise KeyError(name)


class WorkflowEngine:
    """Topologically executes a task graph."""

    def __init__(self, tasks: list[WorkflowTask]) -> None:
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise WorkflowError("duplicate task names")
        self.tasks = {t.name: t for t in tasks}
        for t in tasks:
            for dep in t.deps:
                if dep not in self.tasks:
                    raise WorkflowError(f"{t.name} depends on unknown {dep}")
        self.order = self._topo_order()

    def _topo_order(self) -> list[str]:
        indeg = {n: len(t.deps) for n, t in self.tasks.items()}
        out: dict[str, list[str]] = {n: [] for n in self.tasks}
        for t in self.tasks.values():
            for dep in t.deps:
                out[dep].append(t.name)
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: list[str] = []
        while ready:
            n = ready.pop(0)
            order.append(n)
            for m in sorted(out[n]):
                indeg[m] -= 1
                if indeg[m] == 0:
                    ready.append(m)
            ready.sort()
        if len(order) != len(self.tasks):
            raise WorkflowError("dependency cycle detected")
        return order

    def execute(self, context: dict | None = None, *,
                tracer=None) -> WorkflowRun:
        """Run all tasks; returns the provenance and artifact store.

        The context dict is passed to every action; actions read inputs
        from ``context["artifacts"]`` and may stash arbitrary state.

        With a :class:`~repro.obs.spans.Tracer`, each task's action runs
        inside a ``task:<name>`` span carrying the modelled timeline
        (``modelled_start_s`` / ``modelled_s``) as attributes, so spans
        the action emits (per-instance records, say) nest under it.
        """
        run = WorkflowRun(context=dict(context or {}))
        run.context["artifacts"] = run.artifacts
        finish_times: dict[str, float] = {}
        for name in self.order:
            task = self.tasks[name]
            dep_ready = max((finish_times[d] for d in task.deps), default=0.0)
            site_free = run.site_clocks.get(task.site, 0.0)
            start = max(dep_ready, site_free)
            if tracer is not None:
                with tracer.span(f"task:{name}", site=task.site,
                                 modelled_start_s=start,
                                 modelled_s=task.est_duration):
                    produced = task.action(run.context) or {}
            else:
                produced = task.action(run.context) or {}
            for key, artifact in produced.items():
                if not isinstance(artifact, DataArtifact):
                    raise WorkflowError(
                        f"{name} produced non-artifact under {key!r}")
                if artifact.site != task.site and not key.startswith("xfer:"):
                    raise WorkflowError(
                        f"{name} on {task.site} produced {artifact} on "
                        f"{artifact.site} without a transfer")
                run.artifacts[key.removeprefix("xfer:")] = artifact
            finished = start + task.est_duration
            finish_times[name] = finished
            run.site_clocks[task.site] = finished
            run.runs.append(TaskRun(
                task_name=name, site=task.site,
                started=start, finished=finished,
                produced=tuple(produced),
            ))
        return run
