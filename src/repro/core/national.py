"""National-scale multi-region simulation sweeps.

"Our pipeline typically runs 5,000-17,900 simulations per night, covering
the entire US network ... partitioned across all 50 states and Washington
DC" (Section I).  This helper runs one configuration across a set of
regions — each with its own synthetic population, network and surveillance
seeding — and assembles national-level curves, exercising the same
per-region fan-out the nightly workflows perform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..analytics.aggregate import summarize
from ..analytics.targets import Target, target_series
from ..params import DEFAULT_SCALE, DEFAULT_SEED
from ..synthpop.regions import ALL_CODES
from .runner import load_region_assets, run_instance


@dataclass(frozen=True)
class NationalRun:
    """Per-region and national series for one configuration.

    Attributes:
        regions: region codes covered.
        n_days: simulated ticks.
        series: mapping target name -> ``(n_regions, n_days + 1)`` matrix.
        attack_rates: per-region attack rates.
    """

    regions: tuple[str, ...]
    n_days: int
    series: dict[str, np.ndarray]
    attack_rates: dict[str, float]

    def national(self, target_name: str) -> np.ndarray:
        """Sum of a target's series over regions."""
        return self.series[target_name].sum(axis=0)

    def region_series(self, target_name: str, code: str) -> np.ndarray:
        """One region's series for a target."""
        return self.series[target_name][self.regions.index(code)]


def run_national(
    params: dict[str, Any],
    targets: tuple[Target, ...],
    *,
    regions: tuple[str, ...] = ALL_CODES,
    n_days: int = 120,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> NationalRun:
    """Run one configuration across ``regions`` and collect target series.

    Each region gets an independent seeded stream; seeding follows each
    region's own surveillance history, as in the production workflows.
    """
    if not regions:
        raise ValueError("need at least one region")
    mats = {t.name: np.zeros((len(regions), n_days + 1)) for t in targets}
    attacks: dict[str, float] = {}
    for i, code in enumerate(regions):
        assets = load_region_assets(code, scale, seed)
        result, model = run_instance(
            assets, params, n_days=n_days, seed=seed + 100 + i)
        summary = summarize(result, model)
        for t in targets:
            mats[t.name][i] = target_series(summary, model, t)
        attacks[code] = result.attack_rate(model)
    return NationalRun(
        regions=tuple(regions),
        n_days=n_days,
        series=mats,
        attack_rates=attacks,
    )
