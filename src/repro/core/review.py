"""Prediction review: the expert-in-the-loop consistency check (Figure 5).

"The output is aggregated and analyzed by public health domain experts to
identify inconsistencies (which may then trigger the calibration workflow
again).  If the predictions are deemed reasonable, we expand the
configurations with a few possible future what-if scenarios."

This module encodes the review checklist as automated heuristics: the
forecast must join smoothly onto the observed history, its band must be
neither degenerate nor absurdly wide, and the short-horizon trend must be
consistent with the recent observed trend.  The outcome either accepts the
prediction (proceed to what-if expansion) or requests recalibration — the
Figure 4 <-> Figure 5 feedback loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .prediction_wf import PredictionWorkflowResult


@dataclass(frozen=True, slots=True)
class ReviewFinding:
    """One checklist finding."""

    check: str
    passed: bool
    detail: str


@dataclass(frozen=True)
class ReviewOutcome:
    """The review decision.

    Attributes:
        accepted: whether the prediction proceeds to what-if expansion.
        findings: per-check results.
    """

    accepted: bool
    findings: tuple[ReviewFinding, ...] = field(default=())

    @property
    def failures(self) -> list[ReviewFinding]:
        """Checks that failed."""
        return [f for f in self.findings if not f.passed]

    def report(self) -> str:
        """Human-readable review report."""
        lines = [f"review: {'ACCEPT' if self.accepted else 'RECALIBRATE'}"]
        for f in self.findings:
            mark = "ok " if f.passed else "FAIL"
            lines.append(f"  [{mark}] {f.check}: {f.detail}")
        return "\n".join(lines)


def review_prediction(
    prediction: PredictionWorkflowResult,
    *,
    continuity_tolerance: float = 0.35,
    trend_ratio_limit: float = 4.0,
    max_relative_width: float = 6.0,
    trend_window: int = 14,
) -> ReviewOutcome:
    """Run the consistency checklist on a prediction.

    Checks:

    1. **Continuity** — the forecast median at the forecast start is within
       ``continuity_tolerance`` (relative) of the last observed value.
    2. **Trend consistency** — the median's growth over the first
       ``trend_window`` forecast days is within ``trend_ratio_limit`` x of
       the observed growth over the last ``trend_window`` history days
       (in either direction), unless both are negligible.
    3. **Band sanity** — the 95% band is non-degenerate (some members
       differ) and not absurd (width under ``max_relative_width`` x the
       median at the final horizon).
    4. **Monotonicity** — a cumulative-count forecast median never falls.
    """
    band = prediction.confirmed_band
    history = prediction.history
    t0 = history.shape[0] - 1
    findings: list[ReviewFinding] = []

    last_obs = float(history[-1])
    # Ensemble members carry the history prefix, so the join is tested at
    # the first *forecast* day.
    joined = float(band.median[min(t0 + 1, band.n_days - 1)])
    denom = max(last_obs, 1.0)
    rel = abs(joined - last_obs) / denom
    findings.append(ReviewFinding(
        "continuity", rel <= continuity_tolerance,
        f"median on first forecast day {joined:.1f} vs observed "
        f"{last_obs:.1f} ({rel:.0%} off)"))

    obs_growth = float(history[-1] - history[max(0, t0 - trend_window)])
    fc_growth = float(band.median[min(t0 + trend_window,
                                      band.n_days - 1)] - band.median[t0])
    if obs_growth < 1.0 and fc_growth < 1.0:
        trend_ok, detail = True, "both trends negligible"
    elif obs_growth < 1.0:
        trend_ok = fc_growth < denom * 0.5
        detail = (f"observed flat, forecast grows {fc_growth:.1f}")
    else:
        ratio = fc_growth / obs_growth
        trend_ok = (1.0 / trend_ratio_limit) <= max(ratio, 1e-9) \
            <= trend_ratio_limit
        detail = f"forecast/observed growth ratio {ratio:.2f}"
    findings.append(ReviewFinding("trend-consistency", trend_ok, detail))

    final_width = float(band.upper[-1] - band.lower[-1])
    final_median = max(float(band.median[-1]), 1.0)
    degenerate = np.allclose(prediction.confirmed_ensemble,
                             prediction.confirmed_ensemble[0])
    width_ok = (not degenerate) and (
        final_width <= max_relative_width * final_median)
    findings.append(ReviewFinding(
        "band-sanity", width_ok,
        f"final width {final_width:.1f} vs median {final_median:.1f}"
        + (" (degenerate ensemble)" if degenerate else "")))

    mono = bool((np.diff(band.median) >= -1e-9).all())
    findings.append(ReviewFinding(
        "monotonicity", mono, "cumulative median non-decreasing"
        if mono else "median decreases"))

    return ReviewOutcome(
        accepted=all(f.passed for f in findings),
        findings=tuple(findings),
    )


def calibrate_predict_review_loop(
    region_code: str,
    *,
    max_iterations: int = 2,
    n_cells: int = 20,
    n_days: int = 60,
    horizon: int = 28,
    scale: float = 1e-3,
    seed: int = 0,
):
    """The full Figure 4 <-> Figure 5 loop with automated review.

    Calibrates, predicts, reviews; on rejection, recalibrates with a larger
    design (the "continue calibrating with more iterations" path).  Returns
    ``(prediction, outcome, iterations_used)``; the last attempt is
    returned even if the review still rejects it.
    """
    from .calibration_wf import run_calibration_workflow
    from .prediction_wf import run_prediction_workflow

    prediction = None
    outcome = None
    for attempt in range(max_iterations):
        cal = run_calibration_workflow(
            region_code,
            n_cells=n_cells * (attempt + 1),
            n_days=n_days, scale=scale, seed=seed + attempt,
            mcmc_samples=400, mcmc_burn_in=400)
        prediction = run_prediction_workflow(
            cal, n_configurations=5, replicates=2, horizon=horizon,
            seed=seed + 100 + attempt)
        outcome = review_prediction(prediction)
        if outcome.accepted:
            return prediction, outcome, attempt + 1
    return prediction, outcome, max_iterations
