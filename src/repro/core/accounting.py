"""Paper-scale data-volume accounting (Tables I and II).

Reproduces the byte arithmetic the paper reports for each workflow: raw
individual-level output (one 16-byte line per state transition, multi-million
transitions per simulation) and aggregate summaries (days x ~90 health
states x 3 counts per simulation at ~2.7 bytes per packed entry).

The accounting runs at *paper* scale regardless of the simulated scale, so
the reported volumes are comparable to the publication.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.costmodel import paper_scale_nodes
from ..params import BYTES_PER_TRANSITION, fmt_bytes
from .designs import ExperimentDesign

#: Mean state transitions per ever-infected person (Exposed ->
#: (Pre)Symptomatic -> Attended -> Recovered chains average about 4-5 hops).
TRANSITIONS_PER_INFECTION: float = 4.6

#: Cumulative attack rate assumed for raw-output sizing (R0 ~ 2.5 year-long
#: runs infect most of the population).
DEFAULT_ATTACK_RATE: float = 0.70

#: Summary-entry layout of Figures 3-5: days x health states x counts.
SUMMARY_DAYS: int = 365
SUMMARY_HEALTH_STATES: int = 90
SUMMARY_COUNTS: int = 3
#: Effective bytes per packed summary entry (Table I: ~1e9 entries -> 2.5GB).
SUMMARY_BYTES_PER_ENTRY: float = 2.7


@dataclass(frozen=True, slots=True)
class WorkflowAccounting:
    """Volume accounting of one workflow (a Table I row).

    Attributes:
        name: workflow name.
        n_cells / n_regions / n_replicates / n_simulations: design scale.
        raw_bytes: individual-level output volume.
        summary_bytes: aggregate output volume.
        raw_entries: transition-log lines.
        summary_entries: aggregate entries.
    """

    name: str
    n_cells: int
    n_regions: int
    n_replicates: int
    n_simulations: int
    raw_bytes: float
    summary_bytes: float
    raw_entries: float
    summary_entries: float

    def table_row(self) -> str:
        """A Table I style row."""
        return (
            f"{self.name:<12} {self.n_cells:>5} {self.n_regions:>7} "
            f"{self.n_replicates:>10} {self.n_simulations:>12} "
            f"{fmt_bytes(self.raw_bytes):>9} {fmt_bytes(self.summary_bytes):>9}"
        )


#: Bytes per transmission-tree (dendogram) record: the prediction workflow
#: ships annotated transmission trees rather than full transition logs
#: (Figure 5: "12 cells x 51 states x 15 replicates x 1 million
#: transmissions = 9 billion entries, about 1TB").
BYTES_PER_TREE_ENTRY: float = 110.0


def raw_bytes_per_simulation(
    region_code: str,
    attack_rate: float = DEFAULT_ATTACK_RATE,
    *,
    raw_record: str = "transition",
) -> float:
    """Paper-scale raw output bytes of one simulation of one region.

    ``raw_record`` selects the output format: ``"transition"`` (full state
    transition log, calibration and economic workflows) or ``"dendogram"``
    (transmission-tree records, prediction workflows).
    """
    infections = paper_scale_nodes(region_code) * attack_rate
    if raw_record == "transition":
        return infections * TRANSITIONS_PER_INFECTION * BYTES_PER_TRANSITION
    if raw_record == "dendogram":
        return infections * BYTES_PER_TREE_ENTRY
    raise ValueError(f"unknown raw_record {raw_record!r}")


def summary_bytes_per_simulation(n_days: int = SUMMARY_DAYS) -> float:
    """Paper-scale summary bytes of one simulation."""
    entries = n_days * SUMMARY_HEALTH_STATES * SUMMARY_COUNTS
    return entries * SUMMARY_BYTES_PER_ENTRY


def account_workflow(
    design: ExperimentDesign,
    *,
    attack_rate: float = DEFAULT_ATTACK_RATE,
    n_days: int = SUMMARY_DAYS,
    raw_record: str | None = None,
) -> WorkflowAccounting:
    """Compute the Table I row for a design.

    Prediction designs default to dendogram raw output with the shorter
    prediction horizon's attack rate; others to full transition logs.
    """
    if raw_record is None:
        raw_record = "dendogram" if design.name == "prediction" else "transition"
    if raw_record == "dendogram":
        attack_rate = min(attack_rate, 0.17)  # prediction horizons are short
    raw_per_cellrep = sum(
        raw_bytes_per_simulation(code, attack_rate, raw_record=raw_record)
        for code in design.regions
    )
    raw = raw_per_cellrep * design.n_cells * design.replicates
    bytes_per_entry = (BYTES_PER_TRANSITION if raw_record == "transition"
                       else BYTES_PER_TREE_ENTRY)
    raw_entries = raw / bytes_per_entry
    summary_entries = (
        design.n_simulations * n_days * SUMMARY_HEALTH_STATES * SUMMARY_COUNTS
    )
    return WorkflowAccounting(
        name=design.name,
        n_cells=design.n_cells,
        n_regions=design.n_regions,
        n_replicates=design.replicates,
        n_simulations=design.n_simulations,
        raw_bytes=raw,
        summary_bytes=summary_entries * SUMMARY_BYTES_PER_ENTRY,
        raw_entries=raw_entries,
        summary_entries=float(summary_entries),
    )


def table_i(accountings: list[WorkflowAccounting]) -> str:
    """Render Table I."""
    header = (
        f"{'Workflow':<12} {'#Cells':>5} {'#States':>7} "
        f"{'#Replicates':>10} {'#Simulations':>12} {'Raw':>9} {'Summ.':>9}"
    )
    return "\n".join([header] + [a.table_row() for a in accountings])
