"""Shared simulation-instance runner for the workflows.

Translates a design cell's parameters into an EpiHiper configuration — the
"model configurations specify which populations and contact networks to use,
as well as the disease parameters, interventions, initializations, and the
number of days to simulate" (Section III) — and runs it at the configured
scale.  Region inputs (population, network, surveillance) are cached per
(region, scale, seed), mirroring the one-time synthetic-data preparation.

Recognised cell parameters (all optional):

- ``TAU`` — disease transmissibility (model transmissibility).
- ``SYMP`` — symptomatic fraction.
- ``SH_COMPLIANCE`` / ``sh_compliance`` — stay-at-home compliance.
- ``VHI_COMPLIANCE`` / ``vhi_compliance`` — voluntary-home-isolation
  compliance.
- ``lockdown_days`` — SH duration (end = start + days).
- ``reopen_level`` — partial reopening level after SH ends.
- ``tracing_compliance`` — distance-1 contact tracing compliance.
- ``backend`` / ``BACKEND`` — transmission kernel (``dense`` / ``frontier``
  / ``auto``); all choices are result-identical, only speed differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any

import numpy as np

from ..analytics.aggregate import state_cumulative_curve
from ..epihiper.covid import SYMPT, build_covid_model_with_symp_fraction
from ..epihiper.engine import Simulation, SimulationResult
from ..epihiper.initialization import initialize_from_surveillance
from ..epihiper.npi import make_d1ct, make_ro, make_sc, make_sh, make_vhi
from ..params import DEFAULT_SCALE, DEFAULT_SEED
from ..surveillance.truth import GroundTruth, generate_region_truth
from ..synthpop.contacts import ContactNetwork, build_region_network
from ..synthpop.persons import Population

#: Default intervention timing (simulation days).
SC_START: int = 15
SH_START: int = 20
SH_DEFAULT_DAYS: int = 60

#: Fraction of symptomatic cases that surface as confirmed cases.
ASCERTAINMENT: float = 0.25


@dataclass(frozen=True, slots=True)
class RegionAssets:
    """Cached per-region inputs: population, network, surveillance."""

    pop: Population
    net: ContactNetwork
    truth: GroundTruth
    scale: float


@lru_cache(maxsize=64)
def load_region_assets(
    region_code: str,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    truth_days: int = 210,
) -> RegionAssets:
    """Build (or reuse) one region's inputs."""
    pop, net = build_region_network(region_code, scale=scale, seed=seed)
    truth = generate_region_truth(region_code, n_days=truth_days, seed=seed)
    return RegionAssets(pop=pop, net=net, truth=truth, scale=scale)


def build_interventions(params: dict[str, Any]) -> list:
    """Intervention stack implied by a cell's parameters."""
    ivs = [make_sc(start=SC_START)]
    vhi = params.get("VHI_COMPLIANCE", params.get("vhi_compliance"))
    if vhi is not None:
        ivs.append(make_vhi(float(vhi)))
    sh = params.get("SH_COMPLIANCE", params.get("sh_compliance"))
    sh_days = int(params.get("lockdown_days", SH_DEFAULT_DAYS))
    sh_end = SH_START + sh_days
    if sh is not None:
        ivs.append(make_sh(float(sh), start=SH_START, end=sh_end))
    reopen = params.get("reopen_level")
    if reopen is not None:
        ivs.append(make_ro(float(reopen), start=sh_end))
    tracing = params.get("tracing_compliance")
    if tracing is not None:
        ivs.append(make_d1ct(compliance=float(tracing)))
    return ivs


def run_instance(
    assets: RegionAssets,
    params: dict[str, Any],
    *,
    n_days: int,
    seed: int,
) -> tuple[SimulationResult, Any]:
    """Run one (cell, region, replicate) simulation instance.

    Returns the result and the disease model used (needed for analytics).
    """
    tau = float(params.get("TAU", 0.18))
    symp = float(params.get("SYMP", 0.65))
    backend = params.get("backend", params.get("BACKEND", "auto"))
    model = build_covid_model_with_symp_fraction(tau, symp)
    sim = Simulation(
        model, assets.pop, assets.net,
        seed=seed,
        interventions=build_interventions(params),
        backend=backend,
    )
    initialize_from_surveillance(sim, assets.truth.latest_by_county())
    result = sim.run(n_days)
    return result, model


def execute_spec(spec, *, metrics=None) -> "InstanceOutcome":
    """Execute one :class:`~repro.core.parallel.InstanceSpec` end to end.

    This is the unit of work the fan-out and the result store agree on:
    build (or reuse) the region assets, run the simulation, and reduce it
    to the small gathered summary.  Workers call it across process
    boundaries; :func:`repro.store.memo.run_instances_memoized` calls it
    only for specs the store cannot serve.

    Args:
        spec: the instance to execute.
        metrics: registry receiving ``runner.*`` timing plus the run's
            aggregated ``engine.*`` telemetry; defaults to the process
            :func:`~repro.obs.registry.global_registry` (pool workers pass
            a fresh registry and ship its dump back to the parent).
    """
    from ..obs.registry import global_registry
    from .parallel import InstanceOutcome

    reg = metrics if metrics is not None else global_registry()
    with reg.timer("runner.assets_s"):
        assets = load_region_assets(spec.region_code, spec.scale,
                                    spec.asset_seed)
    with reg.timer("runner.simulate_s"):
        result, model = run_instance(
            assets, spec.params, n_days=spec.n_days, seed=spec.seed)
    reg.inc("runner.instances")
    reg.merge(result.metrics)
    return InstanceOutcome(
        spec=spec,
        confirmed=confirmed_series(result, model, spec.n_days),
        attack_rate=result.attack_rate(model),
        transitions=result.log.size,
    )


def confirmed_series(
    result: SimulationResult, model: Any, n_days: int
) -> np.ndarray:
    """Cumulative confirmed-case curve of one run (simulation scale).

    Confirmed cases are ascertained symptomatic cases, matching how the
    calibration compares simulated counts to surveillance.
    """
    sympt = state_cumulative_curve(result.log, model.code(SYMPT), n_days)
    return sympt * ASCERTAINMENT


def observed_series(truth: GroundTruth, scale: float, n_days: int) -> np.ndarray:
    """Ground truth rescaled to simulation scale over ``n_days + 1`` points."""
    cum = truth.state_cumulative()
    if cum.shape[0] < n_days + 1:
        raise ValueError("truth series shorter than requested horizon")
    return cum[: n_days + 1] * scale
