"""Shared simulation-instance runner for the workflows.

Translates a design cell's parameters into an EpiHiper configuration — the
"model configurations specify which populations and contact networks to use,
as well as the disease parameters, interventions, initializations, and the
number of days to simulate" (Section III) — and runs it at the configured
scale.  Region inputs (population, network, surveillance) are cached per
(region, scale, seed), mirroring the one-time synthetic-data preparation.

Recognised cell parameters (all optional):

- ``TAU`` — disease transmissibility (model transmissibility).
- ``SYMP`` — symptomatic fraction.
- ``SH_COMPLIANCE`` / ``sh_compliance`` — stay-at-home compliance.
- ``VHI_COMPLIANCE`` / ``vhi_compliance`` — voluntary-home-isolation
  compliance.
- ``lockdown_days`` — SH duration (end = start + days).
- ``reopen_level`` — partial reopening level after SH ends.
- ``tracing_compliance`` — distance-1 contact tracing compliance.
- ``backend`` / ``BACKEND`` — transmission kernel (``dense`` / ``frontier``
  / ``auto``); all choices are result-identical, only speed differs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Any

import numpy as np

from ..analytics.aggregate import state_cumulative_curve
from ..epihiper.covid import SYMPT, build_covid_model_with_symp_fraction
from ..epihiper.engine import Simulation, SimulationResult
from ..epihiper.initialization import initialize_from_surveillance
from ..epihiper.npi import make_d1ct, make_ro, make_sc, make_sh, make_vhi
from ..params import DEFAULT_SCALE, DEFAULT_SEED
from ..plane.manifest import AssetKey, plane_enabled
from ..surveillance.truth import GroundTruth, generate_region_truth
from ..synthpop.contacts import ContactNetwork, build_region_network
from ..synthpop.persons import Population

#: Default intervention timing (simulation days).
SC_START: int = 15
SH_START: int = 20
SH_DEFAULT_DAYS: int = 60

#: Fraction of symptomatic cases that surface as confirmed cases.
ASCERTAINMENT: float = 0.25


@dataclass(frozen=True, slots=True)
class RegionAssets:
    """Cached per-region inputs: population, network, surveillance."""

    pop: Population
    net: ContactNetwork
    truth: GroundTruth
    scale: float


class _AssetCache:
    """Per-process LRU of asset bundles, bounded by the preload cap.

    Replaces the historical unbounded-in-practice ``lru_cache(maxsize=64)``:
    a worker could pin 64 full bundles while the warm-pool preload cap
    (:func:`~repro.core.parallel.max_preload_assets`) promised at most a
    handful.  The capacity is re-read on every insert, so deployments that
    tune ``REPRO_MAX_PRELOAD_ASSETS`` at runtime shrink (or grow) the
    working set without a restart, and hit/miss/eviction counts publish as
    ``assets.cache.*`` on the process registry.
    """

    def __init__(self) -> None:
        self._entries: OrderedDict[AssetKey, RegionAssets] = OrderedDict()

    @staticmethod
    def capacity() -> int:
        from .parallel import max_preload_assets

        return max(1, max_preload_assets())

    def get(self, key: AssetKey, reg) -> RegionAssets | None:
        assets = self._entries.get(key)
        if assets is None:
            reg.inc("assets.cache.misses")
            return None
        self._entries.move_to_end(key)
        reg.inc("assets.cache.hits")
        return assets

    def put(self, key: AssetKey, assets: RegionAssets, reg) -> None:
        self._entries[key] = assets
        self._entries.move_to_end(key)
        cap = self.capacity()
        while len(self._entries) > cap:
            self._entries.popitem(last=False)
            reg.inc("assets.cache.evictions")

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_ASSET_CACHE = _AssetCache()


def _build_assets(key: AssetKey) -> RegionAssets:
    """Build one region's inputs from scratch (the pre-plane path)."""
    pop, net = build_region_network(key.region_code, scale=key.scale,
                                    seed=key.seed)
    truth = generate_region_truth(key.region_code, n_days=key.truth_days,
                                  seed=key.seed)
    return RegionAssets(pop=pop, net=net, truth=truth, scale=key.scale)


def load_assets(key: AssetKey, *, metrics=None) -> RegionAssets:
    """The region assets for ``key``: cache, plane, or a fresh build.

    Resolution order:

    1. the per-process :class:`_AssetCache` (bounded LRU);
    2. with ``REPRO_PLANE=1``, the node-shared plane — attach (or build
       exactly once per node) read-only zero-copy views;
    3. a private build, exactly the historical behaviour — also the
       silent fallback when the plane is unavailable (no ``/dev/shm``,
       segment too large, lease timeout).
    """
    from ..obs.registry import global_registry

    reg = metrics if metrics is not None else global_registry()
    assets = _ASSET_CACHE.get(key, reg)
    if assets is not None:
        return assets
    if plane_enabled():
        from ..plane.lifecycle import ensure_assets

        assets = ensure_assets(key, lambda: _build_assets(key), metrics=reg)
        if assets is not None:
            _ASSET_CACHE.put(key, assets, reg)
            return assets
    assets = _build_assets(key)
    _ASSET_CACHE.put(key, assets, reg)
    return assets


def load_region_assets(
    region_code: str,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    truth_days: int = 210,
    *,
    metrics=None,
) -> RegionAssets:
    """Build (or reuse) one region's inputs."""
    return load_assets(AssetKey(region_code, scale, seed, truth_days),
                       metrics=metrics)


#: Back-compat with the ``lru_cache`` surface callers relied on.
load_region_assets.cache_clear = _ASSET_CACHE.clear  # type: ignore[attr-defined]


def build_interventions(params: dict[str, Any]) -> list:
    """Intervention stack implied by a cell's parameters."""
    ivs = [make_sc(start=SC_START)]
    vhi = params.get("VHI_COMPLIANCE", params.get("vhi_compliance"))
    if vhi is not None:
        ivs.append(make_vhi(float(vhi)))
    sh = params.get("SH_COMPLIANCE", params.get("sh_compliance"))
    sh_days = int(params.get("lockdown_days", SH_DEFAULT_DAYS))
    sh_end = SH_START + sh_days
    if sh is not None:
        ivs.append(make_sh(float(sh), start=SH_START, end=sh_end))
    reopen = params.get("reopen_level")
    if reopen is not None:
        ivs.append(make_ro(float(reopen), start=sh_end))
    tracing = params.get("tracing_compliance")
    if tracing is not None:
        ivs.append(make_d1ct(compliance=float(tracing)))
    return ivs


@lru_cache(maxsize=128)
def _cached_covid_model(tau: float, symp: float):
    """One COVID model per (TAU, SYMP) cell, reused across replicates.

    Models are immutable once built and construction revalidates the whole
    PTTS, so replicate batches (same cell, different seeds) share one
    instance instead of paying the build per replicate.
    """
    return build_covid_model_with_symp_fraction(tau, symp)


def model_for_params(params: dict[str, Any]):
    """The (cached) disease model a cell's parameters imply."""
    tau = float(params.get("TAU", 0.18))
    symp = float(params.get("SYMP", 0.65))
    return _cached_covid_model(tau, symp)


def prepare_instance(
    assets: RegionAssets,
    params: dict[str, Any],
    *,
    seed: int,
) -> tuple[Simulation, Any]:
    """Build and seed one instance's simulation (not yet run).

    Shared by :func:`run_instance` and the batched executor, which needs
    the constructed-but-unrun lanes to stack them.  Returns the simulation
    and its disease model.
    """
    backend = params.get("backend", params.get("BACKEND", "auto"))
    model = model_for_params(params)
    sim = Simulation(
        model, assets.pop, assets.net,
        seed=seed,
        interventions=build_interventions(params),
        backend=backend,
    )
    initialize_from_surveillance(sim, assets.truth.latest_by_county())
    return sim, model


def run_instance(
    assets: RegionAssets,
    params: dict[str, Any],
    *,
    n_days: int,
    seed: int,
) -> tuple[SimulationResult, Any]:
    """Run one (cell, region, replicate) simulation instance.

    Returns the result and the disease model used (needed for analytics).
    """
    sim, model = prepare_instance(assets, params, seed=seed)
    result = sim.run(n_days)
    return result, model


def execute_spec(spec, *, metrics=None) -> "InstanceOutcome":
    """Execute one :class:`~repro.core.parallel.InstanceSpec` end to end.

    This is the unit of work the fan-out and the result store agree on:
    build (or reuse) the region assets, run the simulation, and reduce it
    to the small gathered summary.  Workers call it across process
    boundaries; :func:`repro.store.memo.run_instances_memoized` calls it
    only for specs the store cannot serve.

    Args:
        spec: the instance to execute.
        metrics: registry receiving ``runner.*`` timing plus the run's
            aggregated ``engine.*`` telemetry; defaults to the process
            :func:`~repro.obs.registry.global_registry` (pool workers pass
            a fresh registry and ship its dump back to the parent).
    """
    from ..obs.registry import global_registry
    from .parallel import InstanceOutcome

    reg = metrics if metrics is not None else global_registry()
    with reg.timer("runner.assets_s"):
        assets = load_region_assets(spec.region_code, spec.scale,
                                    spec.asset_seed, metrics=reg)
    with reg.timer("runner.simulate_s"):
        result, model = run_instance(
            assets, spec.params, n_days=spec.n_days, seed=spec.seed)
    reg.inc("runner.instances")
    reg.merge(result.metrics)
    return InstanceOutcome(
        spec=spec,
        confirmed=confirmed_series(result, model, spec.n_days),
        attack_rate=result.attack_rate(model),
        transitions=result.log.size,
    )


def _checkpoint_manager_for(plan, spec, reg):
    """(manager, instance key) for ``spec`` under ``plan`` (None-safe)."""
    if plan is None or not plan.enabled:
        return None, None
    from ..store.keys import instance_key

    return plan.manager(metrics=reg), instance_key(spec, salt=plan.salt)


def _restore_or_restart(manager, ck_key, sim, rebuild, *, attempt, reg):
    """Resume ``sim`` from the newest applicable checkpoint, or tick 0.

    Walks the checkpoint chain newest-first.  A blob the CAS rejects
    (corrupt — quarantined there) is skipped by the manager; a blob that
    loads but does not *apply* (format bump, changed intervention stack)
    is invalidated and the next-older one is tried, rebuilding the
    simulation first since a failed apply may have partially mutated it.
    Returns ``(sim, start_tick)``.
    """
    from ..checkpoint.format import CheckpointError

    if manager is None:
        return sim, 0
    while True:
        latest = manager.load_latest(ck_key)
        if latest is None:
            return sim, 0
        tick, payload = latest
        try:
            start_tick = sim.restore_state(payload)
        except CheckpointError:
            manager.invalidate(ck_key, tick)
            sim = rebuild()
            continue
        manager.resumed(ck_key, start_tick, attempt=attempt)
        return sim, start_tick


def run_instance_checkpointed(
    spec, assets: RegionAssets, *, plan=None, attempt: int = 0,
    faults=None, allow_exit: bool = False, metrics=None,
) -> tuple[SimulationResult, Any]:
    """Run one spec's simulation under the checkpoint-aware tick loop.

    The driver owns the loop so it can resume from the newest valid
    snapshot, write one every ``plan.every`` ticks, and die
    deterministically at an injected ``worker.crash_mid_run`` tick (hard
    ``os._exit`` in pool workers, a transient :class:`InjectedFault`
    in-process).  With no plan (or ``every=0``) and no crash rule this
    degenerates to the plain loop — no snapshots, no per-tick checks
    beyond two comparisons — and a resumed run's outputs are
    byte-identical to an uninterrupted one.

    Shared by :func:`execute_spec_checkpointed` (the fan-out's unit of
    work) and the CLI's solo ``simulate --checkpoint-every`` path, which
    needs the raw ``(result, model)`` pair like :func:`run_instance`.

    Args:
        spec: the instance to run (``params`` / ``n_days`` / ``seed``).
        assets: the region inputs (callers cache these).
        plan: optional :class:`~repro.checkpoint.manager.CheckpointPlan`.
        attempt: the supervised attempt number (fault-rule matching).
        faults: optional fault plan (``worker.crash_mid_run`` site).
        allow_exit: pool workers die hard; in-process raises instead.
        metrics: registry receiving the ``checkpoint.*`` counters and
            ``runner.ticks_executed``.
    """
    import os as _os

    from ..obs.registry import global_registry
    from ..resilience.faults import CRASH_EXIT_CODE, InjectedFault
    from .parallel import _spec_key

    reg = metrics if metrics is not None else global_registry()
    fault_key = _spec_key(spec)
    crash_tick = (faults.crash_tick(fault_key, attempt)
                  if faults is not None else None)
    manager, ck_key = _checkpoint_manager_for(plan, spec, reg)

    def rebuild():
        sim, _model = prepare_instance(assets, spec.params, seed=spec.seed)
        sim.begin()
        return sim

    sim, model = prepare_instance(assets, spec.params, seed=spec.seed)
    sim.begin()
    sim, _tick = _restore_or_restart(
        manager, ck_key, sim, rebuild, attempt=attempt, reg=reg)
    n_days = spec.n_days
    while sim.tick < n_days:
        if crash_tick is not None and sim.tick == crash_tick:
            if allow_exit:
                _os._exit(CRASH_EXIT_CODE)
            raise InjectedFault(
                "worker.crash_mid_run",
                f"{fault_key} attempt {attempt} tick {sim.tick}")
        sim.step()
        reg.inc("runner.ticks_executed")
        if (manager is not None and sim.tick < n_days
                and sim.tick % plan.every == 0):
            manager.write(ck_key, sim.save_state(), tick=sim.tick)
    return sim.finish(), model


def execute_spec_checkpointed(
    spec, *, plan=None, attempt: int = 0, faults=None,
    allow_exit: bool = False, metrics=None,
) -> "InstanceOutcome":
    """Execute one spec with periodic checkpoints and crash-tick faults.

    The checkpoint-aware twin of :func:`execute_spec`: the tick loop is
    :func:`run_instance_checkpointed`; everything around it (asset
    cache, timers, outcome reduction) matches the plain executor.

    Args:
        spec: the instance to execute.
        plan: optional :class:`~repro.checkpoint.manager.CheckpointPlan`.
        attempt: the supervised attempt number (fault-rule matching).
        faults: optional fault plan (``worker.crash_mid_run`` site).
        allow_exit: pool workers die hard; in-process raises instead.
        metrics: as :func:`execute_spec`; additionally receives the
            ``checkpoint.*`` counters and ``runner.ticks_executed``.
    """
    from ..obs.registry import global_registry
    from .parallel import InstanceOutcome

    reg = metrics if metrics is not None else global_registry()
    with reg.timer("runner.assets_s"):
        assets = load_region_assets(spec.region_code, spec.scale,
                                    spec.asset_seed, metrics=reg)
    with reg.timer("runner.simulate_s"):
        result, model = run_instance_checkpointed(
            spec, assets, plan=plan, attempt=attempt, faults=faults,
            allow_exit=allow_exit, metrics=reg)
    reg.inc("runner.instances")
    reg.merge(result.metrics)
    return InstanceOutcome(
        spec=spec,
        confirmed=confirmed_series(result, model, spec.n_days),
        attack_rate=result.attack_rate(model),
        transitions=result.log.size,
    )


def execute_specs_batched(
    specs: list, *, metrics=None
) -> list[tuple["InstanceOutcome", dict]]:
    """Execute one batchable spec group through the stacked kernel.

    The group executor the fan-out routes replicate batches to: all specs
    must share :func:`~repro.core.batching.group_key` (one region-asset
    build, one horizon).  Lanes are prepared per spec, stacked into a
    :class:`~repro.epihiper.batch.BatchedSimulation`, and advanced K per
    vectorized tick; each spec still gets its own
    :class:`~repro.core.parallel.InstanceOutcome`, bit-identical to a solo
    :func:`execute_spec` run.

    Raises :class:`~repro.epihiper.batch.BatchIncompatible` when the lane
    models cannot share a tick loop — callers fall back to per-spec
    serial execution.

    Args:
        specs: the group (>= 1 spec, shared group key).
        metrics: registry receiving the batch-level telemetry —
            ``runner.assets_s`` / ``runner.batch_setup_s`` /
            ``runner.simulate_s`` timers, the ``batch.size`` gauge, and
            the ``batch.*`` phase timers; defaults to the process
            :func:`~repro.obs.registry.global_registry`.

    Returns:
        One ``(outcome, dump)`` pair per spec, in input order.  The dump
        is the spec's own per-lane telemetry (``runner.instances`` plus
        the lane's ``engine.*`` counters), shaped exactly like a solo
        worker's registry dump so the fan-out's merge path is unchanged.
    """
    from ..epihiper.batch import BatchedSimulation
    from ..obs.registry import MetricsRegistry, global_registry
    from .parallel import InstanceOutcome

    reg = metrics if metrics is not None else global_registry()
    first = specs[0]
    with reg.timer("runner.assets_s"):
        assets = load_region_assets(first.region_code, first.scale,
                                    first.asset_seed, metrics=reg)
    with reg.timer("runner.batch_setup_s"):
        lanes = [prepare_instance(assets, s.params, seed=s.seed)
                 for s in specs]
        batch = BatchedSimulation([sim for sim, _model in lanes],
                                  metrics=reg)
    with reg.timer("runner.simulate_s"):
        results = batch.run(first.n_days)
    out: list[tuple[InstanceOutcome, dict]] = []
    for spec, (_sim, model), result in zip(specs, lanes, results):
        lane_reg = MetricsRegistry()
        lane_reg.inc("runner.instances")
        lane_reg.merge(result.metrics)
        outcome = InstanceOutcome(
            spec=spec,
            confirmed=confirmed_series(result, model, spec.n_days),
            attack_rate=result.attack_rate(model),
            transitions=result.log.size,
        )
        out.append((outcome, lane_reg.dump()))
    return out


def execute_specs_batched_checkpointed(
    specs: list, *, plan=None, attempt: int = 0, faults=None,
    allow_exit: bool = False, metrics=None,
) -> list[tuple["InstanceOutcome", dict]]:
    """Checkpoint-aware twin of :func:`execute_specs_batched`.

    The whole group shares one tick loop, so the failure domain is the
    group: a ``worker.crash_mid_run`` rule firing for *any* lane kills
    the batch at that tick (matching what a real worker death does), and
    resume restores every lane from the greatest tick *common* to all
    lanes' checkpoint chains — a crash mid-write may leave some lanes one
    snapshot ahead, and lanes must re-enter the loop aligned
    (:class:`~repro.epihiper.batch.BatchIncompatible` otherwise).
    Per-lane snapshots are still independent blobs under each lane's own
    instance key, so a group re-formed differently later can still reuse
    them lane by lane.

    Raises :class:`~repro.epihiper.batch.BatchIncompatible` exactly like
    the plain group executor — callers fall back to per-spec serial
    execution (which stays checkpoint-aware through
    :func:`execute_spec_checkpointed`).
    """
    import os as _os

    from ..checkpoint.format import CheckpointError
    from ..checkpoint.manager import checkpoint_blob_key
    from ..epihiper.batch import BatchedSimulation, BatchIncompatible
    from ..obs.registry import MetricsRegistry, global_registry
    from ..resilience.faults import CRASH_EXIT_CODE, InjectedFault
    from .parallel import InstanceOutcome, _spec_key

    reg = metrics if metrics is not None else global_registry()
    first = specs[0]
    n_days = first.n_days
    crash_tick = None
    if faults is not None:
        fired = [t for t in (faults.crash_tick(_spec_key(s), attempt)
                             for s in specs) if t is not None]
        if fired:
            crash_tick = min(fired)
    manager = ck_keys = None
    if plan is not None and plan.enabled:
        from ..store.keys import instance_key

        manager = plan.manager(metrics=reg)
        ck_keys = [instance_key(s, salt=plan.salt) for s in specs]
    with reg.timer("runner.assets_s"):
        assets = load_region_assets(first.region_code, first.scale,
                                    first.asset_seed, metrics=reg)

    def build():
        lanes = [prepare_instance(assets, s.params, seed=s.seed)
                 for s in specs]
        batch = BatchedSimulation([sim for sim, _model in lanes],
                                  metrics=reg)
        batch.begin()
        return lanes, batch

    with reg.timer("runner.batch_setup_s"):
        lanes, batch = build()
    with reg.timer("runner.simulate_s"):
        tick_now = 0
        if manager is not None:
            common = set(manager.ticks(ck_keys[0]))
            for k in ck_keys[1:]:
                common &= set(manager.ticks(k))
            for tick in sorted(common, reverse=True):
                payloads = [manager.store.get(checkpoint_blob_key(k, tick))
                            for k in ck_keys]
                if any(p is None for p in payloads):
                    for k, p in zip(ck_keys, payloads):
                        if p is None:
                            manager.invalidate(k, tick)
                    continue
                try:
                    tick_now = batch.restore_state(payloads)
                except (CheckpointError, BatchIncompatible):
                    for k in ck_keys:
                        manager.invalidate(k, tick)
                    with reg.timer("runner.batch_setup_s"):
                        lanes, batch = build()  # a failed apply may have
                        tick_now = 0            # partially mutated lanes
                    continue
                for k in ck_keys:
                    manager.resumed(k, tick_now, attempt=attempt)
                break
        since_flush = 0
        while tick_now < n_days:
            if crash_tick is not None and tick_now == crash_tick:
                if allow_exit:
                    _os._exit(CRASH_EXIT_CODE)
                raise InjectedFault(
                    "worker.crash_mid_run",
                    f"batch/{_spec_key(first)} attempt {attempt} "
                    f"tick {tick_now}")
            batch.step()
            tick_now += 1
            since_flush += 1
            reg.inc("runner.ticks_executed", len(specs))
            if (manager is not None and tick_now < n_days
                    and tick_now % plan.every == 0):
                snaps = batch.save_state(ticks_since_flush=since_flush)
                since_flush = 0
                for k, snap in zip(ck_keys, snaps):
                    manager.write(k, snap, tick=tick_now)
        batch.flush(since_flush)
        results = batch.finish()
    out: list[tuple[InstanceOutcome, dict]] = []
    for spec, (_sim, model), result in zip(specs, lanes, results):
        lane_reg = MetricsRegistry()
        lane_reg.inc("runner.instances")
        lane_reg.merge(result.metrics)
        outcome = InstanceOutcome(
            spec=spec,
            confirmed=confirmed_series(result, model, spec.n_days),
            attack_rate=result.attack_rate(model),
            transitions=result.log.size,
        )
        out.append((outcome, lane_reg.dump()))
    return out


def confirmed_series(
    result: SimulationResult, model: Any, n_days: int
) -> np.ndarray:
    """Cumulative confirmed-case curve of one run (simulation scale).

    Confirmed cases are ascertained symptomatic cases, matching how the
    calibration compares simulated counts to surveillance.
    """
    sympt = state_cumulative_curve(result.log, model.code(SYMPT), n_days)
    return sympt * ASCERTAINMENT


def observed_series(truth: GroundTruth, scale: float, n_days: int) -> np.ndarray:
    """Ground truth rescaled to simulation scale over ``n_days + 1`` points."""
    cum = truth.state_cumulative()
    if cum.shape[0] < n_days + 1:
        raise ValueError("truth series shorter than requested horizon")
    return cum[: n_days + 1] * scale
