"""Simulation-configuration ("cell") files.

"Both calibration and prediction workflows start by generating simulation
configurations, also known as cells ...  The model configurations specify
which populations and contact networks to use, as well as the disease
parameters, interventions, initializations, and the number of days to
simulate" (Section III).

A :class:`CellConfig` is that artifact: a JSON-serialisable description a
workflow writes on the home cluster, ships to the remote cluster, and the
runner executes.  It is exactly the unit the Figure 1 "daily simulation
configurations (100MB-8.7GB)" transfers carry.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from ..params import DEFAULT_SCALE, DEFAULT_SEED
from ..synthpop.regions import get_region

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CellConfig:
    """One executable simulation configuration.

    Attributes:
        region_code: which population / contact network to use.
        cell_index: position in the design.
        replicate: replicate number.
        n_days: ticks to simulate.
        scale: synthesis scale of the population.
        seed: RNG seed for this instance.
        disease: disease parameters (TAU, SYMP).
        interventions: runner-compatible intervention parameters
            (SH_COMPLIANCE, VHI_COMPLIANCE, lockdown_days, reopen_level,
            tracing_compliance).
        seeding: initialization spec (fraction, minimum seeds).
    """

    region_code: str
    cell_index: int = 0
    replicate: int = 0
    n_days: int = 120
    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    disease: dict[str, float] = field(default_factory=dict)
    interventions: dict[str, Any] = field(default_factory=dict)
    seeding: dict[str, float] = field(
        default_factory=lambda: {"fraction": 0.002, "minimum": 5})

    def __post_init__(self) -> None:
        get_region(self.region_code)  # validates the code
        if self.n_days < 0:
            raise ValueError("n_days must be non-negative")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def instance_id(self) -> str:
        """Unique label: region-cell-replicate."""
        return f"{self.region_code}-c{self.cell_index}-r{self.replicate}"

    def runner_params(self) -> dict[str, Any]:
        """The flat parameter dict the simulation runner understands."""
        params: dict[str, Any] = {}
        params.update(self.disease)
        params.update(self.interventions)
        return params

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict, including the schema version."""
        data = asdict(self)
        data["schema"] = SCHEMA_VERSION
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CellConfig":
        """Rebuild a configuration from :meth:`to_dict` output."""
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported cell-config schema {data.get('schema')!r}")
        fields = {k: v for k, v in data.items() if k != "schema"}
        return cls(**fields)

    def to_json(self) -> str:
        """Pretty-printed JSON text of this configuration."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CellConfig":
        """Rebuild a configuration from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


def write_config_bundle(
    configs: list[CellConfig], path: str | Path
) -> int:
    """Write a nightly configuration bundle (one JSON file, many cells).

    Returns bytes written — the quantity the Globus accounting transfers.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "configs": [c.to_dict() for c in configs],
    }
    text = json.dumps(payload, indent=1, sort_keys=True)
    Path(path).write_text(text)
    return len(text.encode())


def read_config_bundle(path: str | Path) -> list[CellConfig]:
    """Read a configuration bundle back."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError("unsupported bundle schema")
    return [CellConfig.from_dict(d) for d in data["configs"]]


def execute_config(config: CellConfig):
    """Run one cell configuration end-to-end.

    Returns ``(SimulationResult, DiseaseModel)``; seeding follows the
    config's surveillance-proportional spec.
    """
    from .runner import load_region_assets, run_instance

    assets = load_region_assets(config.region_code, config.scale,
                                config.seed)
    return run_instance(
        assets,
        config.runner_params(),
        n_days=config.n_days,
        seed=config.seed + 7919 * config.replicate + config.cell_index,
    )


def configs_from_design(
    design,
    *,
    n_days: int = 120,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> list[CellConfig]:
    """Expand an :class:`~repro.core.designs.ExperimentDesign` into cell
    configurations (the workflow's generation step)."""
    known_disease = {"TAU", "SYMP"}
    out: list[CellConfig] = []
    for cell, region, rep in design.instances():
        disease = {k: v for k, v in cell.params.items()
                   if k in known_disease}
        interventions = {k: v for k, v in cell.params.items()
                         if k not in known_disease}
        out.append(CellConfig(
            region_code=region,
            cell_index=cell.index,
            replicate=rep,
            n_days=n_days,
            scale=scale,
            seed=seed,
            disease=disease,
            interventions=interventions,
        ))
    return out
