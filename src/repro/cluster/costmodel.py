"""Job runtime and memory cost model (Figures 7, 8 and 10).

Maps a <cell, region> simulation task to paper-scale runtime and memory on
the remote cluster.  Constants are calibrated to the shapes the paper
reports:

- a simulation takes "between 100 to 300 time steps of about 3 seconds each
  for a network the size of California" (Section VI), giving per-state
  runtimes between roughly 100 and 1400 seconds (Figure 8);
- runtime grows with intervention complexity, D2CT costing almost +300%
  over the base case (Figure 7 bottom);
- memory is proportional to network size, grows at intervention time
  points, and grows faster at higher compliance (Figure 10).

Network sizes at paper scale are derived from each region's share of the
national population applied to the paper's totals (300M nodes, 7.9B edges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import PAPER_TOTAL_EDGES, PAPER_TOTAL_NODES
from ..synthpop.regions import REGIONS, Region, get_region, total_population
from .machines import BRIDGES, ClusterSpec

#: Runtime multipliers by intervention scenario (Figure 7 bottom): the base
#: case is VHI + SC + SH; D2CT "increases the running time by almost 300%".
INTERVENTION_RUNTIME_FACTOR: dict[str, float] = {
    "base": 1.00,
    "RO": 1.06,
    "TA": 1.09,
    "PS": 1.55,
    "D1CT": 1.95,
    "D2CT": 3.90,
}

#: Seconds of per-step compute per edge per core (calibrated so a
#: California-size step on 6 Bridges nodes costs about 3 seconds).
SECONDS_PER_EDGE_PER_CORE: float = 5.3e-7
#: Fixed per-step synchronisation overhead (seconds).
STEP_OVERHEAD_SECONDS: float = 0.5
#: Resident bytes per paper-scale edge (network + buffers + DB cache).
BYTES_PER_EDGE_RESIDENT: float = 420.0
#: Safety factor between peak memory and the node allocation.
MEMORY_SAFETY: float = 1.0


def paper_scale_nodes(region: Region | str) -> int:
    """Paper-scale node (person) count for a region (Figure 6)."""
    if isinstance(region, str):
        region = get_region(region)
    return round(PAPER_TOTAL_NODES * region.population / total_population())


def paper_scale_edges(region: Region | str) -> int:
    """Paper-scale contact-edge count for a region (Figure 6)."""
    if isinstance(region, str):
        region = get_region(region)
    return round(PAPER_TOTAL_EDGES * region.population / total_population())


@dataclass(frozen=True, slots=True)
class JobEstimate:
    """Cost estimate for one <cell, region> task.

    Attributes:
        region_code: the region.
        scenario: intervention scenario name.
        n_nodes: allocated compute nodes.
        n_steps: simulated ticks.
        runtime_seconds: modelled wall-clock.
        peak_memory_bytes: modelled peak resident memory (across the job).
    """

    region_code: str
    scenario: str
    n_nodes: int
    n_steps: int
    runtime_seconds: float
    peak_memory_bytes: float


class CostModel:
    """Runtime / memory oracle for scheduling experiments."""

    def __init__(self, cluster: ClusterSpec = BRIDGES) -> None:
        self.cluster = cluster

    # -- runtime -------------------------------------------------------------

    def step_seconds(self, region: Region | str, n_nodes: int,
                     scenario: str = "base") -> float:
        """Modelled seconds per simulation step."""
        edges = paper_scale_edges(region)
        cores = n_nodes * self.cluster.cores_per_node
        factor = INTERVENTION_RUNTIME_FACTOR[scenario]
        compute = SECONDS_PER_EDGE_PER_CORE * edges / cores
        return (compute + STEP_OVERHEAD_SECONDS) * factor

    def expected_runtime(
        self,
        region: Region | str,
        n_nodes: int,
        *,
        scenario: str = "base",
        n_steps: int = 200,
    ) -> float:
        """Mean t(T[c, r]) for the mapping problem, in seconds."""
        return n_steps * self.step_seconds(region, n_nodes, scenario)

    def sample_runtime(
        self,
        region: Region | str,
        n_nodes: int,
        rng: np.random.Generator,
        *,
        scenario: str = "base",
        step_range: tuple[int, int] = (100, 300),
    ) -> JobEstimate:
        """A stochastic runtime draw (the Figure 8 across-cell variance).

        Randomness enters through the step count ("usually requires between
        100 to 300 time steps") and a lognormal machine-noise factor
        (Section V: randomness within the computation, triggered
        interventions, processor and database noise).
        """
        if isinstance(region, str):
            region = get_region(region)
        n_steps = int(rng.integers(step_range[0], step_range[1] + 1))
        noise = rng.lognormal(0.0, 0.12)
        runtime = n_steps * self.step_seconds(region, n_nodes, scenario) * noise
        return JobEstimate(
            region_code=region.code,
            scenario=scenario,
            n_nodes=n_nodes,
            n_steps=n_steps,
            runtime_seconds=float(runtime),
            peak_memory_bytes=float(self.memory_series(region, 0.7, n_steps).max()),
        )

    # -- memory -------------------------------------------------------------

    def base_memory_bytes(self, region: Region | str) -> float:
        """Initial resident memory: proportional to the contact network."""
        return paper_scale_edges(region) * BYTES_PER_EDGE_RESIDENT

    def memory_series(
        self,
        region: Region | str,
        compliance: float,
        n_steps: int,
        *,
        intervention_steps: tuple[int, ...] = (30, 90),
        growth_per_intervention: float = 0.35,
    ) -> np.ndarray:
        """Modelled memory trajectory over a run (Figure 10).

        Memory steps up when interventions trigger at fixed time points, by
        an amount proportional to compliance ("higher compliance and,
        therefore, more scheduled changes to the system state require more
        memory"), on top of a slow drift from accumulating output buffers.
        """
        if not 0.0 <= compliance <= 1.0:
            raise ValueError("compliance must be in [0, 1]")
        base = self.base_memory_bytes(region)
        t = np.arange(n_steps, dtype=np.float64)
        mem = np.full(n_steps, base)
        for k, step in enumerate(intervention_steps):
            bump = growth_per_intervention * compliance * base / (k + 1)
            mem += bump * (t >= step)
        mem *= 1.0 + 0.0005 * t  # output buffers
        return mem

    # -- node sizing -------------------------------------------------------------

    def min_nodes(self, region: Region | str) -> int:
        """Smallest node count whose memory fits the worst-case job."""
        peak = self.memory_series(region, 1.0, 300).max() * MEMORY_SAFETY
        return max(1, int(np.ceil(peak / self.cluster.ram_per_node_bytes)))


def network_size_table() -> list[tuple[str, int, int]]:
    """(code, nodes, edges) at paper scale for all regions, Figure 6 order."""
    rows = []
    for code in sorted(REGIONS, key=lambda c: REGIONS[c].population):
        rows.append((code, paper_scale_nodes(code), paper_scale_edges(code)))
    return rows
