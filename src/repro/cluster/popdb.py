"""Population-database servers with connection caps (Sections III-V).

The production system loads each region's synthetic population into a
PostgreSQL server ("for design reasons, but also to avoid the cost of
parsing and reading files from the file system during simulations"), one
server per population, instantiated from pre-built snapshots at run time.
"The number of simultaneous connections to the database are upper bounded
for technology and efficiency reasons" — the constraint that turns the
workflow mapping problem into DB-WMP.

This in-memory stand-in enforces exactly that constraint and reproduces the
query surface the simulations need (trait lookup by person id), plus
snapshot save/instantiate accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..synthpop.persons import Population

#: Default per-server simultaneous connection cap B(T[r]).
DEFAULT_MAX_CONNECTIONS: int = 48

#: Modelled snapshot instantiation time (seconds) per million persons —
#: "to speed up the start of the population databases, snapshots of the
#: databases are generated when the populations are initially created".
SNAPSHOT_SECONDS_PER_M: float = 30.0
COLD_LOAD_SECONDS_PER_M: float = 600.0


class ConnectionLimitExceeded(RuntimeError):
    """Raised when a task would exceed the server's connection cap."""


@dataclass
class DBConnection:
    """A live client connection; release it when the task finishes."""

    server: "PopulationDatabase"
    task_id: str
    closed: bool = False

    def close(self) -> None:
        """Release the slot back to the server."""
        if not self.closed:
            self.server._release(self)
            self.closed = True

    def __enter__(self) -> "DBConnection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PopulationDatabase:
    """One region's population server.

    Args:
        pop: the population served.
        max_connections: simultaneous connection cap.
        from_snapshot: whether start-up used a snapshot (fast path).
    """

    def __init__(
        self,
        pop: Population,
        *,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        from_snapshot: bool = True,
    ) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be positive")
        self.pop = pop
        self.region_code = pop.region_code
        self.max_connections = max_connections
        self.from_snapshot = from_snapshot
        self._live: list[DBConnection] = []
        self.peak_connections = 0
        self.total_queries = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def startup_seconds(self) -> float:
        """Modelled start-up latency (snapshot vs cold CSV load)."""
        millions = self.pop.size / 1e6
        rate = (SNAPSHOT_SECONDS_PER_M if self.from_snapshot
                else COLD_LOAD_SECONDS_PER_M)
        return max(1.0, millions * rate)

    # -- connections ------------------------------------------------------------

    @property
    def active_connections(self) -> int:
        """Currently open connections."""
        return len(self._live)

    def connect(self, task_id: str) -> DBConnection:
        """Open a connection; raises when the cap would be exceeded."""
        if len(self._live) >= self.max_connections:
            raise ConnectionLimitExceeded(
                f"{self.region_code}: cap {self.max_connections} reached")
        conn = DBConnection(self, task_id)
        self._live.append(conn)
        self.peak_connections = max(self.peak_connections, len(self._live))
        return conn

    def _release(self, conn: DBConnection) -> None:
        self._live.remove(conn)

    # -- query surface ------------------------------------------------------------

    def query_traits(
        self, conn: DBConnection, pids: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Trait lookup by person id (the simulation's run-time access)."""
        if conn.closed or conn.server is not self:
            raise RuntimeError("query on a closed or foreign connection")
        pids = np.asarray(pids, dtype=np.int64)
        self.total_queries += 1
        return {
            "hid": self.pop.hid[pids],
            "age": self.pop.age[pids],
            "age_group": self.pop.age_group[pids],
            "gender": self.pop.gender[pids],
            "county": self.pop.county[pids],
        }

    def query_county_members(
        self, conn: DBConnection, county: int
    ) -> np.ndarray:
        """Person ids living in ``county`` (seeding queries)."""
        if conn.closed:
            raise RuntimeError("query on a closed connection")
        self.total_queries += 1
        return self.pop.pid[self.pop.county == county]


@dataclass
class DatabaseFleet:
    """One server per region, each pinned to its own compute node (Step 1
    of the mapping heuristic: "Split the overall database so that we have
    one database per region ... each such database occupies one node")."""

    servers: dict[str, PopulationDatabase] = field(default_factory=dict)

    def add(self, db: PopulationDatabase) -> None:
        """Register a server (one per region)."""
        if db.region_code in self.servers:
            raise ValueError(f"duplicate server for {db.region_code}")
        self.servers[db.region_code] = db

    @property
    def nodes_used(self) -> int:
        """Compute nodes occupied by database servers."""
        return len(self.servers)

    def connect(self, region_code: str, task_id: str) -> DBConnection:
        """Connect a task to its region's server."""
        return self.servers[region_code].connect(task_id)

    def max_parallel_tasks(self, region_code: str) -> int:
        """The DB-WMP bound B(T[r]) for a region."""
        return self.servers[region_code].max_connections
