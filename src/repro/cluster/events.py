"""Minimal discrete-event simulation core for the cluster substrate.

A deterministic event loop over a priority queue: events fire in (time,
sequence) order, handlers may schedule further events.  Used by the Slurm
scheduler simulation and the Globus transfer model.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..obs.registry import MetricsRegistry


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    handler: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventLoop:
    """A deterministic discrete-event clock."""

    def __init__(self, *, metrics: MetricsRegistry | None = None) -> None:
        self._queue: list[_Event] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        #: ``events.*`` volume accounting (the registry is the source of
        #: truth; :attr:`events_processed` is the legacy view of it).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.metrics.counter("events.processed")

    @property
    def events_processed(self) -> int:
        """Events fired so far (reads ``events.processed``)."""
        return int(self.metrics.value("events.processed"))

    def schedule(self, delay: float, handler: Callable[[], None]) -> _Event:
        """Schedule ``handler`` to run ``delay`` time units from now.

        Returns a token usable with :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        ev = _Event(self.now + delay, next(self._counter), handler)
        heapq.heappush(self._queue, ev)
        return ev

    def schedule_at(self, time: float, handler: Callable[[], None]) -> _Event:
        """Schedule ``handler`` at an absolute time (>= now)."""
        return self.schedule(time - self.now, handler)

    def cancel(self, event: _Event) -> None:
        """Cancel a pending event (no-op if already fired)."""
        event.cancelled = True

    def run(self, until: float | None = None) -> float:
        """Process events until the queue drains (or past ``until``).

        Returns the final clock value.
        """
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                return self.now
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self.now = ev.time
            self.metrics.inc("events.processed")
            ev.handler()
        return self.now

    @property
    def pending(self) -> int:
        """Number of uncancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)
