"""Failure injection for the cluster substrate (resilience studies).

The paper's pipeline ran "for over 30 weeks without interruption", which
requires tolerating the failures a 720-node allocation and a wide-area
transfer path actually produce.  This module injects the three realistic
failure classes into the substrate and provides the recovery policies the
operations playbook implies:

- **node failures** during the nightly window: affected jobs are requeued
  and rerun (EpiHiper replicates are idempotent);
- **transfer interruptions**: Globus-style checksum-restart retries;
- **database connection exhaustion**: queue-and-retry at dispatch instead
  of job failure.

All randomness is driven by an explicit generator so failure scenarios are
reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .globus import GlobusLink, TransferRecord
from .machines import BRIDGES, ClusterSpec
from .slurm import Job, JobRecord, ScheduleResult


@dataclass(frozen=True, slots=True)
class FailureEvent:
    """One injected failure."""

    kind: str  #: "node" | "transfer" | "db"
    time: float
    detail: str


@dataclass(frozen=True)
class FaultyRunResult:
    """Outcome of a failure-injected schedule execution.

    Attributes:
        schedule: the completed schedule (all jobs eventually finished).
        failures: injected failure events.
        reruns: number of job attempts beyond the first.
        wasted_node_seconds: node-time consumed by killed attempts.
    """

    schedule: ScheduleResult
    failures: list[FailureEvent]
    reruns: int
    wasted_node_seconds: float

    @property
    def overhead_fraction(self) -> float:
        """Wasted node-time relative to useful node-time."""
        useful = self.schedule.busy_node_seconds
        return self.wasted_node_seconds / useful if useful > 0 else 0.0


class FaultySlurmSimulator:
    """Backfill execution with Poisson node failures and rerun recovery.

    Each running job fails independently at rate
    ``node_mttf_hours ** -1 * n_nodes`` (a node loss kills the whole MPI
    job); failed jobs return to the queue and rerun from scratch.  The
    simulation is event-driven, like the fault-free scheduler.
    """

    def __init__(
        self,
        cluster: ClusterSpec = BRIDGES,
        *,
        db_caps: dict[str, int] | None = None,
        reserved_nodes: int = 0,
        node_mttf_hours: float = 2000.0,
        max_attempts: int = 5,
        rng: np.random.Generator | None = None,
    ) -> None:
        if node_mttf_hours <= 0:
            raise ValueError("node_mttf_hours must be positive")
        self.cluster = cluster
        self.db_caps = dict(db_caps or {})
        self.n_available = cluster.n_nodes - reserved_nodes
        self.fail_rate_per_node = 1.0 / (node_mttf_hours * 3600.0)
        self.max_attempts = max_attempts
        self.rng = rng or np.random.default_rng(0)

    def _failure_time(self, job: Job) -> float:
        """Exponential time-to-failure for a job's node set (inf if none)."""
        rate = self.fail_rate_per_node * job.n_nodes
        draw = self.rng.exponential(1.0 / rate)
        return draw

    def run(self, jobs: list[Job]) -> FaultyRunResult:
        """Execute ``jobs`` with failure injection until all complete."""
        pending: list[Job] = list(jobs)
        attempts: dict[str, int] = {j.job_id: 0 for j in jobs}
        running: list[tuple[float, int, Job, float, bool]] = []
        # heap entries: (event_time, seq, job, start_time, is_failure)
        records: list[JobRecord] = []
        failures: list[FailureEvent] = []
        region_live: dict[str, int] = {}
        region_peak: dict[str, int] = {}
        free = self.n_available
        now = 0.0
        seq = 0
        reruns = 0
        wasted = 0.0

        def can_start(job: Job) -> bool:
            if job.n_nodes > free:
                return False
            cap = self.db_caps.get(job.region_code)
            return cap is None or region_live.get(job.region_code, 0) < cap

        def start(job: Job) -> None:
            nonlocal free, seq
            attempts[job.job_id] += 1
            free -= job.n_nodes
            region_live[job.region_code] = (
                region_live.get(job.region_code, 0) + 1)
            region_peak[job.region_code] = max(
                region_peak.get(job.region_code, 0),
                region_live[job.region_code])
            ttf = self._failure_time(job)
            if ttf < job.runtime and attempts[job.job_id] < self.max_attempts:
                heapq.heappush(running, (now + ttf, seq, job, now, True))
            else:
                heapq.heappush(running, (now + job.runtime, seq, job, now,
                                         False))
            seq += 1

        def dispatch() -> None:
            nonlocal pending
            min_width = min((j.n_nodes for j in pending), default=0)
            remaining = []
            for idx, job in enumerate(pending):
                if free < min_width:
                    remaining.extend(pending[idx:])
                    break
                if can_start(job):
                    start(job)
                else:
                    remaining.append(job)
            pending = remaining

        dispatch()
        while running:
            t, _s, job, started, failed = heapq.heappop(running)
            now = t
            free += job.n_nodes
            region_live[job.region_code] -= 1
            if failed:
                reruns += 1
                wasted += job.n_nodes * (now - started)
                failures.append(FailureEvent(
                    "node", now,
                    f"{job.job_id} lost a node after "
                    f"{now - started:.0f}s (attempt "
                    f"{attempts[job.job_id]})"))
                pending.append(job)  # requeue at the back
            else:
                records.append(JobRecord(job, started, now))
            dispatch()
            if not running and pending:
                raise RuntimeError("faulty scheduler stalled")

        schedule = ScheduleResult(
            records=records,
            makespan=now,
            n_nodes_available=self.n_available,
            peak_region_concurrency=region_peak,
        )
        return FaultyRunResult(
            schedule=schedule,
            failures=failures,
            reruns=reruns,
            wasted_node_seconds=wasted,
        )


@dataclass
class FlakyGlobusLink(GlobusLink):
    """A transfer link whose transfers fail mid-flight and restart.

    Each transfer fails independently with ``failure_probability``; a
    failed attempt wastes a uniformly random fraction of its duration and
    is retried (Globus' checksum-restart behaviour), up to ``max_retries``.
    """

    failure_probability: float = 0.0
    max_retries: int = 5
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0))
    retry_log: list[FailureEvent] = field(default_factory=list)

    def transfer(self, name, src, dst, size_bytes, *, now=0.0):
        """Transfer with interruption-restart retries (see class doc)."""
        base = self.duration_of(size_bytes)
        elapsed = 0.0
        # The initial attempt plus max_retries retries: max_retries + 1
        # chances to succeed, matching the class doc ("retried ... up to
        # max_retries").  range(max_retries) allowed one retry too few.
        for attempt in range(self.max_retries + 1):
            if self.rng.random() >= self.failure_probability:
                break
            wasted = base * float(self.rng.uniform(0.1, 0.9))
            elapsed += wasted
            self.retry_log.append(FailureEvent(
                "transfer", now + elapsed,
                f"{name} interrupted on attempt {attempt + 1}"))
        else:
            raise RuntimeError(
                f"transfer {name!r} failed {self.max_retries + 1} times "
                f"(initial attempt + {self.max_retries} retries)")
        rec = TransferRecord(
            name=name, src=src, dst=dst, size_bytes=size_bytes,
            started_at=now, duration=elapsed + base)
        self.records.append(rec)
        return rec


class QueueingDatabase:
    """Connection acquisition that queues instead of failing.

    Wraps a :class:`~repro.cluster.popdb.PopulationDatabase`-style cap: an
    acquire beyond the cap records the wait and succeeds once a slot frees
    (modelled timing; callers supply the current time).
    """

    def __init__(self, max_connections: int) -> None:
        if max_connections < 1:
            raise ValueError("max_connections must be positive")
        self.max_connections = max_connections
        self._release_times: list[float] = []
        self._clock = float("-inf")  #: latest ``now`` seen (monotonic guard)
        self.waits: list[float] = []

    def acquire(self, now: float, hold_seconds: float) -> float:
        """Acquire a slot at ``now`` for ``hold_seconds``.

        Returns the actual start time (>= now; later when queued).

        ``now`` inputs must be non-decreasing across calls: slots released
        before an earlier ``now`` have already been discarded, so a clock
        that jumps backwards would acquire against a future state.  A
        regressing ``now`` is clamped to the latest time seen (the caller
        keeps a consistent queue, at the cost of a conservatively late
        start); a negative ``hold_seconds`` is an error.
        """
        if hold_seconds < 0:
            raise ValueError("hold_seconds must be non-negative")
        now = max(now, self._clock)
        self._clock = now
        heap = self._release_times
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        if len(heap) < self.max_connections:
            start = now
        else:
            start = heapq.heappop(heap)  # wait for the earliest release
        self.waits.append(start - now)
        heapq.heappush(heap, start + hold_seconds)
        return start

    @property
    def total_wait(self) -> float:
        """Seconds spent queueing across all acquisitions."""
        return float(sum(self.waits))
