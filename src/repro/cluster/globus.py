"""Globus-style data transfer between the two clusters (Section IV).

"The data transfer between the home cluster and remote super-computing
cluster utilizes the Globus platform."  This model reproduces the transfer
timing and volume accounting of Figure 1 / Table II: endpoints with a
bandwidth and per-transfer startup latency, a manual-initiation delay (the
paper starts configuration transfers manually), and a ledger of everything
moved in each direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.registry import MetricsRegistry
from ..params import GB, MB, TB, fmt_bytes
from ..resilience.faults import FaultPlan, InjectedFault
from ..resilience.retry import RetryPolicy, TransientError

#: Effective wide-area bandwidth between UVA and PSC (bytes/second).
DEFAULT_BANDWIDTH: float = 1.2 * GB  # ~10 Gbit/s effective
#: Per-transfer checksum/startup overhead.
STARTUP_SECONDS: float = 20.0


@dataclass(frozen=True, slots=True)
class TransferRecord:
    """One completed transfer."""

    name: str
    src: str
    dst: str
    size_bytes: int
    started_at: float
    duration: float

    @property
    def finished_at(self) -> float:
        """Completion time."""
        return self.started_at + self.duration


@dataclass
class GlobusLink:
    """A bidirectional transfer link between two endpoints.

    Args:
        endpoint_a / endpoint_b: endpoint names ("rivanna", "bridges").
        bandwidth: bytes per second.
        manual_delay: seconds of human latency before a manually started
            transfer actually begins (Figure 2's human-effort steps).
        metrics: registry the link publishes into — ``globus.transfers``,
            ``globus.bytes_out`` (a→b), ``globus.bytes_in`` (b→a) and the
            ``globus.transfer_s`` timer; pass a shared registry to fold
            transfer accounting into a night's telemetry.
        faults: optional fault plan; a firing ``transfer.fail`` rule makes
            an attempt of :meth:`transfer` raise, exercising the retry
            loop below (keyed by transfer name, so retries of the same
            transfer advance the rule's attempt count).
        retry: attempts budget for faulted transfers; defaults to one
            attempt (no retries) when omitted.
    """

    endpoint_a: str
    endpoint_b: str
    bandwidth: float = DEFAULT_BANDWIDTH
    manual_delay: float = 0.0
    records: list[TransferRecord] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    faults: FaultPlan | None = None
    retry: RetryPolicy | None = None

    def duration_of(self, size_bytes: int) -> float:
        """Modelled wall-clock for one transfer of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        return STARTUP_SECONDS + self.manual_delay + size_bytes / self.bandwidth

    def transfer(
        self, name: str, src: str, dst: str, size_bytes: int, *,
        now: float = 0.0,
    ) -> TransferRecord:
        """Execute (account) a transfer and append it to the ledger.

        Under an active ``transfer.fail`` fault the call retries up to the
        link's :class:`RetryPolicy` budget (``max_attempts``, default one
        attempt), counting ``faults.transfer.fail`` per injected failure
        and ``globus.retries`` per re-attempt; exhausting the budget
        raises :class:`~repro.resilience.retry.TransientError`.  Only the
        successful attempt is accounted — a retried transfer appears once
        in the ledger, exactly as a re-submitted Globus task would.
        """
        if {src, dst} - {self.endpoint_a, self.endpoint_b}:
            raise ValueError(f"unknown endpoint in {src!r}->{dst!r}")
        if src == dst:
            raise ValueError("src and dst must differ")
        if self.faults is not None and self.faults.active("transfer.fail"):
            attempts = self.retry.max_attempts if self.retry else 1
            for attempt in range(attempts):
                if not self.faults.fires("transfer.fail", name, attempt):
                    break
                self.metrics.inc("faults.transfer.fail")
                if attempt + 1 >= attempts:
                    raise TransientError(
                        f"transfer {name!r} {src}->{dst} failed "
                        f"{attempts} attempt(s)") from InjectedFault(
                            "transfer.fail", name)
                self.metrics.inc("globus.retries")
        rec = TransferRecord(
            name=name, src=src, dst=dst, size_bytes=size_bytes,
            started_at=now, duration=self.duration_of(size_bytes))
        self.records.append(rec)
        self.metrics.inc("globus.transfers")
        self.metrics.inc("globus.bytes_out" if src == self.endpoint_a
                         else "globus.bytes_in", size_bytes)
        self.metrics.observe("globus.transfer_s", rec.duration)
        return rec

    def reset_accounting(self) -> None:
        """Clear the ledger and its registry mirror (re-planned runs)."""
        self.records.clear()
        self.metrics.clear("globus.")

    # -- ledger ----------------------------------------------------------------

    def bytes_moved(self, src: str | None = None,
                    dst: str | None = None) -> int:
        """Total bytes transferred, optionally filtered by direction."""
        return sum(
            r.size_bytes for r in self.records
            if (src is None or r.src == src)
            and (dst is None or r.dst == dst))

    def total_transfer_time(self) -> float:
        """Sum of all transfer durations (serial execution model)."""
        return sum(r.duration for r in self.records)

    def summary(self) -> str:
        """Human-readable per-direction ledger."""
        a, b = self.endpoint_a, self.endpoint_b
        lines = [
            f"{a} -> {b}: {fmt_bytes(self.bytes_moved(src=a, dst=b))}",
            f"{b} -> {a}: {fmt_bytes(self.bytes_moved(src=b, dst=a))}",
            f"transfers: {len(self.records)}, "
            f"total time {self.total_transfer_time() / 3600:.2f}h",
        ]
        return "\n".join(lines)


#: Canonical artefact sizes of Table II (min/max of each daily range).
TABLE_II_SIZES: dict[str, tuple[int, int]] = {
    "traits_and_networks": (2 * TB, 2 * TB),  # one-time
    "daily_configurations": (100 * MB, int(8.7 * GB)),
    "raw_outputs": (20 * GB, int(3.5 * TB)),
    "summarized_outputs": (120 * MB, 70 * GB),
}
