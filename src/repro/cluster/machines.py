"""Cluster hardware models (Table II).

The two machines of the paper: the remote super-computing cluster (Bridges,
Pittsburgh Supercomputing Center) and the home cluster (Rivanna, University
of Virginia), with the allocation sizes, core counts and memory of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import GB, NIGHTLY_WINDOW_HOURS


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """Static description of one cluster allocation.

    Attributes mirror Table II rows.
    """

    name: str
    n_nodes: int
    cpus_per_node: int
    cores_per_cpu: int
    ram_per_node_bytes: int
    cpu_model: str
    interconnect: str
    filesystem: str

    @property
    def cores_per_node(self) -> int:
        """Usable cores on one node."""
        return self.cpus_per_node * self.cores_per_cpu

    @property
    def total_cores(self) -> int:
        """Cores across the allocation."""
        return self.n_nodes * self.cores_per_node

    @property
    def total_ram_bytes(self) -> int:
        """Memory across the allocation."""
        return self.n_nodes * self.ram_per_node_bytes

    def node_hours(self, hours: float) -> float:
        """Node-hours available in a window of ``hours``."""
        return self.n_nodes * hours

    def core_hours(self, hours: float) -> float:
        """Core-hours available in a window of ``hours``."""
        return self.total_cores * hours


#: Table II, left column: Bridges HPC Facility allocation.
BRIDGES = ClusterSpec(
    name="bridges",
    n_nodes=720,
    cpus_per_node=2,
    cores_per_cpu=14,
    ram_per_node_bytes=128 * GB,
    cpu_model="Intel Haswell E5-2695 v3",
    interconnect="Intel Omnipath-1",
    filesystem="Lustre",
)

#: Table II, right column: Rivanna HPC Facility allocation.
RIVANNA = ClusterSpec(
    name="rivanna",
    n_nodes=50,
    cpus_per_node=2,
    cores_per_cpu=20,
    ram_per_node_bytes=384 * GB,
    cpu_model="Intel Xeon Gold 6148",
    interconnect="Mellanox ConnectX-5",
    filesystem="Lustre",
)


@dataclass(frozen=True, slots=True)
class AccessWindow:
    """The nightly exclusive window on the remote cluster.

    Section I: "we have had exclusive access to the cluster, with over
    20,000 cores, for 10 hours a day (from 10 pm to 8 am)".
    """

    start_hour: float = 22.0
    duration_hours: float = NIGHTLY_WINDOW_HOURS

    @property
    def end_hour(self) -> float:
        """Window end as an hour-of-day (may exceed 24)."""
        return self.start_hour + self.duration_hours

    @property
    def duration_seconds(self) -> float:
        """Window length in seconds."""
        return self.duration_hours * 3600.0

    def contains(self, hour_of_day: float) -> bool:
        """Whether an hour-of-day (0-24) falls inside the window."""
        h = hour_of_day % 24.0
        s = self.start_hour % 24.0
        e = self.end_hour % 24.0
        if s <= e:
            return s <= h < e
        return h >= s or h < e


NIGHTLY_WINDOW = AccessWindow()
