"""Slurm batch-script generation (Section IV).

"Next, scripts are used to submit Slurm job arrays" — the production
pipeline materialises its schedule as sbatch files.  This module renders a
packed workload into the scripts the remote cluster would receive: one
job-array script per (region, node-category) group plus the database
server launch script, with the dependency structure the mapping algorithm's
levels imply.  The output is plain text, so the artefacts are inspectable
and the generation is testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - circular-import guard: this module
    # lives in repro.cluster, which repro.scheduling imports at runtime.
    from ..scheduling.levels import PackingResult
    from ..scheduling.wmp import MappingTask

SBATCH_TEMPLATE = """#!/bin/bash
#SBATCH --job-name={name}
#SBATCH --nodes={nodes}
#SBATCH --ntasks-per-node={tasks_per_node}
#SBATCH --time={walltime}
#SBATCH --array=0-{array_max}{dependency}

module load intel-mpi
CONFIG_DIR=$1
CELLS=({cells})
CELL=${{CELLS[$SLURM_ARRAY_TASK_ID]}}

srun epihiper \\
    --config "$CONFIG_DIR/${{CELL}}.json" \\
    --population-db "pgsql://localhost/{region}" \\
    --network "/scratch/networks/{region}/chunks" \\
    --output "/scratch/output/${{CELL}}"
"""

DB_TEMPLATE = """#!/bin/bash
#SBATCH --job-name=popdb-{region}
#SBATCH --nodes=1
#SBATCH --time={walltime}

pg_ctl start -D "/scratch/db-snapshots/{region}" \\
    -o "--max_connections={max_connections}"
"""


def _walltime(seconds: float) -> str:
    total = int(seconds) + 59
    h, rem = divmod(total, 3600)
    m = rem // 60
    return f"{h:02d}:{m:02d}:00"


@dataclass(frozen=True, slots=True)
class JobScript:
    """One rendered sbatch file."""

    filename: str
    content: str

    def write(self, directory: str | Path) -> Path:
        """Write the script to ``directory``; returns the path."""
        path = Path(directory) / self.filename
        path.write_text(self.content)
        return path


def database_script(
    region_code: str, *, max_connections: int = 48,
    walltime_seconds: float = 36_000.0,
) -> JobScript:
    """The per-region PostgreSQL snapshot-launch script."""
    content = DB_TEMPLATE.format(
        region=region_code.lower(),
        walltime=_walltime(walltime_seconds),
        max_connections=max_connections,
    )
    return JobScript(f"popdb_{region_code.lower()}.sbatch", content)


def array_script(
    region_code: str,
    tasks: list[MappingTask],
    *,
    cores_per_node: int = 28,
    level: int | None = None,
    depends_on: str | None = None,
    safety_factor: float = 1.5,
) -> JobScript:
    """A job-array script for one region's tasks (optionally one level).

    Args:
        region_code: the region whose DB the array connects to.
        tasks: the array elements.
        cores_per_node: MPI ranks per node.
        level: packing level (embedded in the job name).
        depends_on: job name this array must wait for (level barriers).
        safety_factor: walltime margin over the slowest task.
    """
    if not tasks:
        raise ValueError("an array needs at least one task")
    nodes = tasks[0].n_nodes
    if any(t.n_nodes != nodes for t in tasks):
        raise ValueError("array elements must share a node count")
    name = f"epi-{region_code.lower()}"
    if level is not None:
        name += f"-l{level}"
    walltime = max(t.est_time for t in tasks) * safety_factor
    dependency = ""
    if depends_on:
        dependency = f"\n#SBATCH --dependency=afterok:{depends_on}"
    content = SBATCH_TEMPLATE.format(
        name=name,
        nodes=nodes,
        tasks_per_node=cores_per_node,
        walltime=_walltime(walltime),
        array_max=len(tasks) - 1,
        dependency=dependency,
        cells=" ".join(t.task_id for t in tasks),
        region=region_code.lower(),
    )
    return JobScript(f"{name}.sbatch", content)


def scripts_from_packing(
    packed: PackingResult, *, cores_per_node: int = 28
) -> list[JobScript]:
    """Render a full packed workload into sbatch files.

    One DB script per region, then one array per (level, region, node
    count) group; NFDT-DC levels chain via afterok dependencies, FFDT-DC
    (backfill semantics) omits them.
    """
    strict_levels = packed.algorithm == "NFDT-DC"
    scripts: list[JobScript] = []
    regions = sorted({t.region_code for t in packed.instance.tasks})
    caps = packed.instance.db_caps
    for region in regions:
        scripts.append(database_script(
            region, max_connections=caps.get(region, 48)))

    prev_level_name: dict[str, str | None] = {r: None for r in regions}
    for lv in packed.levels:
        by_region: dict[str, list[MappingTask]] = {}
        for task in lv.tasks:
            by_region.setdefault(task.region_code, []).append(task)
        for region, tasks in sorted(by_region.items()):
            depends = prev_level_name[region] if strict_levels else None
            script = array_script(
                region, tasks,
                cores_per_node=cores_per_node,
                level=lv.index,
                depends_on=depends,
            )
            scripts.append(script)
            prev_level_name[region] = script.filename.removesuffix(
                ".sbatch")
    return scripts
