"""Dual-cluster HPC substrate: machines, scheduler, DBs, transfers, costs."""

from .costmodel import (
    CostModel,
    INTERVENTION_RUNTIME_FACTOR,
    JobEstimate,
    network_size_table,
    paper_scale_edges,
    paper_scale_nodes,
)
from .events import EventLoop
from .failures import (
    FailureEvent,
    FaultyRunResult,
    FaultySlurmSimulator,
    FlakyGlobusLink,
    QueueingDatabase,
)
from .globus import (
    GlobusLink,
    TABLE_II_SIZES,
    TransferRecord,
)
from .jobscript import (
    JobScript,
    array_script,
    database_script,
    scripts_from_packing,
)
from .machines import (
    AccessWindow,
    BRIDGES,
    ClusterSpec,
    NIGHTLY_WINDOW,
    RIVANNA,
)
from .popdb import (
    ConnectionLimitExceeded,
    DBConnection,
    DatabaseFleet,
    PopulationDatabase,
)
from .slurm import (
    Job,
    JobRecord,
    ScheduleResult,
    SlurmSimulator,
)

__all__ = [
    "JobScript",
    "array_script",
    "database_script",
    "scripts_from_packing",
    "FailureEvent",
    "FaultyRunResult",
    "FaultySlurmSimulator",
    "FlakyGlobusLink",
    "QueueingDatabase",
    "AccessWindow",
    "BRIDGES",
    "ClusterSpec",
    "ConnectionLimitExceeded",
    "CostModel",
    "DBConnection",
    "DatabaseFleet",
    "EventLoop",
    "GlobusLink",
    "INTERVENTION_RUNTIME_FACTOR",
    "Job",
    "JobEstimate",
    "JobRecord",
    "NIGHTLY_WINDOW",
    "PopulationDatabase",
    "RIVANNA",
    "ScheduleResult",
    "SlurmSimulator",
    "TABLE_II_SIZES",
    "TransferRecord",
    "network_size_table",
    "paper_scale_edges",
    "paper_scale_nodes",
]
