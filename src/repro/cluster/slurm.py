"""Slurm-like batch execution of simulation job arrays (Section IV).

"The software stack on the remote super-computing cluster uses the Slurm
scheduler for scheduling jobs ... scripts are used to submit Slurm job
arrays, which are scheduled to run using the heuristic scheduling strategy."

The mapping heuristics (:mod:`repro.scheduling`) produce an *ordered* (and
optionally level-chunked) job list; this module executes that list on a
simulated machine and measures what the paper measures — makespan and
CPU-hour utilization (Figure 9).  Three start policies model how much
real-time optimisation Slurm is allowed on top of the given order:

- ``"levels"`` — strict level barriers (a level must finish before the next
  starts), the execution model matching NFDT-DC's closed levels;
- ``"fifo"`` — in-order starts with head-of-line blocking;
- ``"backfill"`` — in-order starts plus backfilling any later job that fits
  the idle nodes, Slurm's real behaviour and the execution model for
  FFDT-DC.

Database constraints are enforced at dispatch: at most B(T[r]) jobs of a
region run simultaneously (the DB-WMP constraint).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..obs.registry import MetricsRegistry
from .machines import BRIDGES, ClusterSpec

VALID_POLICIES = ("levels", "fifo", "backfill")


@dataclass(frozen=True, slots=True)
class Job:
    """One <cell, region> simulation job.

    Attributes:
        job_id: unique label.
        region_code: region whose database the job connects to.
        n_nodes: whole nodes required (the paper intentionally avoids
            partial nodes).
        runtime: modelled execution seconds.
        level: packing level assigned by the mapping heuristic (optional).
    """

    job_id: str
    region_code: str
    n_nodes: int
    runtime: float
    level: int = 0


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Execution record of one job."""

    job: Job
    start: float
    finish: float


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of executing a job list.

    Attributes:
        records: per-job start/finish times.
        makespan: completion time of the last job.
        n_nodes_available: schedulable nodes (after DB reservations).
        peak_region_concurrency: max simultaneous jobs observed per region.
    """

    records: list[JobRecord]
    makespan: float
    n_nodes_available: int
    peak_region_concurrency: dict[str, int]

    @property
    def busy_node_seconds(self) -> float:
        """Node-seconds actually consumed by jobs."""
        return sum(r.job.n_nodes * (r.finish - r.start) for r in self.records)

    @property
    def utilization(self) -> float:
        """The paper's utilization metric (Figure 9): busy node-time over
        allocated node-time until the last task completes."""
        if self.makespan <= 0:
            return 1.0
        return self.busy_node_seconds / (self.n_nodes_available * self.makespan)

    def validate_no_overlap_violation(
        self, n_nodes: int, caps: dict[str, int]
    ) -> None:
        """Assert node capacity and DB caps were never exceeded."""
        events: list[tuple[float, int, JobRecord]] = []
        for r in self.records:
            events.append((r.start, 1, r))
            events.append((r.finish, -1, r))
        events.sort(key=lambda e: (e[0], e[1]))
        used = 0
        per_region: dict[str, int] = {}
        for _t, kind, rec in events:
            used += kind * rec.job.n_nodes
            region = rec.job.region_code
            per_region[region] = per_region.get(region, 0) + kind
            if used > n_nodes:
                raise AssertionError("node capacity exceeded")
            cap = caps.get(region)
            if cap is not None and per_region[region] > cap:
                raise AssertionError(f"DB cap exceeded for {region}")


class SlurmSimulator:
    """Executes ordered job lists on a simulated allocation."""

    def __init__(
        self,
        cluster: ClusterSpec = BRIDGES,
        *,
        db_caps: dict[str, int] | None = None,
        reserved_nodes: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if reserved_nodes >= cluster.n_nodes:
            raise ValueError("reservations consume the whole machine")
        self.cluster = cluster
        self.db_caps = dict(db_caps or {})
        self.n_available = cluster.n_nodes - reserved_nodes
        #: ``slurm.*`` accounting for every :meth:`run` on this simulator.
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def run(self, jobs: list[Job], *, policy: str = "backfill") -> ScheduleResult:
        """Execute ``jobs`` in the given order under ``policy``."""
        if policy not in VALID_POLICIES:
            raise ValueError(f"policy must be one of {VALID_POLICIES}")
        for j in jobs:
            if j.n_nodes > self.n_available:
                raise ValueError(
                    f"{j.job_id} needs {j.n_nodes} nodes, have {self.n_available}")

        pending = list(jobs)
        running: list[tuple[float, int, Job]] = []  # (finish, seq, job)
        records: list[JobRecord] = []
        free = self.n_available
        region_live: dict[str, int] = {}
        region_peak: dict[str, int] = {}
        now = 0.0
        seq = 0
        current_level = min((j.level for j in jobs), default=0)

        def can_start(job: Job) -> bool:
            if job.n_nodes > free:
                return False
            cap = self.db_caps.get(job.region_code)
            if cap is not None and region_live.get(job.region_code, 0) >= cap:
                return False
            if policy == "levels" and job.level != current_level:
                return False
            return True

        def start(job: Job) -> None:
            nonlocal free, seq
            free -= job.n_nodes
            region_live[job.region_code] = region_live.get(job.region_code, 0) + 1
            region_peak[job.region_code] = max(
                region_peak.get(job.region_code, 0),
                region_live[job.region_code])
            heapq.heappush(running, (now + job.runtime, seq, job))
            records.append(JobRecord(job, now, now + job.runtime))
            seq += 1

        def dispatch() -> None:
            nonlocal pending
            if policy == "backfill":
                min_width = min((j.n_nodes for j in pending), default=0)
                remaining = []
                for idx, job in enumerate(pending):
                    if free < min_width:
                        remaining.extend(pending[idx:])
                        break
                    if can_start(job):
                        start(job)
                    else:
                        remaining.append(job)
                pending = remaining
            else:  # fifo / levels: strict head-of-queue starts
                while pending and can_start(pending[0]):
                    start(pending.pop(0))

        dispatch()
        while running:
            finish, _s, job = heapq.heappop(running)
            now = finish
            free += job.n_nodes
            region_live[job.region_code] -= 1
            # Drain simultaneous completions before dispatching.
            while running and running[0][0] == now:
                _f, _s2, j2 = heapq.heappop(running)
                free += j2.n_nodes
                region_live[j2.region_code] -= 1
            if policy == "levels" and pending:
                level_done = not any(
                    j.level == current_level for _f, _s3, j in running
                ) and not any(j.level == current_level for j in pending)
                if level_done:
                    current_level = min(j.level for j in pending)
            dispatch()
            if not running and pending:
                # Nothing can run: either a level barrier or a deadlock.
                if policy == "levels":
                    current_level = min(j.level for j in pending)
                    dispatch()
                if not running and pending:
                    raise RuntimeError(
                        "scheduler stalled with pending jobs "
                        f"({len(pending)} left)")

        result = ScheduleResult(
            records=records,
            makespan=now,
            n_nodes_available=self.n_available,
            peak_region_concurrency=region_peak,
        )
        # Publish the Figure 9 numbers: job volume, makespan, utilization,
        # and per-job queue waits (all jobs are submitted at t = 0, so a
        # job's wait is its start time on the simulated clock).
        self.metrics.inc("slurm.jobs", len(records))
        self.metrics.gauge("slurm.makespan_s", result.makespan)
        self.metrics.gauge("slurm.busy_node_s", result.busy_node_seconds)
        self.metrics.gauge("slurm.utilization", result.utilization)
        for rec in records:
            self.metrics.observe("slurm.queue_wait_s", rec.start)
        return result
