"""Plane lifecycle: build-once arbitration, refcounts, reclamation.

One :class:`PlaneRuntime` per plane root per process owns every segment
this process maps.  The cross-process protocol reuses the store's
:class:`~repro.store.cas.LeaseTable` discipline end to end:

- **build-once** — contenders race an ``O_CREAT|O_EXCL`` lease on the
  bundle key; exactly one wins and builds, the rest ``wait`` on the
  manifest appearing and then attach (the same coalescing the memoized
  fan-out uses for instance results);
- **refcount** — every mapping drops a ``refs/<key>/<pid>.ref`` file;
  refs of dead pids are pruned whenever anyone looks, so a crashed
  worker can never pin a segment;
- **reclaim** — a segment is unlinked only when no live refs remain:
  explicitly via :func:`plane_gc` (the ``repro plane gc`` command and the
  shard supervisor's teardown), and opportunistically by the last
  exiting attacher (so a normal pool run leaves ``/dev/shm`` clean).
  A manifest whose segment has vanished — the crashed-owner case — is
  detected on attach, torn down, and the build re-arbitrated.

Degradation is graceful by contract: any failure to create or map shared
memory (``/dev/shm`` absent, too small, permission-denied) makes
:meth:`PlaneRuntime.ensure` return ``None`` and the caller falls back to
today's per-process copy; a missing-shm probe failure disables the plane
for the process so the cost is paid once.
"""

from __future__ import annotations

import atexit
import errno
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..obs.registry import MetricsRegistry, global_registry
from ..store.cas import LEASE_DONE, LEASE_TIMEOUT, LeaseTable
from . import segment as seg
from .bundle import assets_from_views, bundle_arrays
from .manifest import (
    AssetKey,
    Manifest,
    lease_dir,
    list_manifests,
    manifest_path,
    plane_root,
    read_manifest,
    refs_dir,
    write_manifest,
)

#: How long a lease loser waits for the winner's manifest before giving
#: up and building a private copy (seconds; builds are tens of ms at test
#: scale, seconds at 1:100).
WAIT_TIMEOUT_S: float = 120.0

#: Attach/build contention retries before falling back to a local build.
MAX_ATTEMPTS: int = 4


#: Truthy values for ``REPRO_PLANE_KEEP``.
_KEEP_TRUTHY = frozenset({"1", "true", "yes", "on"})


def keep_on_exit() -> bool:
    """Whether exit skips the last-man-out reap (``REPRO_PLANE_KEEP``).

    Pre-warm flows (``repro plane build``, ``night``'s design prebuild)
    set this so their segments outlive the building process and serve
    later workers on the node; ``repro plane gc`` reclaims them.
    """
    return (os.environ.get("REPRO_PLANE_KEEP", "").strip().lower()
            in _KEEP_TRUTHY)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-uid process
        return True
    return True


def _segment_name(key: str) -> str:
    return f"{seg.SEGMENT_PREFIX}{key[:24]}"


def _plane_salt() -> str:
    from ..store.keys import code_version_salt

    return code_version_salt()


@dataclass
class _Attachment:
    """One mapped segment in this process."""

    key: str
    shm: object
    manifest: Manifest
    assets: object
    ref_path: Path | None
    pid: int  #: pid that created the mapping (fork-inherited copies differ)
    owner: bool  #: whether this process built the segment


@dataclass
class PlaneRuntime:
    """Per-process owner of every plane mapping under one root."""

    root: Path
    _attached: dict[str, _Attachment] = field(default_factory=dict)
    _disabled: str | None = None
    _probed: bool = False

    # -- availability ----------------------------------------------------------

    def available(self) -> bool:
        """Whether shared memory works here (probed once per process)."""
        if self._disabled is not None:
            return False
        if not self._probed:
            self._probed = True
            name = f"{seg.SEGMENT_PREFIX}probe-{os.getpid()}"
            try:
                seg.probe(name)
            except (OSError, ValueError) as exc:
                self._disabled = f"shared memory unavailable: {exc}"
        return self._disabled is None

    def disabled_reason(self) -> str | None:
        """Why the plane is off for this process (None while usable)."""
        return self._disabled

    # -- the attach API --------------------------------------------------------

    def ensure(self, key: AssetKey, builder: Callable[[], object], *,
               metrics: MetricsRegistry | None = None):
        """The node-shared bundle for ``key``, building it if first here.

        Returns the attached (read-only, zero-copy) assets, or ``None``
        when the plane cannot serve them — the caller then builds a
        private copy exactly as before the plane existed.
        """
        reg = metrics if metrics is not None else global_registry()
        digest = key.digest(_plane_salt())
        att = self._attached.get(digest)
        if att is not None:
            reg.inc("plane.hits")
            return att.assets
        if not self.available():
            reg.inc("plane.fallbacks")
            return None
        leases = self._leases()
        for _ in range(MAX_ATTEMPTS):
            m = read_manifest(self.root, digest)
            if m is not None:
                assets = self._try_attach(m, reg)
                if assets is not None:
                    return assets
                if self._disabled is not None:
                    reg.inc("plane.fallbacks")
                    return None
                continue  # stale manifest torn down: re-arbitrate
            if leases.acquire(digest):
                try:
                    return self._build(key, digest, builder, reg)
                finally:
                    leases.release(digest)
            done = manifest_path(self.root, digest).exists
            outcome = leases.wait(digest, done, timeout_s=WAIT_TIMEOUT_S)
            if outcome == LEASE_TIMEOUT:
                break
            # LEASE_DONE: attach on the next pass; LEASE_VACATED: the
            # winner failed or released — re-contend for the build.
            del outcome
        reg.inc("plane.fallbacks")
        return None

    # -- internals -------------------------------------------------------------

    def _leases(self) -> LeaseTable:
        return LeaseTable(root=lease_dir(self.root),
                          owner=f"plane:{os.getpid()}")

    def _add_ref(self, digest: str) -> Path:
        rdir = refs_dir(self.root, digest)
        rdir.mkdir(parents=True, exist_ok=True)
        path = rdir / f"{os.getpid()}.ref"
        path.write_text(json.dumps({"pid": os.getpid(),
                                    "ts": time.time()}),
                        encoding="utf-8")
        return path

    def _try_attach(self, m: Manifest, reg: MetricsRegistry):
        """Map a published segment; tear down the manifest when stale.

        The ref file is dropped *before* opening the segment, so a
        concurrent reaper either sees the ref (and keeps the segment) or
        has already unlinked it (and our open fails cleanly — we remove
        the ref, remove the dangling manifest, and the caller
        re-arbitrates the build).
        """
        ref = self._add_ref(m.key)
        try:
            shm = seg.open_segment(m.segment)
        except FileNotFoundError:
            ref.unlink(missing_ok=True)
            manifest_path(self.root, m.key).unlink(missing_ok=True)
            reg.inc("plane.stale")
            return None
        except (OSError, ValueError) as exc:
            ref.unlink(missing_ok=True)
            self._disabled = f"attach failed: {exc}"
            return None
        try:
            assets = assets_from_views(m.meta, seg.views(shm, m.arrays))
        except Exception:
            ref.unlink(missing_ok=True)
            shm.close()
            manifest_path(self.root, m.key).unlink(missing_ok=True)
            reg.inc("plane.stale")
            return None
        self._attached[m.key] = _Attachment(
            key=m.key, shm=shm, manifest=m, assets=assets, ref_path=ref,
            pid=os.getpid(), owner=False)
        reg.inc("plane.attached")
        return assets

    def _build(self, key: AssetKey, digest: str,
               builder: Callable[[], object], reg: MetricsRegistry):
        """Build, pack and publish one bundle (lease already held).

        Returns the *attached* view-backed assets — the builder's private
        arrays are dropped immediately, so even the building process runs
        its simulations off the shared pages.
        """
        lost = read_manifest(self.root, digest)
        if lost is not None:
            # A previous holder published between our manifest check and
            # lease acquisition: just attach.
            return self._try_attach(lost, reg)
        assets = builder()
        meta, arrays = bundle_arrays(assets)
        entries, total = seg.layout(arrays)
        name = _segment_name(digest)
        try:
            try:
                shm = seg.create_segment(name, total)
            except FileExistsError:
                # Orphan from a builder that crashed between create and
                # publish — we hold the lease, so it is safe to replace.
                seg.unlink_segment(name)
                shm = seg.create_segment(name, total)
        except (OSError, ValueError) as exc:
            if isinstance(exc, OSError) and exc.errno not in (
                    errno.ENOSPC, errno.ENOMEM):
                self._disabled = f"segment create failed: {exc}"
            reg.inc("plane.fallbacks")
            return None
        try:
            seg.pack(shm, entries, arrays)
        except BaseException:
            seg.destroy(shm)
            raise
        del assets, arrays
        ref = self._add_ref(digest)
        m = Manifest(
            key=digest, asset=key, salt=_plane_salt(), segment=name,
            nbytes=total, arrays=entries, meta=meta,
            owner_pid=os.getpid(), owner=f"pid:{os.getpid()}",
            created_ts=time.time())
        write_manifest(self.root, m)
        attached = assets_from_views(meta, seg.views(shm, entries))
        self._attached[digest] = _Attachment(
            key=digest, shm=shm, manifest=m, assets=attached,
            ref_path=ref, pid=os.getpid(), owner=True)
        reg.inc("plane.built")
        reg.inc("plane.bytes", total)
        reg.inc("plane.attached")  # the builder's own mapping counts
        return attached

    # -- reclamation -----------------------------------------------------------

    def _prune_refs(self, digest: str) -> int:
        """Drop ref files of dead pids; returns the live-ref count."""
        rdir = refs_dir(self.root, digest)
        if not rdir.is_dir():
            return 0
        live = 0
        for path in rdir.glob("*.ref"):
            try:
                pid = int(path.stem)
            except ValueError:
                path.unlink(missing_ok=True)
                continue
            if _pid_alive(pid):
                live += 1
            else:
                path.unlink(missing_ok=True)
        return live

    def reap(self, digest: str, *, metrics: MetricsRegistry | None = None,
             leases: LeaseTable | None = None) -> int:
        """Unlink ``digest``'s segment if nothing live references it.

        Returns the bytes reclaimed (0 when the segment is still in use,
        contended, or already gone).  Serialised against builders and
        other reapers by the same lease that arbitrates builds.
        """
        reg = metrics if metrics is not None else global_registry()
        table = leases if leases is not None else self._leases()
        if not table.acquire(digest):
            return 0
        try:
            if self._prune_refs(digest) > 0:
                return 0
            m = read_manifest(self.root, digest)
            freed = 0
            if m is not None:
                if seg.unlink_segment(m.segment):
                    freed = m.nbytes
                manifest_path(self.root, digest).unlink(missing_ok=True)
            rdir = refs_dir(self.root, digest)
            if rdir.is_dir():
                try:
                    rdir.rmdir()
                except OSError:
                    pass
            if freed:
                reg.inc("plane.reclaimed")
                reg.inc("plane.reclaimed_bytes", freed)
            return freed
        finally:
            table.release(digest)

    def shutdown(self) -> None:
        """Process exit: drop our refs, unmap, reap what became orphaned.

        Fork-inherited attachments (``pid`` mismatch) are unmapped but
        their ref files are left alone — they belong to the parent.
        With ``REPRO_PLANE_KEEP`` set the reap is skipped: segments stay
        for later processes on the node (pre-warm flows).
        """
        me = os.getpid()
        keep = keep_on_exit()
        keys = list(self._attached)
        for digest in keys:
            att = self._attached.pop(digest)
            if att.pid == me and att.ref_path is not None:
                att.ref_path.unlink(missing_ok=True)
            try:
                att.shm.close()
            except BufferError:  # views still referenced at interpreter exit
                pass
            if att.pid == me and not keep:
                try:
                    self.reap(digest)
                except OSError:  # pragma: no cover - exit must not raise
                    pass

    def detach(self, digest: str) -> None:
        """Unmap one bundle (tests); refs removed, no reap."""
        att = self._attached.pop(digest, None)
        if att is None:
            return
        if att.pid == os.getpid() and att.ref_path is not None:
            att.ref_path.unlink(missing_ok=True)
        try:
            att.shm.close()
        except BufferError:
            pass

    def attached_keys(self) -> list[str]:
        """Digests of every segment this process currently maps."""
        return sorted(self._attached)


#: Runtimes by plane root — tests repoint ``REPRO_PLANE_DIR`` freely, and
#: each root keeps its own attachment table.
_RUNTIMES: dict[Path, PlaneRuntime] = {}
_ATEXIT_REGISTERED = False


def runtime(root: Path | None = None) -> PlaneRuntime:
    """The process's runtime for ``root`` (default: the env-derived root)."""
    global _ATEXIT_REGISTERED
    path = Path(root) if root is not None else plane_root()
    rt = _RUNTIMES.get(path)
    if rt is None:
        rt = _RUNTIMES[path] = PlaneRuntime(root=path)
        if not _ATEXIT_REGISTERED:
            _ATEXIT_REGISTERED = True
            atexit.register(_shutdown_all)
    return rt


def _shutdown_all() -> None:
    for rt in list(_RUNTIMES.values()):
        rt.shutdown()


def ensure_assets(key: AssetKey, builder: Callable[[], object], *,
                  metrics: MetricsRegistry | None = None):
    """Module-level :meth:`PlaneRuntime.ensure` on the env-derived root."""
    return runtime().ensure(key, builder, metrics=metrics)


# -- fleet-facing maintenance ----------------------------------------------


def plane_gc(root: Path | None = None, *,
             metrics: MetricsRegistry | None = None) -> dict:
    """Reap every reclaimable segment under ``root``; returns stats.

    Run by ``repro plane gc``, the shard supervisor's teardown, and CI's
    orphan-leak check: prunes dead-pid refs, unlinks segments with no
    live references (crashed owners included), and removes manifest-less
    orphan segments left by a crash between create and publish.
    """
    rt = runtime(root)
    reg = metrics if metrics is not None else global_registry()
    stats = {"segments": 0, "reclaimed": 0, "reclaimed_bytes": 0,
             "kept": 0, "orphans": 0}
    manifests = list_manifests(rt.root)
    published = {m.segment for m in manifests}
    for m in manifests:
        stats["segments"] += 1
        freed = rt.reap(m.key, metrics=reg)
        if freed:
            stats["reclaimed"] += 1
            stats["reclaimed_bytes"] += freed
        elif read_manifest(rt.root, m.key) is not None:
            stats["kept"] += 1
    shm_dir = Path("/dev/shm")
    if shm_dir.is_dir():
        for path in shm_dir.glob(f"{seg.SEGMENT_PREFIX}*"):
            if path.name not in published and "probe" not in path.name:
                if seg.unlink_segment(path.name):
                    stats["orphans"] += 1
                    reg.inc("plane.reclaimed")
    return stats


def plane_stats(root: Path | None = None) -> dict:
    """Inventory of the plane at ``root`` (the ``plane stats`` body)."""
    rt = runtime(root)
    entries = []
    total = 0
    for m in list_manifests(rt.root):
        live = rt._prune_refs(m.key)
        total += m.nbytes
        entries.append({
            "key": m.key,
            "region_code": m.asset.region_code,
            "scale": m.asset.scale,
            "seed": m.asset.seed,
            "truth_days": m.asset.truth_days,
            "segment": m.segment,
            "nbytes": m.nbytes,
            "owner_pid": m.owner_pid,
            "owner_alive": _pid_alive(m.owner_pid),
            "live_refs": live,
        })
    return {"root": str(rt.root), "segments": entries,
            "total_bytes": total,
            "available": rt.available(),
            "disabled_reason": rt.disabled_reason()}
