"""Canonical asset keys and the versioned plane manifest registry.

The plane is a node-level registry of built region assets: one JSON
manifest per asset bundle, written atomically next to the lease table
that arbitrates builds.  A manifest records *where* the bytes live (the
segment name and offset table from :mod:`repro.plane.segment`), *what*
they are (the :class:`AssetKey` plus the code-version salt, so stale
bytes from an older source tree can never be attached), and *who* built
them (owner pid — dead owners make a segment reclaimable).

:class:`AssetKey` is also the fix for a long-standing cache-key mismatch:
``load_region_assets`` caches on ``(region, scale, seed, truth_days)``
while the warm-pool preload keyed on only the first three, so a preloaded
bundle could silently miss for specs with a non-default truth horizon.
One canonical key type is now shared by the runner cache, the warm
preload, replicate batch grouping, and the plane manifest.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path

from ..params import DEFAULT_SCALE, DEFAULT_SEED

#: Manifest format version; attachers refuse manifests from the future.
PLANE_FORMAT: int = 1

#: Hash-domain namespace for plane keys.
PLANE_NAMESPACE: str = "repro/plane/1"

#: Default surveillance horizon (matches ``load_region_assets``).
DEFAULT_TRUTH_DAYS: int = 210

#: Truthy values for ``REPRO_PLANE``.
_TRUTHY = frozenset({"1", "true", "yes", "on"})


class PlaneError(RuntimeError):
    """A plane manifest or segment could not be used."""


@dataclass(frozen=True, slots=True, order=True)
class AssetKey:
    """Everything that determines one region-asset bundle, canonically.

    The single key type for every consumer that identifies "one build of
    one region's inputs": the per-process asset cache, the warm-pool
    preload, replicate batch grouping, and the plane manifest.  Ordered,
    hashable and picklable, so it can sort submission schedules and cross
    process boundaries unchanged.
    """

    region_code: str
    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    truth_days: int = DEFAULT_TRUTH_DAYS

    def __post_init__(self) -> None:
        # Normalise numeric types once so VA@1e-3 built from an int-typed
        # scale and from a float cannot produce two distinct keys.
        object.__setattr__(self, "region_code", str(self.region_code))
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "truth_days", int(self.truth_days))

    @classmethod
    def of_spec(cls, spec) -> "AssetKey":
        """The asset key an :class:`~repro.core.parallel.InstanceSpec`
        loads under (specs always use the default truth horizon)."""
        return cls(spec.region_code, spec.scale, spec.asset_seed)

    def token(self) -> str:
        """Human-readable canonical form (floats via ``repr``)."""
        return (f"{self.region_code}|{self.scale!r}|{self.seed}"
                f"|{self.truth_days}")

    def digest(self, salt: str) -> str:
        """Content key of this bundle under ``salt`` (hex, 64 chars)."""
        h = sha256()
        h.update(PLANE_NAMESPACE.encode())
        h.update(b"\x00")
        h.update(salt.encode())
        h.update(b"\x00")
        h.update(self.token().encode())
        return h.hexdigest()


def plane_enabled() -> bool:
    """Whether the shared plane is opted in (``REPRO_PLANE`` env)."""
    return os.environ.get("REPRO_PLANE", "").strip().lower() in _TRUTHY


def plane_root() -> Path:
    """Coordination directory: ``REPRO_PLANE_DIR`` or a per-uid default.

    Holds manifests, leases and refcount files — small metadata only; the
    asset bytes themselves live in ``/dev/shm`` segments.  Every process
    that should share one plane must see the same root (the sharded
    service threads it through :class:`~repro.service.shard.ShardConfig`).
    """
    raw = os.environ.get("REPRO_PLANE_DIR")
    if raw:
        return Path(raw)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-plane-{uid}"


def manifest_dir(root: Path) -> Path:
    """The plane root's manifest registry directory."""
    return Path(root) / "manifests"


def lease_dir(root: Path) -> Path:
    """The build-arbitration lease table directory."""
    return Path(root) / "leases"


def refs_dir(root: Path, key: str) -> Path:
    """One segment's per-pid refcount directory."""
    return Path(root) / "refs" / key


def manifest_path(root: Path, key: str) -> Path:
    """The manifest file publishing the segment for ``key``."""
    return manifest_dir(root) / f"{key}.json"


@dataclass(frozen=True, slots=True)
class Manifest:
    """One built bundle: identity, location, layout, ownership."""

    key: str  #: :meth:`AssetKey.digest` under the build salt
    asset: AssetKey
    salt: str
    segment: str  #: shared-memory object name
    nbytes: int  #: total segment size
    arrays: list  #: offset table (see :func:`repro.plane.segment.layout`)
    meta: dict  #: scalar fields needed to rebuild the dataclasses
    owner_pid: int
    owner: str
    created_ts: float
    format: int = PLANE_FORMAT

    def to_json(self) -> str:
        """Serialize for the registry file (sorted keys, stable)."""
        return json.dumps({
            "format": self.format,
            "key": self.key,
            "asset": {
                "region_code": self.asset.region_code,
                "scale": self.asset.scale,
                "seed": self.asset.seed,
                "truth_days": self.asset.truth_days,
            },
            "salt": self.salt,
            "segment": self.segment,
            "nbytes": self.nbytes,
            "arrays": self.arrays,
            "meta": self.meta,
            "owner_pid": self.owner_pid,
            "owner": self.owner,
            "created_ts": self.created_ts,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        rec = json.loads(text)
        fmt = int(rec.get("format", -1))
        if fmt > PLANE_FORMAT:
            raise PlaneError(
                f"manifest format {fmt} is newer than supported "
                f"{PLANE_FORMAT}")
        a = rec["asset"]
        return cls(
            key=str(rec["key"]),
            asset=AssetKey(a["region_code"], a["scale"], a["seed"],
                           a["truth_days"]),
            salt=str(rec["salt"]),
            segment=str(rec["segment"]),
            nbytes=int(rec["nbytes"]),
            arrays=list(rec["arrays"]),
            meta=dict(rec["meta"]),
            owner_pid=int(rec["owner_pid"]),
            owner=str(rec.get("owner", "")),
            created_ts=float(rec.get("created_ts", 0.0)),
            format=fmt,
        )


def write_manifest(root: Path, m: Manifest) -> Path:
    """Publish ``m`` atomically (write-temp-then-rename)."""
    mdir = manifest_dir(root)
    mdir.mkdir(parents=True, exist_ok=True)
    path = manifest_path(root, m.key)
    fd, tmp = tempfile.mkstemp(dir=mdir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(m.to_json())
        os.replace(tmp, path)
    except BaseException:
        Path(tmp).unlink(missing_ok=True)
        raise
    return path


def read_manifest(root: Path, key: str) -> Manifest | None:
    """Load a manifest; None when absent or unusable.

    Unusable covers a torn/unparseable record and a future format bump —
    in either case the caller behaves as if the bundle were never built
    (re-arbitrating the build overwrites the bad record atomically).
    """
    try:
        text = manifest_path(root, key).read_text(encoding="utf-8")
    except (FileNotFoundError, OSError):
        return None
    try:
        return Manifest.from_json(text)
    except (PlaneError, ValueError, KeyError, TypeError):
        return None


def list_manifests(root: Path) -> list[Manifest]:
    """Every readable manifest under ``root`` (sorted by key)."""
    mdir = manifest_dir(root)
    if not mdir.is_dir():
        return []
    out = []
    for path in sorted(mdir.glob("*.json")):
        m = read_manifest(root, path.stem)
        if m is not None:
            out.append(m)
    return out
