"""repro.plane — the shared-memory population plane.

Region assets (synthetic population, contact network, surveillance
truth) are by far the largest objects in the stack, and before this
subsystem every pool worker and every service shard built its own copy —
the per-node memory wall the paper hits first when scaling synthetic
populations (EpiCast 2.0 treats population data as a node-level shared
asset for exactly this reason).  The plane builds each bundle **once per
node** into a POSIX shared-memory segment and hands every other process
read-only zero-copy views:

- :mod:`repro.plane.segment` — the array codec (pack/attach, offsets);
- :mod:`repro.plane.manifest` — :class:`AssetKey` (the one canonical
  asset identity) and the versioned JSON manifest registry;
- :mod:`repro.plane.bundle` — RegionAssets ↔ named-array flattening;
- :mod:`repro.plane.lifecycle` — build-once lease arbitration,
  refcounted unlink, crashed-owner reclamation, graceful fallback;
- :mod:`repro.plane.accounting` — the Fig. 10 memory model split into
  per-node (shared bundle) vs per-worker (private engine state) bytes.

Opt in with ``REPRO_PLANE=1`` (or the CLI ``--plane`` flags); point
cooperating processes at one coordination dir with ``REPRO_PLANE_DIR``.
When shared memory is unavailable everything silently degrades to the
historical per-process copies.
"""

from .accounting import MemorySplit, memory_split, split_from_assets
from .lifecycle import (
    PlaneRuntime,
    ensure_assets,
    plane_gc,
    plane_stats,
    runtime,
)
from .manifest import AssetKey, Manifest, plane_enabled, plane_root

__all__ = [
    "AssetKey",
    "Manifest",
    "MemorySplit",
    "PlaneRuntime",
    "memory_split",
    "ensure_assets",
    "plane_enabled",
    "plane_gc",
    "plane_root",
    "plane_stats",
    "runtime",
    "split_from_assets",
]
