"""Figure 10 memory accounting, split per-node vs per-worker.

The classic Fig. 10 model charges every simulation its full resident
footprint — ``EDGE_BYTES`` per edge plus ``NODE_BYTES`` per node — which
is the right arithmetic when each worker process holds a private copy of
the region's inputs.  The shared plane changes the node-level picture:
the immutable asset bundle (population columns, network columns,
surveillance series) is resident **once per node**, and each co-located
worker adds only the mutable engine state it cannot share.

This module decomposes the model accordingly:

- *shared* bytes: the read-only bundle, paid once per node.  Exact when
  real assets are in hand (:func:`split_from_assets` measures the packed
  segment); at paper scale it is the model residual ``EDGE_BYTES +
  NODE_BYTES - private``, so ``copy_total`` reproduces the historical
  Fig. 10 numbers exactly.
- *private* bytes: what :class:`~repro.epihiper.engine.Simulation`
  allocates per worker even when attached to the plane — the arrays its
  ``__init__`` copies or derives because ticks mutate them.

The per-edge/per-node private constants are summed from the engine's
actual allocations (dtype sizes as of this writing): per edge
``base_active`` (1) + ``edge_weight`` f64 (8) + ``_duration_f64`` (8) +
``_home_mask`` (1) + ``_active_scratch`` (1) + suppressor ``count`` i16
(2) + suppressor scratch (1) = 22; per node ``health`` i8 (1) +
progression ``dwell`` i32 (4) + ``next_state`` i8 (1) +
``node_susceptibility`` f64 (8) + ``node_infectivity`` f64 (8) = 22.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..epihiper.engine import EDGE_BYTES, NODE_BYTES

#: Private (unshareable) bytes per contact-network edge per worker.
WORKER_EDGE_BYTES: int = 22

#: Private (unshareable) bytes per person per worker.
WORKER_NODE_BYTES: int = 22


@dataclass(frozen=True, slots=True)
class MemorySplit:
    """Resident bytes of one region on one node running ``n_workers``.

    Attributes:
        shared_bytes: the read-only asset bundle — once per node.
        private_bytes: mutable engine state — once per worker.
        n_workers: co-located workers simulating the region.
    """

    shared_bytes: int
    private_bytes: int
    n_workers: int = 1

    @property
    def per_worker_bytes(self) -> int:
        """What each additional worker costs with the plane attached."""
        return self.private_bytes

    @property
    def copy_total(self) -> int:
        """Node-resident bytes when every worker holds a private copy."""
        return self.n_workers * (self.shared_bytes + self.private_bytes)

    @property
    def plane_total(self) -> int:
        """Node-resident bytes when workers attach the shared plane."""
        return self.shared_bytes + self.n_workers * self.private_bytes

    @property
    def savings_bytes(self) -> int:
        """Bytes the plane saves on this node."""
        return self.copy_total - self.plane_total

    @property
    def incremental_ratio(self) -> float:
        """Per-worker incremental cost, copy over plane (>= 1)."""
        return (self.shared_bytes + self.private_bytes) / max(
            1, self.private_bytes)


def memory_split(
    n_nodes: int,
    n_edges: int,
    n_workers: int = 1,
    *,
    shared_bytes: int | None = None,
) -> MemorySplit:
    """The Fig. 10 split for a region of ``n_nodes`` / ``n_edges``.

    Without ``shared_bytes`` the shared component is the model residual,
    so ``copy_total`` equals the classic per-worker model (``EDGE_BYTES *
    E + NODE_BYTES * N`` each); pass the measured bundle size (e.g.
    :func:`~repro.plane.bundle.bundle_nbytes`) to refine it.
    """
    private = n_edges * WORKER_EDGE_BYTES + n_nodes * WORKER_NODE_BYTES
    if shared_bytes is None:
        total = n_edges * EDGE_BYTES + n_nodes * NODE_BYTES
        shared_bytes = max(0, total - private)
    return MemorySplit(shared_bytes=int(shared_bytes),
                       private_bytes=int(private),
                       n_workers=int(n_workers))


def split_from_assets(assets, n_workers: int = 1) -> MemorySplit:
    """The split for real in-hand assets: shared bytes measured exactly
    from the packed bundle layout."""
    from .bundle import bundle_nbytes

    return memory_split(assets.pop.size, assets.net.n_edges, n_workers,
                        shared_bytes=bundle_nbytes(assets))
