"""RegionAssets ↔ named-array bundle: what the plane actually serialises.

A :class:`~repro.core.runner.RegionAssets` is three columnar dataclasses
(population, contact network, surveillance truth) plus a scale scalar.
This module flattens the numpy columns into one ``group.column`` named
mapping for the segment codec and rebuilds the dataclasses from attached
views.  Scalars (region code, node count, scale) travel in the manifest's
``meta`` dict, not the segment.

Rebuilding from *read-only* views is safe by construction:

- every ``__post_init__`` on these dataclasses only validates (or fills
  defaults we always serialise explicitly, so the fill branch never runs
  on attach);
- the engine copies anything it mutates (``active`` → ``base_active``,
  ``weight`` → ``edge_weight``) before the first tick, so simulations on
  attached assets are bit-identical to ones on privately built assets.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

#: Population columns serialised into the segment, in layout order.
POP_COLUMNS: tuple[str, ...] = (
    "pid", "hid", "age", "age_group", "gender", "county",
    "home_lat", "home_lon", "county_codes",
)

#: Contact-network columns serialised into the segment, in layout order.
NET_COLUMNS: tuple[str, ...] = (
    "source", "target", "start", "duration",
    "source_activity", "target_activity", "weight", "active",
)

#: Ground-truth columns serialised into the segment, in layout order.
TRUTH_COLUMNS: tuple[str, ...] = ("county", "daily", "cumulative")


def bundle_arrays(assets) -> tuple[dict, dict[str, np.ndarray]]:
    """Flatten ``assets`` into ``(meta, arrays)`` for the segment codec.

    ``county_codes`` and ``active`` are serialised even though their
    dataclasses can derive them, so attach never takes the
    derive-and-assign branch (which would write through a read-only view).
    """
    meta = {
        "region_code": str(assets.net.region_code),
        "n_nodes": int(assets.net.n_nodes),
        "scale": float(assets.scale),
    }
    arrays: dict[str, np.ndarray] = {}
    for name in POP_COLUMNS:
        arrays[f"pop.{name}"] = getattr(assets.pop, name)
    for name in NET_COLUMNS:
        arrays[f"net.{name}"] = getattr(assets.net, name)
    for name in TRUTH_COLUMNS:
        arrays[f"truth.{name}"] = getattr(assets.truth, name)
    return meta, arrays


def bundle_nbytes(assets) -> int:
    """Exact shared bytes one node pays for ``assets`` (segment payload)."""
    _meta, arrays = bundle_arrays(assets)
    return int(sum(a.nbytes for a in arrays.values()))


def assets_from_views(meta: Mapping, views: Mapping[str, np.ndarray]):
    """Rebuild a :class:`~repro.core.runner.RegionAssets` over ``views``.

    The returned bundle's arrays alias the shared segment (zero copies);
    the caller owns keeping the segment mapped while the bundle is live.
    """
    from ..core.runner import RegionAssets
    from ..surveillance.truth import GroundTruth
    from ..synthpop.contacts import ContactNetwork
    from ..synthpop.persons import Population

    region = str(meta["region_code"])
    pop = Population(
        region_code=region,
        **{name: views[f"pop.{name}"] for name in POP_COLUMNS},
    )
    net = ContactNetwork(
        region_code=region,
        n_nodes=int(meta["n_nodes"]),
        **{name: views[f"net.{name}"] for name in NET_COLUMNS},
    )
    truth = GroundTruth(
        region_code=region,
        **{name: views[f"truth.{name}"] for name in TRUTH_COLUMNS},
    )
    return RegionAssets(pop=pop, net=net, truth=truth,
                        scale=float(meta["scale"]))
