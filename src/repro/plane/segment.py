"""Shared-memory segment codec: named numpy arrays in one POSIX segment.

The plane stores one region's asset arrays — population columns, contact
network columns, surveillance series — packed back to back in a single
``multiprocessing.shared_memory`` segment, so a node pays the bytes once
no matter how many pool workers or service shards map it.  The layout is
a flat offset table (name, dtype, shape, offset) computed *before* the
segment exists, serialised into the plane manifest, and used verbatim by
every attacher to rebuild zero-copy views.

Two rules keep attachment safe:

- every array is stored C-contiguous and every offset is 64-byte aligned,
  so views are cache-line friendly and dtype-aligned regardless of the
  mix of 1/2/4/8-byte columns;
- attached views are created ``writeable=False`` — the engine already
  copies anything it mutates (``base_active``, ``edge_weight``), and the
  read-only flag turns an accidental in-place write into a loud
  ``ValueError`` instead of silent cross-process corruption.

CPython 3.11 registers *every* ``SharedMemory`` handle — attachments
included — with the ``resource_tracker``, which then unlinks the segment
when the first attacher exits (bpo-39959).  The plane owns segment
lifetime explicitly (refcounted unlink in :mod:`repro.plane.lifecycle`),
so both :func:`create_segment` and :func:`open_segment` immediately
unregister the handle.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Mapping

import numpy as np

#: Offset alignment for every array in a segment (bytes).
ALIGN: int = 64

#: Shared-memory object-name prefix; ``plane gc`` recognises orphans by it.
SEGMENT_PREFIX: str = "repro-plane-"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach ``shm`` from the resource tracker (the plane owns unlink)."""
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    """Create (exclusively) a segment of ``size`` bytes.

    Raises ``FileExistsError`` when the name is taken and ``OSError``
    (``ENOSPC``/``ENOENT``) when ``/dev/shm`` is too small or absent —
    callers translate those into the copy-fallback path.
    """
    shm = shared_memory.SharedMemory(name=name, create=True,
                                     size=max(1, int(size)))
    _untrack(shm)
    return shm


def open_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment; ``FileNotFoundError`` when it is gone."""
    shm = shared_memory.SharedMemory(name=name, create=False)
    _untrack(shm)
    return shm


def unlink_segment(name: str) -> bool:
    """Remove a segment by name (best effort); True when it existed.

    The fresh handle's tracker registration is deliberately left in
    place: ``unlink`` consumes it, keeping the tracker's ledger balanced.
    """
    try:
        shm = shared_memory.SharedMemory(name=name, create=False)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - lost a concurrent race
        _untrack(shm)
    finally:
        shm.close()
    return True


def destroy(shm: shared_memory.SharedMemory) -> None:
    """Unlink+close a handle from :func:`create_segment`/:func:`open_segment`.

    Re-registers before unlinking so the tracker's unregister-on-unlink
    finds the entry (we removed it at create/open time).
    """
    try:
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        _untrack(shm)
    finally:
        shm.close()


def probe(name: str) -> None:
    """Create-and-remove a tiny segment; raises when ``/dev/shm`` cannot
    serve (absent, full, or permission-denied)."""
    shm = shared_memory.SharedMemory(name=name, create=True, size=ALIGN)
    try:
        shm.unlink()
    finally:
        shm.close()


def _aligned(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def layout(arrays: Mapping[str, np.ndarray]) -> tuple[list[dict], int]:
    """The offset table for ``arrays`` plus the total segment size.

    Entries keep the mapping's iteration order; each records everything
    an attacher needs (``name``/``dtype``/``shape``/``offset``/``nbytes``)
    and nothing else, so the table serialises directly into the manifest.
    """
    entries: list[dict] = []
    offset = 0
    for name, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = _aligned(offset)
        entries.append({
            "name": str(name),
            "dtype": arr.dtype.str,
            "shape": [int(d) for d in arr.shape],
            "offset": offset,
            "nbytes": int(arr.nbytes),
        })
        offset += arr.nbytes
    return entries, max(1, offset)


def pack(shm: shared_memory.SharedMemory, entries: list[dict],
         arrays: Mapping[str, np.ndarray]) -> None:
    """Copy ``arrays`` into ``shm`` at their table offsets."""
    for entry in entries:
        arr = np.ascontiguousarray(arrays[entry["name"]])
        dst = np.ndarray(tuple(entry["shape"]), dtype=np.dtype(entry["dtype"]),
                         buffer=shm.buf, offset=entry["offset"])
        dst[...] = arr


def views(shm: shared_memory.SharedMemory,
          entries: list[dict]) -> dict[str, np.ndarray]:
    """Read-only zero-copy views over a packed segment.

    The returned arrays alias the segment's pages directly; callers must
    keep ``shm`` referenced for as long as any view is live (the plane
    runtime does).
    """
    out: dict[str, np.ndarray] = {}
    for entry in entries:
        arr = np.ndarray(tuple(entry["shape"]), dtype=np.dtype(entry["dtype"]),
                         buffer=shm.buf, offset=entry["offset"])
        arr.flags.writeable = False
        out[entry["name"]] = arr
    return out
