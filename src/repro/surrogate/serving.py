"""The fast-answer tier: uncertainty-gated emulation in front of the queue.

:class:`SurrogateGate` is what the scenario service consults before
enqueueing a request.  The decision ladder, cheapest test first:

1. no compatible published model → **miss** (the corpus flywheel has not
   spun yet, or the kernels changed under the model);
2. wrong horizon, or the request leaves the training hull (it moves a
   feature the corpus never varied, or exceeds the observed bounds) →
   **fallback** to exact simulation;
3. predicted relative uncertainty above the gate's threshold →
   **fallback** — the emulator knows it does not know;
4. otherwise → **hit**: the request completes immediately with the
   reconstructed trajectory, ~95% bands, and ``source: "surrogate"``.

Every decision is published to the ``surrogate.*`` metrics namespace
(``hit`` / ``fallback`` / ``miss`` counters, the ``rtol`` band-width
timer, ``predict_s``), so hit rates and band widths are observable next
to the queue and store counters.  The gate re-reads the registry pointer
(one ``stat`` call) per request, so a retrain published by ``repro
surrogate train`` is picked up by a running service without a restart.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..obs.registry import MetricsRegistry, Stopwatch
from .corpus import featurize_spec
from .model import BAND_Z, SurrogateModel
from .registry import ModelRegistry

#: Default relative-uncertainty gate: serve from the surrogate only when
#: the mean predictive sd is under this fraction of the peak trajectory.
DEFAULT_RTOL: float = 0.05

#: Allowed extrapolation beyond the training hull, as a fraction of each
#: active feature's observed range.
DEFAULT_HULL_PAD: float = 0.1


def surrogate_payload(pred, *, rtol: float) -> dict[str, np.ndarray]:
    """The result arrays a surrogate-served request completes with.

    Shaped like an exact result (``confirmed`` + ``attack_rate``) plus
    the uncertainty bands and the ``source`` marker that distinguishes
    an emulated answer from a bit-exact simulated one.
    """
    lo, hi = pred.bands()
    return {
        "confirmed": np.asarray(pred.mean, dtype=np.float64),
        "confirmed_lo": np.asarray(lo, dtype=np.float64),
        "confirmed_hi": np.asarray(hi, dtype=np.float64),
        "confirmed_sd": np.asarray(pred.sd, dtype=np.float64),
        "attack_rate": np.asarray(pred.attack_rate, dtype=np.float64),
        "attack_rate_sd": np.asarray(pred.attack_sd, dtype=np.float64),
        "band_z": np.asarray(BAND_Z),
        "rtol": np.asarray(rtol),
        "source": np.asarray("surrogate"),
    }


class SurrogateGate:
    """Decides, per request, whether the emulator may answer.

    Args:
        registry: where trained models are published.
        rtol: relative-uncertainty threshold for serving.
        hull_pad: extrapolation allowance (fraction of feature range).
        salt: cache-key salt override (tests); must match the salt the
            corpus was built under.
        metrics: ``surrogate.*`` sink (a private registry when omitted).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        rtol: float = DEFAULT_RTOL,
        hull_pad: float = DEFAULT_HULL_PAD,
        salt: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if rtol <= 0:
            raise ValueError("rtol must be positive")
        self.registry = registry
        self.rtol = rtol
        self.hull_pad = hull_pad
        self.salt = salt
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._cached: SurrogateModel | None = None
        self._cache_token: tuple[int, int] | None = None

    # -- model resolution ------------------------------------------------------

    def model(self) -> SurrogateModel | None:
        """The current latest model (pointer-stat cached per call)."""
        try:
            st = self.registry.pointer_path.stat()
            token = (st.st_mtime_ns, st.st_size)
        except OSError:
            self._cached, self._cache_token = None, None
            return None
        if token != self._cache_token:
            self._cached = self.registry.latest(salt=self.salt)
            self._cache_token = token
        return self._cached

    def model_info(self) -> dict[str, Any] | None:
        """The registry pointer record (health/ops views)."""
        return self.registry.latest_info()

    # -- the gate --------------------------------------------------------------

    def try_answer(self, spec) -> dict[str, np.ndarray] | None:
        """Emulated result payload for ``spec``, or None to run exactly.

        None always means "enqueue for exact simulation"; the counters
        record *why* (``surrogate.miss`` when no model could answer at
        all, ``surrogate.fallback`` when a model declined this request).
        """
        watch = Stopwatch()
        model = self.model()
        if model is None:
            self.metrics.inc("surrogate.miss")
            return None
        if int(spec.n_days) != model.n_days:
            self.metrics.inc("surrogate.fallback")
            return None
        features = featurize_spec(spec)
        if not model.space.contains(features, pad=self.hull_pad):
            self.metrics.inc("surrogate.fallback")
            return None
        pred = model.predict_features(features)
        self.metrics.observe("surrogate.rtol", pred.rtol)
        if pred.rtol > self.rtol:
            self.metrics.inc("surrogate.fallback")
            return None
        self.metrics.inc("surrogate.hit")
        self.metrics.observe("surrogate.predict_s", watch.elapsed())
        return surrogate_payload(pred, rtol=pred.rtol)
