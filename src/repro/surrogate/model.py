"""The emulator: output basis + per-coefficient GPs over the corpus.

The LLNL surrogate-calibration line of work (arXiv:2010.06558) showed
agent-based epidemic outputs are cheaply emulable; the GPMSA machinery
already in :mod:`repro.calibration` is the natural first model.  A
trained :class:`SurrogateModel` is:

- a :class:`FeatureSpace` mapping raw feature vectors onto the unit cube
  (constant corpus dimensions are excluded from the GP input but still
  pin the model's validity hull — a request that moves a dimension the
  corpus never varied is out-of-distribution by construction);
- an :class:`~repro.calibration.basis.OutputBasis` over the trajectory
  ensemble plus one :class:`~repro.calibration.gp.GPEmulator` per basis
  coefficient (and one more for the scalar attack rate);
- provenance: featurization version + code salt, train-set digest,
  training seed — enough to decide staleness and to refuse serving
  across incompatible code versions.

Predictions reconstruct the full trajectory with a per-day predictive
standard deviation (GP coefficient variance pushed through the basis,
plus the basis truncation term), which is what the serving tier gates on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..calibration.basis import DEFAULT_P_ETA, OutputBasis, fit_basis
from ..calibration.gp import GPEmulator, fit_gp
from .corpus import Corpus, featurize_spec

#: Key namespace for serialized models in the CAS.  Bump when the
#: payload layout changes.
MODEL_NAMESPACE: str = "surrogate-model/v1"

#: Treat a feature dimension as constant below this corpus range.
_CONST_EPS: float = 1e-12

#: Half-width multiplier of the ~95% uncertainty band.
BAND_Z: float = 1.96


@dataclass(frozen=True)
class FeatureSpace:
    """Observed corpus bounds per feature: unit-cube map + validity hull.

    Attributes:
        lo: ``(d,)`` per-feature corpus minima.
        hi: ``(d,)`` per-feature corpus maxima.
    """

    lo: np.ndarray
    hi: np.ndarray

    @classmethod
    def fit(cls, features: np.ndarray) -> "FeatureSpace":
        """Bounds of an ``(n, d)`` corpus feature matrix."""
        f = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if f.shape[0] < 1:
            raise ValueError("cannot fit a feature space to no rows")
        return cls(lo=f.min(axis=0), hi=f.max(axis=0))

    @property
    def active(self) -> np.ndarray:
        """Boolean mask of dimensions the corpus actually varies."""
        return (self.hi - self.lo) > _CONST_EPS

    @property
    def d_active(self) -> int:
        """Number of varying (GP input) dimensions."""
        return int(self.active.sum())

    def to_unit(self, features: np.ndarray) -> np.ndarray:
        """Map raw rows onto the unit cube over the active dimensions."""
        f = np.atleast_2d(np.asarray(features, dtype=np.float64))
        act = self.active
        span = self.hi[act] - self.lo[act]
        return (f[:, act] - self.lo[act]) / span

    def contains(self, features: np.ndarray, *, pad: float = 0.0) -> bool:
        """Whether one raw feature vector lies inside the corpus hull.

        Active dimensions may extend ``pad`` fractions of their range
        beyond the observed bounds (mild extrapolation the GP variance
        still prices); constant dimensions must match exactly — the
        corpus carries no information about moving them.
        """
        f = np.asarray(features, dtype=np.float64).ravel()
        act = self.active
        span = self.hi - self.lo
        tol = np.where(act, pad * span, _CONST_EPS)
        return bool(np.all(f >= self.lo - tol)
                    and np.all(f <= self.hi + tol))


@dataclass(frozen=True)
class SurrogatePrediction:
    """One emulated scenario answer with uncertainty.

    Attributes:
        mean: ``(T + 1,)`` predicted confirmed-case trajectory.
        sd: ``(T + 1,)`` predictive standard deviation per day.
        attack_rate: predicted scalar attack rate.
        attack_sd: its predictive standard deviation.
        in_hull: whether the request lay inside the training hull.
    """

    mean: np.ndarray
    sd: np.ndarray
    attack_rate: float
    attack_sd: float
    in_hull: bool

    @property
    def rtol(self) -> float:
        """Relative predicted uncertainty: mean band sd over peak signal.

        The serving gate's confidence score — dimensionless, ~0 at a
        well-covered scenario, growing as the request leaves the corpus.
        """
        peak = float(np.max(np.abs(self.mean)))
        return float(np.mean(self.sd) / max(peak, 1e-9))

    def bands(self, z: float = BAND_Z) -> tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` trajectory band at ``z`` standard deviations
        (cumulative counts: the lower band is clipped at zero)."""
        return (np.maximum(self.mean - z * self.sd, 0.0),
                self.mean + z * self.sd)


@dataclass(frozen=True)
class SurrogateModel:
    """A trained, serialisable emulator over the run corpus.

    Attributes:
        space: feature bounds (unit-cube map + hull).
        basis: output eigenbasis of the training trajectories.
        gps: one GP per retained basis coefficient.
        attack_gp: GP over the scalar attack rate.
        names: feature vocabulary the model was trained under.
        n_days: trajectory horizon the model answers for.
        version: ``features+salt`` string of the training corpus.
        train_digest: :meth:`~repro.surrogate.corpus.Corpus.digest` of
            the training set.
        n_train: training-set size (staleness accounting).
        seed: training seed (fit reproducibility).
    """

    space: FeatureSpace
    basis: OutputBasis
    gps: tuple[GPEmulator, ...]
    attack_gp: GPEmulator
    names: tuple[str, ...]
    n_days: int
    version: str
    train_digest: str
    n_train: int
    seed: int

    def model_key(self) -> str:
        """Content key of this model in the CAS (its own key family).

        Deterministic in (namespace, corpus version, train digest,
        basis size, seed): retraining on an unchanged corpus republishes
        the same key.
        """
        parts = [MODEL_NAMESPACE, self.version, self.train_digest,
                 f"p={self.basis.p}", f"seed={self.seed}"]
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    # -- prediction ------------------------------------------------------------

    def predict_features(self, features: np.ndarray) -> SurrogatePrediction:
        """Emulate one raw feature vector (see :func:`featurize_spec`)."""
        f = np.asarray(features, dtype=np.float64).ravel()
        x = self.space.to_unit(f[None, :])
        w_mean = np.empty(len(self.gps))
        w_var = np.empty(len(self.gps))
        for k, gp in enumerate(self.gps):
            mean_k, var_k = gp.predict(x)
            w_mean[k] = mean_k[0]
            w_var[k] = var_k[0]
        basis = self.basis
        mean = basis.reconstruct(w_mean[None, :])[0]
        # Coefficient GPs are independent, so trajectory variance is the
        # basis-weighted sum plus the truncation term, all in output units.
        var = ((basis.phi ** 2) @ w_var + basis.truncation_sd ** 2)
        sd = np.sqrt(var) * basis.scale
        ar_mean, ar_var = self.attack_gp.predict(x)
        return SurrogatePrediction(
            mean=np.maximum(mean, 0.0),
            sd=sd,
            attack_rate=float(np.clip(ar_mean[0], 0.0, 1.0)),
            attack_sd=float(np.sqrt(ar_var[0])),
            in_hull=self.space.contains(f),
        )

    def predict_spec(self, spec) -> SurrogatePrediction:
        """Emulate one :class:`~repro.core.parallel.InstanceSpec`."""
        return self.predict_features(featurize_spec(spec))

    # -- serialization ---------------------------------------------------------

    def to_payload(self) -> dict[str, np.ndarray]:
        """Flatten the model into a CAS-storable array payload."""
        payload: dict[str, np.ndarray] = {
            "feat_lo": self.space.lo,
            "feat_hi": self.space.hi,
            "names": np.asarray(self.names),
            "basis_mean": self.basis.mean,
            "basis_scale": np.asarray(self.basis.scale),
            "basis_phi": self.basis.phi,
            "basis_explained": self.basis.explained,
            "basis_truncation_sd": self.basis.truncation_sd,
            "n_days": np.asarray(self.n_days),
            "version": np.asarray(self.version),
            "train_digest": np.asarray(self.train_digest),
            "n_train": np.asarray(self.n_train),
            "seed": np.asarray(self.seed),
            "n_gps": np.asarray(len(self.gps)),
        }
        for name, gp in [(f"gp{k}", gp) for k, gp in enumerate(self.gps)
                         ] + [("ar", self.attack_gp)]:
            payload[f"{name}_x"] = gp.x
            payload[f"{name}_y"] = gp.y
            payload[f"{name}_rho"] = gp.rho
            payload[f"{name}_lam"] = np.asarray(gp.lam)
            payload[f"{name}_nugget"] = np.asarray(gp.nugget)
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, np.ndarray]) -> "SurrogateModel":
        """Rebuild a model from :meth:`to_payload` arrays."""

        def _gp(name: str) -> GPEmulator:
            return GPEmulator(
                x=np.asarray(payload[f"{name}_x"], dtype=np.float64),
                y=np.asarray(payload[f"{name}_y"], dtype=np.float64),
                rho=np.asarray(payload[f"{name}_rho"], dtype=np.float64),
                lam=float(payload[f"{name}_lam"]),
                nugget=float(payload[f"{name}_nugget"]),
            )

        basis = OutputBasis(
            mean=np.asarray(payload["basis_mean"], dtype=np.float64),
            scale=float(payload["basis_scale"]),
            phi=np.asarray(payload["basis_phi"], dtype=np.float64),
            explained=np.asarray(payload["basis_explained"],
                                 dtype=np.float64),
            truncation_sd=np.asarray(payload["basis_truncation_sd"],
                                     dtype=np.float64),
        )
        return cls(
            space=FeatureSpace(
                lo=np.asarray(payload["feat_lo"], dtype=np.float64),
                hi=np.asarray(payload["feat_hi"], dtype=np.float64)),
            basis=basis,
            gps=tuple(_gp(f"gp{k}")
                      for k in range(int(payload["n_gps"]))),
            attack_gp=_gp("ar"),
            names=tuple(str(n) for n in np.asarray(payload["names"])),
            n_days=int(payload["n_days"]),
            version=str(payload["version"]),
            train_digest=str(payload["train_digest"]),
            n_train=int(payload["n_train"]),
            seed=int(payload["seed"]),
        )


def train_model(
    corpus: Corpus,
    *,
    p_eta: int = DEFAULT_P_ETA,
    seed: int = 0,
    n_restarts: int = 3,
) -> SurrogateModel:
    """Fit a :class:`SurrogateModel` to a corpus, deterministically.

    Args:
        corpus: the training set (needs at least 3 rows for the GPs).
        p_eta: basis size (capped at the ensemble rank).
        seed: training seed; each coefficient GP gets its own derived
            stream, so two trainings on the same corpus produce
            identical fitted kernels.
        n_restarts: optimizer restarts per GP.
    """
    if len(corpus) < 3:
        raise ValueError(
            f"corpus has {len(corpus)} usable runs; need at least 3 "
            "(run more scenarios or replay more ledgers)")
    space = FeatureSpace.fit(corpus.features)
    x_unit = space.to_unit(corpus.features)
    basis = fit_basis(corpus.outputs, p_eta=p_eta)
    coeffs = basis.project(corpus.outputs)
    gps = tuple(
        fit_gp(x_unit, coeffs[:, k], np.random.default_rng([seed, k]),
               n_restarts=n_restarts)
        for k in range(basis.p)
    )
    attack_gp = fit_gp(x_unit, corpus.attack_rates,
                       np.random.default_rng([seed, 10 ** 6]),
                       n_restarts=n_restarts)
    return SurrogateModel(
        space=space,
        basis=basis,
        gps=gps,
        attack_gp=attack_gp,
        names=corpus.names,
        n_days=corpus.n_days,
        version=corpus.version,
        train_digest=corpus.digest(),
        n_train=len(corpus),
        seed=seed,
    )
