"""Model registry: serialized emulators in the CAS, one latest pointer.

Trained models are ordinary content-addressed payloads under their own
key family (:data:`~repro.surrogate.model.MODEL_NAMESPACE`), so they get
the store's integrity digest, quarantine and LRU machinery for free.
The registry adds the one piece of mutable state the fast path needs: a
small JSON pointer file naming the latest model key plus its training
provenance (train-set digest, corpus size, version), written atomically
next to the store's surrogate journal.

Staleness is decided against the pointer's recorded corpus size: once
the corpus outgrows the training set by more than the configured margin,
:meth:`ModelRegistry.stale` says retrain — the check ``repro surrogate
stats`` surfaces and the ops loop acts on.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from ..store.cas import ContentStore
from .corpus import corpus_version
from .model import MODEL_NAMESPACE, SurrogateModel

#: Corpus growth (completed runs beyond the train set) after which the
#: latest model is considered stale and a retrain is recommended.
DEFAULT_RETRAIN_AFTER: int = 32


class ModelRegistry:
    """Latest-model pointer over surrogate payloads in a content store.

    Args:
        store: the CAS holding serialized model payloads.
        retrain_after: corpus-growth margin for :meth:`stale`.
    """

    def __init__(self, store: ContentStore, *,
                 retrain_after: int = DEFAULT_RETRAIN_AFTER) -> None:
        self.store = store
        self.retrain_after = retrain_after

    @property
    def pointer_path(self) -> Path:
        """The latest-model JSON pointer file (atomic replace on write)."""
        return self.store.root / "surrogate" / "latest.json"

    # -- publish ---------------------------------------------------------------

    def publish(self, model: SurrogateModel) -> str:
        """Store a model payload and point ``latest`` at it.

        Returns the model's content key.  Publishing is idempotent: the
        same corpus + seed reproduces the same key and payload.
        """
        key = model.model_key()
        self.store.put(key, model.to_payload(), family=MODEL_NAMESPACE)
        info = {
            "key": key,
            "version": model.version,
            "train_digest": model.train_digest,
            "n_train": model.n_train,
            "n_days": model.n_days,
            "p_eta": model.basis.p,
            "seed": model.seed,
        }
        path = self.pointer_path
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".latest-",
                                        suffix=".json")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(info, fh, sort_keys=True, indent=1)
            os.replace(tmp_name, path)
        except BaseException:
            Path(tmp_name).unlink(missing_ok=True)
            raise
        return key

    # -- resolve ---------------------------------------------------------------

    def latest_info(self) -> dict[str, Any] | None:
        """The pointer record, or None when nothing was ever published."""
        try:
            return json.loads(self.pointer_path.read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def latest(self, *, salt: str | None = None) -> SurrogateModel | None:
        """Load the latest model, or None when absent or incompatible.

        A pointer whose recorded ``version`` does not match the current
        featurization + code-version salt is treated as missing: the
        kernels changed under the model, so its answers no longer
        correspond to what exact execution would produce.
        """
        info = self.latest_info()
        if info is None:
            return None
        if info.get("version") != corpus_version(salt):
            return None
        payload = self.store.get(info["key"])
        if payload is None:
            return None
        return SurrogateModel.from_payload(payload)

    def stale(self, corpus_size: int, *,
              salt: str | None = None) -> bool:
        """Whether the corpus has outgrown the latest model.

        True when no compatible model exists, or when ``corpus_size``
        exceeds the recorded train-set size by more than
        ``retrain_after`` runs.
        """
        info = self.latest_info()
        if info is None or info.get("version") != corpus_version(salt):
            return True
        return corpus_size > int(info["n_train"]) + self.retrain_after
