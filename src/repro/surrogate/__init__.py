"""Surrogate fast path: millisecond scenario answers from an emulator.

A full EpiHiper-style simulation per request can never serve millions of
users; an emulator trained on the corpus of completed runs can.  This
package turns the content-addressed store from a cache into a flywheel:

- :mod:`~repro.surrogate.corpus` replays run ledgers, resolves completed
  instances against the :class:`~repro.store.cas.ContentStore`, and
  extracts deterministic ``(feature-vector, trajectory)`` training pairs.
- :mod:`~repro.surrogate.model` trains the GPMSA-style
  :class:`~repro.calibration.basis.OutputBasis` +
  :class:`~repro.calibration.gp.GPEmulator` stack over the corpus and
  reconstructs full trajectories with predictive uncertainty bands.
- :mod:`~repro.surrogate.registry` serialises models into the CAS under
  their own key family with a latest-model pointer, train-set digest and
  staleness check.
- :mod:`~repro.surrogate.serving` is the fast-answer tier the scenario
  service consults before enqueueing: confident predictions complete in
  milliseconds with ``source: "surrogate"`` plus bands; everything else
  falls back to exact simulation, whose result feeds the next retrain
  (the active-learning loop).
"""

from .corpus import (
    FEATURE_VERSION,
    Corpus,
    build_corpus,
    corpus_ledger_path,
    feature_names,
    featurize_spec,
    spec_from_record,
    spec_record,
)
from .model import FeatureSpace, SurrogateModel, SurrogatePrediction, train_model
from .registry import ModelRegistry
from .serving import SurrogateGate

__all__ = [
    "FEATURE_VERSION",
    "Corpus",
    "FeatureSpace",
    "ModelRegistry",
    "SurrogateGate",
    "SurrogateModel",
    "SurrogatePrediction",
    "build_corpus",
    "corpus_ledger_path",
    "feature_names",
    "featurize_spec",
    "spec_from_record",
    "spec_record",
    "train_model",
]
