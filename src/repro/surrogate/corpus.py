"""Training corpus extraction: from run ledgers + CAS to (x, y) pairs.

Thousands of completed runs already sit on disk as content-addressed
blobs; the run ledger records which instance produced which key.  The
corpus builder replays one or more ledgers, keeps ``instance_completed``
events that carry their spec (recorded by
:mod:`repro.store.memo` since the surrogate era), re-derives each event's
cache key under the *current* code-version salt — which silently drops
runs produced by older kernels — and resolves the surviving keys against
the store.  What comes back is the emulator's training set: one
deterministic feature vector and one confirmed-case trajectory per
distinct completed instance.

Featurization is versioned (:data:`FEATURE_VERSION`) alongside the
store's code-version salt: a model trained under one (features, salt)
pair never silently serves requests keyed under another.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from ..store.cas import ContentStore
from ..store.keys import code_version_salt, instance_key
from ..store.ledger import replay_ledger
from ..synthpop.regions import ALL_CODES

#: Featurization scheme version; bump when the feature layout changes.
#: Stored with every trained model so serving can refuse a mismatch.
FEATURE_VERSION: str = "surrogate-features/v1"

#: Scalar features extracted from ``InstanceSpec.params``:
#: (feature name, accepted param keys, default when absent).
#: Defaults mirror :mod:`repro.core.runner`'s parameter handling, so an
#: absent knob and its explicit default featurize identically.
PARAM_FEATURES: tuple[tuple[str, tuple[str, ...], float], ...] = (
    ("tau", ("TAU",), 0.18),
    ("symp", ("SYMP",), 0.65),
    ("sh_compliance", ("SH_COMPLIANCE", "sh_compliance"), 0.0),
    ("vhi_compliance", ("VHI_COMPLIANCE", "vhi_compliance"), 0.0),
    ("lockdown_days", ("lockdown_days",), 60.0),
    ("reopen_level", ("reopen_level",), 0.0),
    ("tracing_compliance", ("tracing_compliance",), 0.0),
)


def feature_names() -> tuple[str, ...]:
    """The ordered feature vocabulary of :data:`FEATURE_VERSION`."""
    return tuple(
        [name for name, _keys, _default in PARAM_FEATURES]
        + ["log10_scale"]
        + [f"region:{code}" for code in ALL_CODES]
    )


def featurize_spec(spec) -> np.ndarray:
    """Deterministic float64 feature vector of one instance spec.

    Scalar disease/intervention parameters (with the runner's defaults
    for absent knobs), the log10 population scale, and a one-hot region
    block over every known region code.  The simulation ``seed`` is
    deliberately excluded: the emulator predicts the scenario's expected
    trajectory with uncertainty, not one replicate's stream.
    """
    params: Mapping[str, Any] = spec.params
    values: list[float] = []
    for _name, keys, default in PARAM_FEATURES:
        raw = next((params[k] for k in keys if k in params), default)
        values.append(float(raw))
    values.append(float(np.log10(float(spec.scale))))
    region = str(spec.region_code).upper()
    values.extend(1.0 if code == region else 0.0 for code in ALL_CODES)
    return np.asarray(values, dtype=np.float64)


def spec_record(spec) -> dict[str, Any]:
    """JSON-safe dict of the result-affecting ``InstanceSpec`` fields.

    This is what ledger events carry so the corpus builder can re-derive
    features (and re-key the event) long after the run finished.
    """
    return {
        "region": spec.region_code,
        "params": dict(spec.params),
        "n_days": int(spec.n_days),
        "scale": float(spec.scale),
        "seed": int(spec.seed),
        "asset_seed": int(spec.asset_seed),
        "label": spec.label,
    }


def spec_from_record(record: Mapping[str, Any]):
    """Rebuild an :class:`~repro.core.parallel.InstanceSpec` from a
    :func:`spec_record` dict (ledger replay path)."""
    from ..core.parallel import InstanceSpec

    return InstanceSpec(
        region_code=str(record["region"]),
        params=dict(record["params"]),
        n_days=int(record["n_days"]),
        scale=float(record["scale"]),
        seed=int(record["seed"]),
        label=str(record.get("label", "")),
        asset_seed=int(record.get("asset_seed", record["seed"])),
    )


def corpus_ledger_path(store: ContentStore) -> Path:
    """The store-adjacent journal the service folds exact runs into.

    A plain :class:`~repro.store.ledger.RunLedger` file under the store
    root — the broker appends spec-carrying ``instance_completed`` events
    there, and ``repro surrogate train`` replays it by default, closing
    the active-learning loop without extra plumbing.
    """
    return store.root / "surrogate" / "corpus.jsonl"


@dataclass(frozen=True)
class Corpus:
    """A resolved training set: features, trajectories, provenance.

    Attributes:
        features: ``(n, d)`` feature matrix (:func:`featurize_spec` rows).
        outputs: ``(n, T + 1)`` confirmed-case trajectories.
        attack_rates: ``(n,)`` scalar attack rates.
        keys: the content key behind each row (dedup identity).
        names: feature vocabulary (matches ``features`` columns).
        n_days: the shared horizon of every trajectory.
        version: ``"<FEATURE_VERSION>+<salt>"`` the rows were built under.
    """

    features: np.ndarray
    outputs: np.ndarray
    attack_rates: np.ndarray
    keys: tuple[str, ...]
    names: tuple[str, ...]
    n_days: int
    version: str

    def __len__(self) -> int:
        return len(self.keys)

    def digest(self) -> str:
        """SHA-256 over the sorted member keys plus the version.

        The train-set identity the model registry records: two corpora
        with the same completed runs under the same featurization hash
        identically regardless of ledger replay order.
        """
        h = hashlib.sha256(self.version.encode())
        for key in sorted(self.keys):
            h.update(key.encode())
        return h.hexdigest()

    def subset(self, idx) -> "Corpus":
        """Row-subset view (held-out evaluation splits)."""
        idx = np.asarray(idx, dtype=np.intp)
        return Corpus(
            features=self.features[idx],
            outputs=self.outputs[idx],
            attack_rates=self.attack_rates[idx],
            keys=tuple(self.keys[i] for i in idx),
            names=self.names,
            n_days=self.n_days,
            version=self.version,
        )


def corpus_version(salt: str | None = None) -> str:
    """The ``features+salt`` version string a corpus/model is bound to."""
    return f"{FEATURE_VERSION}+{salt if salt is not None else code_version_salt()}"


def completed_spec_events(
    ledgers: Iterable[str | Path],
) -> list[dict[str, Any]]:
    """Spec-carrying ``instance_completed`` events across ledger files.

    Later events win per key (re-executions overwrite), and events
    without a ``spec`` field — pre-surrogate ledgers — are skipped.
    """
    by_key: dict[str, dict[str, Any]] = {}
    for path in ledgers:
        for event in replay_ledger(path).events:
            if event.get("event") != "instance_completed":
                continue
            if "spec" not in event or "key" not in event:
                continue
            by_key[event["key"]] = event
    return list(by_key.values())


def build_corpus(
    store: ContentStore,
    ledgers: Iterable[str | Path] | None = None,
    *,
    salt: str | None = None,
    n_days: int | None = None,
) -> Corpus:
    """Scan ledgers + store into a :class:`Corpus`.

    Args:
        store: the content-addressed store holding run payloads.  The
            store's own corpus journal (:func:`corpus_ledger_path`) is
            always replayed in addition to ``ledgers``.
        ledgers: extra run-ledger files (nightly journals, service logs).
        salt: cache-key salt override (tests); defaults to the current
            code-version salt.  Events whose recorded key does not match
            their spec re-keyed under this salt are dropped — they were
            produced by a different kernel version and would poison the
            training set.
        n_days: restrict to one horizon; defaults to the most common
            horizon among the resolved events (trajectory rows must share
            a length for the output basis).
    """
    paths: list[Path] = [corpus_ledger_path(store)]
    for p in ledgers or ():
        paths.append(Path(p))
    events = completed_spec_events(paths)

    rows: list[tuple[str, Any]] = []
    for event in events:
        spec = spec_from_record(event["spec"])
        if instance_key(spec, salt=salt) != event["key"]:
            continue  # stale code version: key no longer derivable
        rows.append((event["key"], spec))

    if n_days is None and rows:
        horizons = np.array([spec.n_days for _k, spec in rows])
        values, counts = np.unique(horizons, return_counts=True)
        n_days = int(values[np.argmax(counts)])

    feats: list[np.ndarray] = []
    outs: list[np.ndarray] = []
    rates: list[float] = []
    keys: list[str] = []
    for key, spec in rows:
        if n_days is not None and spec.n_days != n_days:
            continue
        payload = store.get(key)
        if payload is None or "confirmed" not in payload:
            continue  # evicted or foreign payload: nothing to learn from
        feats.append(featurize_spec(spec))
        outs.append(np.asarray(payload["confirmed"], dtype=np.float64))
        rates.append(float(payload["attack_rate"]))
        keys.append(key)

    d = len(feature_names())
    return Corpus(
        features=(np.vstack(feats) if feats
                  else np.empty((0, d), dtype=np.float64)),
        outputs=(np.vstack(outs) if outs
                 else np.empty((0, (n_days or 0) + 1), dtype=np.float64)),
        attack_rates=np.asarray(rates, dtype=np.float64),
        keys=tuple(keys),
        names=feature_names(),
        n_days=int(n_days or 0),
        version=corpus_version(salt),
    )
