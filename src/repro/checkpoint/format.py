"""Deterministic snapshot/restore of in-flight simulation state.

A snapshot is a flat ``{name: ndarray}`` payload — the same shape the CAS
stores for results — capturing everything a
:class:`~repro.epihiper.engine.Simulation` needs to resume bit-identically:

- the per-person state arrays (health, dwell timers, scheduled next
  states, node scaling traits) and per-edge state (weights, suppression
  counts);
- the exact RNG stream position (``bit_generator.state``, with the 128-bit
  PCG64 integers serialised losslessly);
- the transition log accumulated so far, the census/memory histories, and
  the ``engine.*`` work counters;
- intervention state: each intervention's ``fired`` count plus the mutable
  values living in its action's closure cells (timed-release queues,
  suppression handles, new-entrant trackers, compliance samples).

Restore applies a snapshot onto a *freshly prepared* simulation of the
same instance spec: deterministic preparation rebuilds the structure
(models, networks, intervention closures), and the snapshot overwrites the
mutable state — including writing closure cells back via
``cell.cell_contents``.  The contract, enforced by ``tests/checkpoint``:
resume at tick t, run to T, and every output byte (transition log, census,
result payload, RNG stream) equals an uninterrupted run's.

Payloads contain plain numpy arrays only (no object dtype — the CAS
digest hashes raw bytes), with one ``meta`` entry holding the JSON-encoded
scalar state as uint8.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

import numpy as np

from ..epihiper.engine import Simulation
from ..epihiper.interventions import SuppressionHandle
from ..epihiper.npi import _NewEntrants, _TimedReleases
from ..epihiper.output import TransitionRecorder

#: Bumped on any incompatible snapshot-layout change; a mismatched
#: checkpoint is invalid (never misread), and the executor falls back.
FORMAT_VERSION = 1

#: Payload entry holding the JSON scalar state.
META_KEY = "meta"

#: Sentinel for closure values the walker cannot encode; restore leaves
#: the freshly rebuilt value in place (constants, module functions).
_OPAQUE = object()


class CheckpointError(ValueError):
    """A snapshot that cannot be applied (wrong instance, torn layout)."""


# -- lossless JSON for big integers -------------------------------------------


def _ints_to_json(obj: Any) -> Any:
    """Recursively wrap ints as strings (PCG64 state is 128-bit)."""
    if isinstance(obj, dict):
        return {k: _ints_to_json(v) for k, v in obj.items()}
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (int, np.integer)):
        return {"__int__": str(int(obj))}
    return obj


def _ints_from_json(obj: Any) -> Any:
    """Inverse of :func:`_ints_to_json`."""
    if isinstance(obj, dict):
        if set(obj) == {"__int__"}:
            return int(obj["__int__"])
        return {k: _ints_from_json(v) for k, v in obj.items()}
    return obj


# -- closure-cell encoding -----------------------------------------------------
#
# NPI actions keep their mutable state in closure cells (see repro.epihiper
# .npi): timed-release queues, suppression handles, lazily created
# new-entrant trackers, small state dicts, and captured scalars.  The
# walker encodes exactly that taxonomy; anything else is opaque and left
# to deterministic reconstruction.


def _encode_value(value: Any, arrays: dict[str, np.ndarray],
                  counter: list[int]) -> dict[str, Any]:
    """One closure value -> a JSON node (arrays spill into ``arrays``)."""
    if value is None:
        return {"t": "none"}
    if isinstance(value, bool):
        return {"t": "bool", "v": value}
    if isinstance(value, int):
        return {"t": "int", "v": value}
    if isinstance(value, float):
        return {"t": "float", "v": value}
    if isinstance(value, str):
        return {"t": "str", "v": value}
    if isinstance(value, np.ndarray):
        ref = f"cell:{counter[0]}"
        counter[0] += 1
        arrays[ref] = value.copy()
        return {"t": "arr", "k": ref}
    if isinstance(value, SuppressionHandle):
        ref = f"cell:{counter[0]}"
        counter[0] += 1
        arrays[ref] = value.edge_rows.copy()
        return {"t": "handle", "k": ref, "released": bool(value.released)}
    if isinstance(value, _TimedReleases):
        return {"t": "releases", "due": [
            [int(tick), _encode_value(handle, arrays, counter)]
            for tick, handle in value._due]}
    if isinstance(value, _NewEntrants):
        return {"t": "entrants", "code": int(value.code),
                "prev": _encode_value(value._prev, arrays, counter)}
    if isinstance(value, dict):
        return {"t": "dict", "items": [
            [str(k), _encode_value(v, arrays, counter)]
            for k, v in value.items()]}
    return {"t": "opaque"}


def _decode_value(node: dict[str, Any],
                  payload: Mapping[str, np.ndarray]) -> Any:
    """Inverse of :func:`_encode_value` (``_OPAQUE`` for skipped cells)."""
    kind = node["t"]
    if kind == "none":
        return None
    if kind in ("bool", "int", "float", "str"):
        return node["v"]
    if kind == "arr":
        return payload[node["k"]]
    if kind == "handle":
        return SuppressionHandle(payload[node["k"]],
                                 released=bool(node["released"]))
    if kind == "releases":
        releases = _TimedReleases()
        releases._due = [(int(tick), _decode_value(handle, payload))
                         for tick, handle in node["due"]]
        return releases
    if kind == "entrants":
        entrants = _NewEntrants(int(node["code"]))
        entrants._prev = _decode_value(node["prev"], payload)
        return entrants
    if kind == "dict":
        return {k: _decode_value(v, payload) for k, v in node["items"]}
    return _OPAQUE


# -- snapshot / restore --------------------------------------------------------


def snapshot_simulation(sim: Simulation) -> dict[str, np.ndarray]:
    """Freeze a simulation's full mutable state into a CAS payload."""
    arrays: dict[str, np.ndarray] = {}
    counter = [0]
    ivs = []
    for iv in sim.interventions:
        cells = [_encode_value(cell.cell_contents, arrays, counter)
                 for cell in (iv.action.__closure__ or ())]
        ivs.append({"name": iv.name, "fired": int(iv.fired), "cells": cells})

    log = sim.recorder.finalize()
    meta = {
        "version": FORMAT_VERSION,
        "tick": int(sim.tick),
        "region": sim.net.region_code,
        "n": int(sim.pop.size),
        "n_edges": int(sim.net.n_edges),
        "n_pending": int(sim.sched.n_pending),
        "rng": _ints_to_json(sim.rng.bit_generator.state),
        "total_operations": int(sim.suppressor.total_operations),
        "n_suppressed": int(sim.suppressor.n_suppressed),
        "variables": dict(sim.variables),
        "metrics": sim.metrics.dump("engine."),
        "interventions": ivs,
        "node_traits": sorted(sim.node_traits),
        "edge_traits": sorted(sim.edge_traits),
    }
    if sim._counts_history:
        counts = np.vstack(sim._counts_history)
    else:
        counts = np.empty((0, sim.model.n_states), dtype=np.int64)
    # Copies throughout: the simulation keeps mutating these arrays in
    # place after the snapshot, and the payload must stay frozen until
    # (and after) it is serialised.
    payload: dict[str, np.ndarray] = {
        "health": sim.health.copy(),
        "dwell": sim.sched.dwell.copy(),
        "next_state": sim.sched.next_state.copy(),
        "node_sus": sim.node_susceptibility.copy(),
        "node_inf": sim.node_infectivity.copy(),
        "edge_weight": sim.edge_weight.copy(),
        "supp_count": sim.suppressor.count.copy(),
        "log_tick": log.tick,
        "log_pid": log.pid,
        "log_state": log.state,
        "log_infector": log.infector,
        "counts": counts,
        "memory": np.asarray(sim._memory_history, dtype=np.int64),
    }
    for name in meta["node_traits"]:
        payload[f"ntrait:{name}"] = sim.node_traits[name].copy()
    for name in meta["edge_traits"]:
        payload[f"etrait:{name}"] = sim.edge_traits[name].copy()
    payload.update(arrays)
    blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    payload[META_KEY] = np.frombuffer(blob, dtype=np.uint8).copy()
    return payload


def restore_simulation(sim: Simulation,
                       payload: Mapping[str, np.ndarray]) -> int:
    """Apply a snapshot onto a freshly prepared ``sim``; returns its tick.

    The simulation must have been prepared for the *same instance spec*
    (same assets, model params, seed, intervention stack) — preparation
    rebuilds the deterministic structure, the snapshot overwrites the
    mutable state.  Raises :class:`CheckpointError` on any mismatch.
    """
    try:
        meta = json.loads(bytes(payload[META_KEY]))
    except (KeyError, ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint meta: {exc}") from exc
    if meta.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format v{meta.get('version')} != v{FORMAT_VERSION}")
    if (int(meta["n"]) != sim.pop.size
            or int(meta["n_edges"]) != sim.net.n_edges
            or meta["region"] != sim.net.region_code):
        raise CheckpointError(
            f"checkpoint is for another instance "
            f"({meta['region']}, n={meta['n']})")
    ivs_meta = meta["interventions"]
    if len(ivs_meta) != len(sim.interventions):
        raise CheckpointError("intervention stack shape changed")
    for iv, m in zip(sim.interventions, ivs_meta):
        if iv.name != m["name"]:
            raise CheckpointError(
                f"intervention order changed: {iv.name!r} != {m['name']!r}")
        if len(iv.action.__closure__ or ()) != len(m["cells"]):
            raise CheckpointError(
                f"closure layout of {iv.name!r} changed")

    try:
        # In-place writes keep the arrays live as batched-lane row views.
        sim.health[...] = payload["health"]
        sim.sched.dwell[...] = payload["dwell"]
        sim.sched.next_state[...] = payload["next_state"]
        sim.node_susceptibility[...] = payload["node_sus"]
        sim.node_infectivity[...] = payload["node_inf"]
        sim.edge_weight[...] = payload["edge_weight"]
        sim.suppressor.count[...] = payload["supp_count"]
    except (KeyError, ValueError) as exc:
        raise CheckpointError(f"state arrays do not apply: {exc}") from exc
    sim.sched.n_pending = int(meta["n_pending"])
    sim.suppressor.total_operations = int(meta["total_operations"])
    sim.suppressor.n_suppressed = int(meta["n_suppressed"])
    sim.rng.bit_generator.state = _ints_from_json(meta["rng"])
    sim.variables = {k: float(v) for k, v in meta["variables"].items()}

    recorder = TransitionRecorder()
    recorder.record_chunks(payload["log_tick"], payload["log_pid"],
                           payload["log_state"], payload["log_infector"])
    sim.recorder = recorder
    counts = payload["counts"]
    sim._counts_history = [counts[i] for i in range(counts.shape[0])]
    sim._memory_history = [int(x) for x in payload["memory"]]
    sim.metrics.clear("engine.")
    sim.metrics.merge(meta["metrics"])
    sim.node_traits = {name: payload[f"ntrait:{name}"]
                       for name in meta["node_traits"]}
    sim.edge_traits = {name: payload[f"etrait:{name}"]
                       for name in meta["edge_traits"]}

    for iv, m in zip(sim.interventions, ivs_meta):
        iv.fired = int(m["fired"])
        for cell, node in zip(iv.action.__closure__ or (), m["cells"]):
            value = _decode_value(node, payload)
            if value is not _OPAQUE:
                cell.cell_contents = value

    sim.tick = int(meta["tick"])
    return sim.tick
