"""Checkpointed execution: bounded-loss restart for long simulations.

The paper's workflows assume multi-week EpiHiper campaigns on shared HPC
queues where preemption and node failure are routine.  Without snapshots a
crash forfeits the whole instance and the supervisor re-executes from tick
0, so expected lost work grows linearly with instance runtime.  This
package turns retry cost from O(run) into O(checkpoint interval):

- :mod:`repro.checkpoint.format` — deterministic snapshot/restore of an
  in-flight :class:`~repro.epihiper.engine.Simulation` (state arrays,
  dwell timers, intervention closure state, exact RNG stream position)
  with a bit-identical resume guarantee;
- :mod:`repro.checkpoint.manager` — the durability layer: snapshots are
  published through the CAS as content-addressed ``checkpoint/v1`` blobs
  keyed by (instance cache key, tick), with an atomic per-instance
  pointer, SHA-256 integrity like result blobs, lease heartbeats on every
  write, and corrupt-blob fallback to the next-older snapshot.
"""

from .format import (
    CheckpointError,
    restore_simulation,
    snapshot_simulation,
)
from .manager import (
    CHECKPOINT_NAMESPACE,
    CheckpointManager,
    CheckpointPlan,
    checkpoint_blob_key,
)

__all__ = [
    "CHECKPOINT_NAMESPACE",
    "CheckpointError",
    "CheckpointManager",
    "CheckpointPlan",
    "checkpoint_blob_key",
    "restore_simulation",
    "snapshot_simulation",
]
