"""Durable checkpoint storage through the CAS, plus the resume plan.

Snapshots are published as ordinary content-store blobs under the
``checkpoint/v1`` family, named by a derived content key over
``(instance cache key, tick)`` — so every integrity property result blobs
enjoy (atomic publish, SHA-256 digest verified on read, corrupt blobs
quarantined and served as misses) applies to checkpoints for free.  A
small per-instance pointer file (``<store>/checkpoints/<key>.json``,
atomically replaced) lists the ticks written; resume walks it newest
first, falling back past invalid blobs to older snapshots and finally to
tick 0.

Every checkpoint write doubles as a **lease heartbeat**: long instances
outlive the :class:`~repro.store.cas.LeaseTable` stale-break TTL, so the
executing worker re-stamps the instance's lease record on each write,
keeping slow-but-alive holders from being stolen while dead holders still
are.

:class:`CheckpointPlan` is the picklable knob bundle the execution plane
threads from the CLI down into pool workers; workers derive the instance
cache key themselves (the code-version salt rides in the plan so parent
and worker agree even across source-tree divergence).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

import numpy as np

from ..obs.registry import MetricsRegistry
from ..store.cas import CHECKPOINT_FAMILY, ContentStore, LeaseTable
from ..store.ledger import RunLedger

#: Key family label of checkpoint blobs in the CAS (``repro store stats``
#: breaks the population down by family; gc exempts fresh members —
#: defined next to the gc exemption so the two cannot drift).
CHECKPOINT_NAMESPACE = CHECKPOINT_FAMILY

#: Store-root subdirectory holding the per-instance tick pointers.
CHECKPOINT_DIRNAME = "checkpoints"

#: Counters this layer publishes (under ``checkpoint.``).
CHECKPOINT_COUNTERS = ("written", "resumed", "bytes", "invalid",
                      "ticks_saved", "reclaimed_bytes")


def checkpoint_blob_key(instance_key: str, tick: int) -> str:
    """Content key of the snapshot of ``instance_key`` at ``tick``."""
    h = hashlib.sha256()
    h.update(CHECKPOINT_NAMESPACE.encode())
    h.update(b"\n")
    h.update(instance_key.encode())
    h.update(b"\n")
    h.update(str(int(tick)).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class CheckpointPlan:
    """Picklable checkpoint configuration threaded through the fan-out.

    Attributes:
        store_root: CAS directory snapshots are written through.
        every: checkpoint interval in ticks; ``0`` disables checkpointing
            entirely (the tick loop runs unchanged).
        salt: code-version salt for deriving instance cache keys inside
            workers (None = resolve from the worker's own source tree).
        lease_root: lease-table directory heartbeats re-stamp (None =
            no heartbeats).
        ledger_path: run-ledger file checkpoint events append to (None =
            no ledger events; pool workers append concurrently, one
            flushed line per event, the same discipline shard spools use).
    """

    store_root: str
    every: int
    salt: str | None = None
    lease_root: str | None = None
    ledger_path: str | None = None

    @property
    def enabled(self) -> bool:
        """Whether this plan checkpoints at all."""
        return self.every > 0 and bool(self.store_root)

    def manager(self, *,
                metrics: MetricsRegistry | None = None) -> "CheckpointManager":
        """Open a manager over this plan's store (one per executor)."""
        return CheckpointManager(self, metrics=metrics)


class CheckpointManager:
    """Reads and writes one instance's checkpoint chain through the CAS."""

    def __init__(self, plan: CheckpointPlan, *,
                 metrics: MetricsRegistry | None = None) -> None:
        self.plan = plan
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Unbounded handle: checkpoint writes must never trigger the LRU
        # gc from inside a worker (the owning store enforces its bound).
        self.store = ContentStore(Path(plan.store_root))
        self._leases = (LeaseTable(Path(plan.lease_root))
                        if plan.lease_root else None)
        self._ledger: RunLedger | None = None
        for name in CHECKPOINT_COUNTERS:
            self.metrics.counter(f"checkpoint.{name}")

    # -- pointer file ----------------------------------------------------------

    def pointer_path(self, instance_key: str) -> Path:
        """The per-instance tick-pointer file."""
        return self.store.root / CHECKPOINT_DIRNAME / f"{instance_key}.json"

    def ticks(self, instance_key: str) -> list[int]:
        """Ticks with a recorded snapshot, ascending ([] when none)."""
        try:
            record = json.loads(self.pointer_path(instance_key).read_text(
                encoding="utf-8"))
            out = sorted({int(t) for t in record["ticks"]})
        except (OSError, ValueError, TypeError, KeyError):
            return []
        return out

    def latest_tick(self, instance_key: str) -> int | None:
        """Newest recorded snapshot tick (no blob validation)."""
        ticks = self.ticks(instance_key)
        return ticks[-1] if ticks else None

    def _write_pointer(self, instance_key: str, ticks: list[int]) -> None:
        """Atomically replace the pointer (readers never see a torn file)."""
        path = self.pointer_path(instance_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = json.dumps({"instance": instance_key, "ticks": ticks},
                            sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(record)
            os.replace(tmp, path)
        except BaseException:
            Path(tmp).unlink(missing_ok=True)
            raise

    # -- events ----------------------------------------------------------------

    def _ledger_event(self, event: str, **fields) -> None:
        if self.plan.ledger_path is None:
            return
        if self._ledger is None:
            self._ledger = RunLedger(self.plan.ledger_path)
        self._ledger.append(event, **fields)

    # -- write / read ----------------------------------------------------------

    def write(self, instance_key: str, payload: Mapping[str, np.ndarray], *,
              tick: int) -> str:
        """Publish one snapshot; returns its blob key.

        Also the lease heartbeat: the instance's lease record is
        re-stamped so a long run is not stolen mid-flight by a contender
        reading a lapsed TTL.
        """
        blob_key = checkpoint_blob_key(instance_key, tick)
        path = self.store.put(blob_key, payload,
                              family=CHECKPOINT_NAMESPACE)
        ticks = self.ticks(instance_key)
        if tick not in ticks:
            ticks = sorted(ticks + [int(tick)])
            self._write_pointer(instance_key, ticks)
        size = path.stat().st_size
        self.metrics.inc("checkpoint.written")
        self.metrics.inc("checkpoint.bytes", int(size))
        if self._leases is not None:
            self._leases.renew(instance_key)
        self._ledger_event("checkpoint_written", key=instance_key,
                           tick=int(tick), bytes=int(size))
        return blob_key

    def load_latest(
        self, instance_key: str,
    ) -> tuple[int, dict[str, np.ndarray]] | None:
        """Newest *valid* snapshot as ``(tick, payload)``, or None.

        Walks the pointer newest-first; a missing or corrupt blob (the
        CAS quarantines it) counts as ``checkpoint.invalid`` and falls
        back to the next-older snapshot, then to None — the tick-0
        restart the supervisor always had.
        """
        for tick in reversed(self.ticks(instance_key)):
            payload = self.store.get(checkpoint_blob_key(instance_key, tick))
            if payload is None:
                self.invalidate(instance_key, tick)
                continue
            return tick, payload
        return None

    def invalidate(self, instance_key: str, tick: int) -> None:
        """Drop one snapshot from the chain (unreadable or inapplicable).

        The blob — if still present, e.g. a restore-time format mismatch
        the CAS digest cannot catch — is quarantined for post-mortem, and
        the tick leaves the pointer so later resumes go straight to the
        next-older snapshot.
        """
        self.metrics.inc("checkpoint.invalid")
        path = self.store.path_of(checkpoint_blob_key(instance_key, tick))
        if path.exists():
            self.store._quarantine(path)
        remaining = [t for t in self.ticks(instance_key) if t != int(tick)]
        self._write_pointer(instance_key, remaining)
        self._ledger_event("checkpoint_invalid", key=instance_key,
                           tick=int(tick))

    def resumed(self, instance_key: str, tick: int, *,
                attempt: int = 0) -> None:
        """Account one successful resume (``tick`` ticks of work saved)."""
        self.metrics.inc("checkpoint.resumed")
        self.metrics.inc("checkpoint.ticks_saved", int(tick))
        self._ledger_event("checkpoint_resumed", key=instance_key,
                           tick=int(tick), attempt=int(attempt))

    def discard(self, instance_key: str) -> int:
        """Delete an instance's checkpoints; returns bytes reclaimed.

        Called once the terminal result blob is durable in the CAS —
        snapshots of a finished instance are pure disk overhead.
        """
        reclaimed = 0
        for tick in self.ticks(instance_key):
            path = self.store.path_of(checkpoint_blob_key(instance_key, tick))
            try:
                size = path.stat().st_size
                path.unlink()
                reclaimed += size
            except OSError:
                continue
        self.pointer_path(instance_key).unlink(missing_ok=True)
        if reclaimed:
            self.metrics.inc("checkpoint.reclaimed_bytes", int(reclaimed))
            self._ledger_event("checkpoint_discarded", key=instance_key,
                               bytes=int(reclaimed))
        return reclaimed
