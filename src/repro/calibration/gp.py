"""Gaussian-process emulator over basis coefficients (Appendix E, Eq. 4).

Each basis coefficient ``w_i(theta)`` gets an independent zero-mean GP prior
with the GPMSA parameterisation::

    w_i ~ GP(0, lambda_wi^-1 R(theta, theta'; rho_wi))
    R(theta, theta'; rho) = prod_k rho_k^(4 (theta_k - theta'_k)^2)

with a marginal precision lambda_wi, per-dimension correlation parameters
rho_k in (0, 1], and a nugget so "interpolation is not necessarily
enforced".  Hyperparameters are fitted by maximising the marginal likelihood
with beta/gamma-prior regularisation matching GPMSA's defaults.

Inputs are expected in the unit cube (use
:meth:`repro.calibration.lhs.ParameterSpace.to_unit`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg, optimize
from scipy.special import expit


def gpmsa_correlation(
    x1: np.ndarray, x2: np.ndarray, rho: np.ndarray
) -> np.ndarray:
    """The GPMSA correlation matrix between unit-cube point sets.

    ``R[i, j] = prod_k rho_k ** (4 * (x1[i,k] - x2[j,k])**2)`` — a squared
    exponential re-parameterised so ``rho_k`` is the correlation between
    points half a unit apart in dimension k.
    """
    x1 = np.atleast_2d(x1)
    x2 = np.atleast_2d(x2)
    log_rho = np.log(np.clip(rho, 1e-12, 1.0))
    d2 = (x1[:, None, :] - x2[None, :, :]) ** 2  # (n1, n2, d)
    return np.exp(4.0 * np.tensordot(d2, log_rho, axes=([2], [0])))


@dataclass
class GPEmulator:
    """A fitted single-output GP on unit-cube inputs.

    Attributes:
        x: ``(n, d)`` training inputs.
        y: ``(n,)`` training targets (one basis coefficient).
        rho: fitted per-dimension correlations.
        lam: fitted marginal precision lambda_w.
        nugget: fitted noise/nugget variance (relative to 1/lam).
    """

    x: np.ndarray
    y: np.ndarray
    rho: np.ndarray
    lam: float
    nugget: float

    def __post_init__(self) -> None:
        r = gpmsa_correlation(self.x, self.x, self.rho)
        cov = (r + self.nugget * np.eye(len(self.y))) / self.lam
        self._chol = linalg.cho_factor(cov, lower=True)
        self._alpha = linalg.cho_solve(self._chol, self.y)

    def predict(self, x_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at ``x_new`` rows.

        Returns:
            ``(mean, var)`` arrays of length ``len(x_new)``.
        """
        x_new = np.atleast_2d(x_new)
        k = gpmsa_correlation(x_new, self.x, self.rho) / self.lam
        mean = k @ self._alpha
        v = linalg.cho_solve(self._chol, k.T)
        prior_var = (1.0 + self.nugget) / self.lam
        var = np.maximum(prior_var - np.einsum("ij,ji->i", k, v), 1e-12)
        return mean, var

    def loo_residuals(self) -> np.ndarray:
        """Leave-one-out standardised residuals (emulator diagnostics)."""
        cov_inv = linalg.cho_solve(self._chol, np.eye(len(self.y)))
        diag = np.diag(cov_inv)
        return (cov_inv @ self.y) / diag / np.sqrt(1.0 / diag)


def _neg_log_marginal(
    params: np.ndarray, x: np.ndarray, y: np.ndarray
) -> float:
    d = x.shape[1]
    rho = expit(params[:d])  # logistic -> (0, 1)
    log_lam = params[d]
    log_nug = params[d + 1]
    lam = np.exp(log_lam)
    nugget = np.exp(log_nug)
    n = len(y)
    r = gpmsa_correlation(x, x, rho)
    cov = (r + nugget * np.eye(n)) / lam
    try:
        cho = linalg.cho_factor(cov, lower=True)
    except linalg.LinAlgError:
        return 1e10
    alpha = linalg.cho_solve(cho, y)
    logdet = 2.0 * np.log(np.diag(cho[0])).sum()
    nll = 0.5 * (y @ alpha + logdet + n * np.log(2 * np.pi))
    # GPMSA-style regularisation: mild pull of rho toward 1 (smoothness),
    # gamma-like shrinkage on lam, log-normal prior keeping the nugget small.
    nll += 0.2 * np.sum(1.0 - rho)
    nll += 0.01 * (log_lam ** 2)
    nll += 0.5 * ((log_nug + 4.0) / 2.0) ** 2
    return float(nll)


def fit_gp(
    x: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator | None = None,
    *,
    seed: int | None = None,
    n_restarts: int = 3,
) -> GPEmulator:
    """Fit a :class:`GPEmulator` by regularised maximum marginal likelihood.

    The only randomness is the multi-start initialisation, and it is
    fully determined by the caller: pass either an explicit ``rng`` or a
    ``seed`` (two fits with the same seed produce identical kernels).

    Args:
        x: ``(n, d)`` unit-cube inputs.
        y: ``(n,)`` coefficient values.
        rng: used for multi-start initialisation; mutually exclusive
            with ``seed``.
        seed: convenience alternative to ``rng`` — the fit draws its
            restarts from ``np.random.default_rng(seed)``.
        n_restarts: optimizer restarts (keeps the best optimum).
    """
    if rng is not None and seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y row counts differ")
    if x.shape[0] < 3:
        raise ValueError("need at least 3 training points")
    d = x.shape[1]

    best_params, best_val = None, np.inf
    for k in range(n_restarts):
        x0 = np.concatenate([
            rng.normal(1.0, 0.5, size=d),  # logistic(1) ~ rho 0.73
            [rng.normal(0.0, 0.3)],
            [rng.normal(-4.0, 0.5)],
        ])
        res = optimize.minimize(
            _neg_log_marginal, x0, args=(x, y), method="Nelder-Mead",
            options={"maxiter": 400, "xatol": 1e-4, "fatol": 1e-6})
        if res.fun < best_val:
            best_params, best_val = res.x, res.fun
    assert best_params is not None
    rho = expit(best_params[:d])
    return GPEmulator(
        x=x, y=y, rho=rho,
        lam=float(np.exp(best_params[d])),
        nugget=float(np.exp(best_params[d + 1])),
    )
