"""Bayesian calibration: LHS designs, GP emulation, GPMSA-style MCMC."""

from .basis import DEFAULT_P_ETA, OutputBasis, fit_basis
from .discrepancy import (
    DEFAULT_P_DELTA,
    discrepancy_basis,
    discrepancy_covariance,
)
from .gp import GPEmulator, fit_gp, gpmsa_correlation
from .gpmsa import (
    CalibrationResult,
    GPMSACalibrator,
    log_counts,
)
from .lhs import (
    ParameterSpace,
    latin_hypercube,
    maximin_lhs,
    sample_design,
)
from .mcmc import MCMCResult, metropolis
from .quantile import (
    QuantileEmulator,
    fit_quantile_emulator,
    replicate_quantiles,
)

__all__ = [
    "QuantileEmulator",
    "fit_quantile_emulator",
    "replicate_quantiles",
    "CalibrationResult",
    "DEFAULT_P_DELTA",
    "DEFAULT_P_ETA",
    "GPEmulator",
    "GPMSACalibrator",
    "MCMCResult",
    "OutputBasis",
    "ParameterSpace",
    "discrepancy_basis",
    "discrepancy_covariance",
    "fit_basis",
    "fit_gp",
    "gpmsa_correlation",
    "latin_hypercube",
    "log_counts",
    "maximin_lhs",
    "metropolis",
    "sample_design",
]
