"""Latin hypercube sampling for calibration designs (McKay et al. [35]).

Case study 3: "We created a design of 100 configurations (prior) with the
Latin hypercube sampling method."  Provides plain and maximin LHS over
boxed parameter spaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class ParameterSpace:
    """A boxed parameter space with named dimensions.

    Attributes:
        names: one label per dimension (e.g. ``("TAU", "SYMP")``).
        lower / upper: bounds per dimension.
    """

    names: tuple[str, ...]
    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lo, hi = np.asarray(self.lower), np.asarray(self.upper)
        if lo.shape != hi.shape or lo.shape != (len(self.names),):
            raise ValueError("bounds must match the number of names")
        if (hi <= lo).any():
            raise ValueError("upper bounds must exceed lower bounds")

    @property
    def dim(self) -> int:
        """Number of parameters."""
        return len(self.names)

    def to_unit(self, theta: np.ndarray) -> np.ndarray:
        """Map parameter values into the unit cube."""
        return (np.asarray(theta) - self.lower) / (self.upper - self.lower)

    def from_unit(self, u: np.ndarray) -> np.ndarray:
        """Map unit-cube points into parameter space."""
        return self.lower + np.asarray(u) * (self.upper - self.lower)

    def contains(self, theta: np.ndarray) -> np.ndarray:
        """Boolean mask of rows inside the box."""
        theta = np.atleast_2d(theta)
        return ((theta >= self.lower) & (theta <= self.upper)).all(axis=1)


def latin_hypercube(
    n: int, dim: int, rng: np.random.Generator
) -> np.ndarray:
    """Plain LHS: ``n`` points in the unit cube, one per stratum per axis."""
    if n < 1 or dim < 1:
        raise ValueError("n and dim must be positive")
    u = (rng.random((n, dim)) + np.arange(n)[:, None]) / n
    for k in range(dim):
        u[:, k] = u[rng.permutation(n), k]
    return u


def maximin_lhs(
    n: int,
    dim: int,
    rng: np.random.Generator,
    *,
    n_candidates: int = 20,
) -> np.ndarray:
    """Pick the candidate LHS with the largest minimum pairwise distance.

    A cheap space-filling improvement over plain LHS, standard practice for
    GP emulator designs [46].
    """
    best, best_score = None, -np.inf
    for _ in range(n_candidates):
        u = latin_hypercube(n, dim, rng)
        if n > 1:
            d2 = ((u[:, None, :] - u[None, :, :]) ** 2).sum(-1)
            np.fill_diagonal(d2, np.inf)
            score = float(d2.min())
        else:
            score = 0.0
        if score > best_score:
            best, best_score = u, score
    assert best is not None
    return best


def sample_design(
    space: ParameterSpace,
    n: int,
    rng: np.random.Generator,
    *,
    maximin: bool = True,
) -> np.ndarray:
    """An ``(n, dim)`` LHS design over ``space`` in natural units."""
    u = (maximin_lhs if maximin else latin_hypercube)(n, space.dim, rng)
    return space.from_unit(u)
