"""Quantile-based emulation for stochastic simulators (Fadikar et al. [18]).

The paper's calibration reference [18] — "Calibrating a stochastic,
agent-based model using quantile-based emulation" — handles simulator
stochasticity by emulating *quantiles* of the replicate distribution at
each design point instead of a single realisation: with R replicates per
design point, the q-quantile curve across replicates is a smooth function
of theta that a GP can emulate, and a set of quantile emulators captures
both the trend and the stochastic spread.

This module fits one :class:`~repro.calibration.gpmsa.GPMSACalibrator`-style
basis + GP stack per quantile level and exposes the combined predictive
machinery the calibration loop needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .basis import DEFAULT_P_ETA, OutputBasis, fit_basis
from .gp import GPEmulator, fit_gp
from .lhs import ParameterSpace

#: Default emulated quantile levels (the reference uses a small set
#: spanning the replicate distribution).
DEFAULT_QUANTILES: tuple[float, ...] = (0.25, 0.5, 0.75)


@dataclass(frozen=True)
class QuantileEmulator:
    """A fitted multi-quantile emulator.

    Attributes:
        space: parameter space of theta.
        quantiles: emulated quantile levels.
        bases: one output basis per quantile level.
        emulators: per level, one GP per basis coefficient.
    """

    space: ParameterSpace
    quantiles: tuple[float, ...]
    bases: tuple[OutputBasis, ...]
    emulators: tuple[tuple[GPEmulator, ...], ...]

    def predict_quantile(
        self, level: float, thetas: np.ndarray
    ) -> np.ndarray:
        """Predicted q-quantile curves at ``thetas`` rows.

        Returns ``(n_thetas, T)`` mean curves for the requested level.
        """
        try:
            k = self.quantiles.index(level)
        except ValueError:
            raise KeyError(
                f"level {level} not emulated; have {self.quantiles}"
            ) from None
        thetas = np.atleast_2d(thetas)
        xu = self.space.to_unit(thetas)
        w = np.column_stack([gp.predict(xu)[0]
                             for gp in self.emulators[k]])
        return self.bases[k].reconstruct(w)

    def predict_spread(self, thetas: np.ndarray) -> np.ndarray:
        """Predicted inter-quantile spread (max - min level) per theta.

        A cheap stochasticity summary: wide spread marks parameter regions
        where replicates disagree and single-run calibration would be
        overconfident.
        """
        lo = self.predict_quantile(min(self.quantiles), thetas)
        hi = self.predict_quantile(max(self.quantiles), thetas)
        return hi - lo

    def median(self, thetas: np.ndarray) -> np.ndarray:
        """Median-curve prediction (requires 0.5 among the levels)."""
        return self.predict_quantile(0.5, thetas)


def replicate_quantiles(
    replicate_outputs: np.ndarray,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
) -> np.ndarray:
    """Quantile curves of an ``(n_design, R, T)`` replicate stack.

    Returns ``(len(quantiles), n_design, T)``.
    """
    arr = np.asarray(replicate_outputs, dtype=np.float64)
    if arr.ndim != 3:
        raise ValueError("need (n_design, n_replicates, T) outputs")
    if arr.shape[1] < 2:
        raise ValueError("quantile emulation needs >= 2 replicates")
    return np.quantile(arr, quantiles, axis=1)


def fit_quantile_emulator(
    space: ParameterSpace,
    design: np.ndarray,
    replicate_outputs: np.ndarray,
    *,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    p_eta: int = DEFAULT_P_ETA,
    seed: int = 0,
) -> QuantileEmulator:
    """Fit the quantile emulator stack.

    Args:
        space: parameter space.
        design: ``(n_design, d)`` natural-unit design.
        replicate_outputs: ``(n_design, R, T)`` raw replicate curves.
        quantiles: levels to emulate.
        p_eta: basis size per level.
        seed: RNG seed for GP fitting.
    """
    design = np.atleast_2d(np.asarray(design, dtype=np.float64))
    q_curves = replicate_quantiles(replicate_outputs, quantiles)
    if design.shape[0] != q_curves.shape[1]:
        raise ValueError("design and outputs disagree on design size")
    rng = np.random.default_rng(seed)
    x_unit = space.to_unit(design)

    bases: list[OutputBasis] = []
    emulators: list[tuple[GPEmulator, ...]] = []
    for k in range(len(quantiles)):
        basis = fit_basis(q_curves[k], p_eta=p_eta)
        coeffs = basis.project(q_curves[k])
        gps = tuple(
            fit_gp(x_unit, coeffs[:, j], rng) for j in range(basis.p)
        )
        bases.append(basis)
        emulators.append(gps)

    return QuantileEmulator(
        space=space,
        quantiles=tuple(quantiles),
        bases=tuple(bases),
        emulators=tuple(emulators),
    )
