"""Eigenvector output basis for multivariate emulation (Appendix E, Eq. 3).

The simulator output is a full time series; GPMSA handles the multivariate
output with a basis representation::

    eta(theta) = phi_0 + sum_k phi_k w_k(theta) + w_0

with ``p_eta = 5`` eigenvector basis functions phi_k (principal components
of the standardized ensemble of training runs) and independent GP priors on
the coefficients w_k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The paper's basis size: "We have used p_eta = 5".
DEFAULT_P_ETA: int = 5


@dataclass(frozen=True)
class OutputBasis:
    """A fitted eigenvector basis over simulator output space.

    Attributes:
        mean: ``(T,)`` phi_0, the ensemble mean.
        scale: scalar standardisation factor (ensemble sd).
        phi: ``(T, p)`` basis vectors, scaled eigenvectors.
        explained: fraction of ensemble variance captured per component.
        truncation_sd: per-time-point sd of the residual w_0 term.
    """

    mean: np.ndarray
    scale: float
    phi: np.ndarray
    explained: np.ndarray
    truncation_sd: np.ndarray

    @property
    def p(self) -> int:
        """Number of basis functions."""
        return int(self.phi.shape[1])

    @property
    def t_len(self) -> int:
        """Output-space dimension (time points)."""
        return int(self.phi.shape[0])

    def project(self, y: np.ndarray) -> np.ndarray:
        """Coefficients w of output rows ``y`` (least squares onto phi)."""
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        centered = (y - self.mean) / self.scale
        w, *_ = np.linalg.lstsq(self.phi, centered.T, rcond=None)
        return w.T  # (n, p)

    def reconstruct(self, w: np.ndarray) -> np.ndarray:
        """Output rows from coefficient rows ``w``."""
        w = np.atleast_2d(np.asarray(w, dtype=np.float64))
        return (w @ self.phi.T) * self.scale + self.mean

    def reconstruction_error(self, y: np.ndarray) -> float:
        """RMS error of project-then-reconstruct on rows ``y``."""
        y = np.atleast_2d(y)
        back = self.reconstruct(self.project(y))
        return float(np.sqrt(np.mean((back - y) ** 2)))


def fit_basis(
    outputs: np.ndarray, p_eta: int = DEFAULT_P_ETA
) -> OutputBasis:
    """Fit the eigenvector basis to an ``(n_runs, T)`` training ensemble.

    Follows the GPMSA convention: standardise by the ensemble mean and a
    single scalar sd, take the SVD, and scale each eigenvector so the
    associated coefficients have roughly unit variance (which lets the GP
    priors on w_k share a common scale).

    Args:
        outputs: simulator training runs, one row per run.
        p_eta: number of components retained (capped at matrix rank).
    """
    y = np.asarray(outputs, dtype=np.float64)
    if y.ndim != 2 or y.shape[0] < 2:
        raise ValueError("need an (n_runs >= 2, T) output matrix")
    n = y.shape[0]
    mean = y.mean(axis=0)
    sd = float(y.std())
    scale = sd if sd > 0 else 1.0
    z = (y - mean) / scale

    u, s, vt = np.linalg.svd(z, full_matrices=False)
    p = int(min(p_eta, (s > 1e-12).sum(), *z.shape))
    if p < 1:
        raise ValueError("ensemble has no variance to build a basis from")
    # GPMSA scaling: phi_k = v_k * s_k / sqrt(n), so w_k ~ unit variance.
    phi = (vt[:p].T * s[:p]) / np.sqrt(n)
    var = s ** 2
    explained = var[:p] / var.sum()

    w = u[:, :p] * np.sqrt(n)
    resid = z - (w @ phi.T)
    truncation_sd = resid.std(axis=0)

    return OutputBasis(
        mean=mean,
        scale=scale,
        phi=phi,
        explained=explained,
        truncation_sd=truncation_sd,
    )
