"""Systematic-discrepancy basis (Appendix E, Eq. 5).

The calibration model adds a discrepancy term delta between the emulator and
reality, represented over time with ``p_delta = 7`` one-dimensional normal
kernels with a standard deviation of 15 days, spaced 10 days apart::

    delta = sum_k d_k v_k,    v_k(t) = exp(-(t - c_k)^2 / (2 * 15^2))

with independent zero-mean normal priors (precision lambda_delta) on the
weights d_k.
"""

from __future__ import annotations

import numpy as np

#: Paper values.
DEFAULT_P_DELTA: int = 7
KERNEL_SD_DAYS: float = 15.0
KERNEL_SPACING_DAYS: float = 10.0


def discrepancy_basis(
    t_len: int,
    *,
    p_delta: int = DEFAULT_P_DELTA,
    sd: float = KERNEL_SD_DAYS,
    spacing: float = KERNEL_SPACING_DAYS,
) -> np.ndarray:
    """Build the ``(t_len, p_delta)`` kernel matrix D.

    Kernels are centred so the block of ``p_delta`` kernels spans the middle
    of the series when the series is longer than the kernel block, and are
    spread evenly otherwise.

    Args:
        t_len: number of time points.
        p_delta: number of kernels.
        sd: kernel standard deviation in days.
        spacing: distance between kernel centres in days.
    """
    if t_len < 1 or p_delta < 1:
        raise ValueError("t_len and p_delta must be positive")
    block = (p_delta - 1) * spacing
    if block <= t_len - 1:
        start = (t_len - 1 - block) / 2.0
        centers = start + spacing * np.arange(p_delta)
    else:
        centers = np.linspace(0.0, t_len - 1, p_delta)
    t = np.arange(t_len, dtype=np.float64)
    d = np.exp(-((t[:, None] - centers[None, :]) ** 2) / (2.0 * sd ** 2))
    return d


def discrepancy_covariance(
    basis: np.ndarray, lambda_delta: float
) -> np.ndarray:
    """Implied time-domain covariance ``D D^T / lambda_delta``."""
    if lambda_delta <= 0:
        raise ValueError("lambda_delta must be positive")
    return (basis @ basis.T) / lambda_delta
