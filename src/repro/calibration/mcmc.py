"""Adaptive Metropolis MCMC (Appendix E: "explored via MCMC").

A generic random-walk Metropolis sampler with component-wise adaptation of
the proposal scales during burn-in, used both by the GPMSA-style agent-based
calibration and the direct metapopulation calibration ("We use metropolis
update in the Markov chain").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Target acceptance rate for the adaptive scaling.
TARGET_ACCEPT: float = 0.30


@dataclass(frozen=True, slots=True)
class MCMCResult:
    """Output of a Metropolis run.

    Attributes:
        samples: ``(n_kept, d)`` post-burn-in draws.
        log_posts: log posterior of each kept draw.
        accept_rate: overall post-burn-in acceptance rate.
        scales: final proposal scales.
    """

    samples: np.ndarray
    log_posts: np.ndarray
    accept_rate: float
    scales: np.ndarray

    def posterior_mean(self) -> np.ndarray:
        """Mean of the kept samples."""
        return self.samples.mean(axis=0)

    def credible_interval(self, level: float = 0.95) -> np.ndarray:
        """``(2, d)`` equal-tailed credible bounds."""
        alpha = (1 - level) / 2
        return np.quantile(self.samples, [alpha, 1 - alpha], axis=0)

    def effective_sample_size(self) -> np.ndarray:
        """Crude per-dimension ESS from lag-1 autocorrelation."""
        x = self.samples - self.samples.mean(axis=0)
        n = x.shape[0]
        if n < 3:
            return np.full(x.shape[1], float(n))
        num = (x[1:] * x[:-1]).sum(axis=0)
        den = (x * x).sum(axis=0)
        rho1 = np.where(den > 0, num / den, 0.0)
        rho1 = np.clip(rho1, -0.999, 0.999)
        return n * (1 - rho1) / (1 + rho1)


def metropolis(
    log_post: Callable[[np.ndarray], float],
    theta0: np.ndarray,
    *,
    n_samples: int = 2000,
    burn_in: int = 500,
    thin: int = 1,
    init_scales: np.ndarray | float = 0.1,
    rng: np.random.Generator,
) -> MCMCResult:
    """Component-wise adaptive random-walk Metropolis.

    Args:
        log_post: log posterior density (may return ``-inf`` off-support).
        theta0: starting point (must have finite posterior).
        n_samples: kept draws after burn-in and thinning.
        burn_in: adaptation-phase iterations (discarded).
        thin: keep every ``thin``-th draw.
        init_scales: initial per-dimension proposal standard deviations.
        rng: random stream.

    Returns:
        An :class:`MCMCResult`.
    """
    theta = np.asarray(theta0, dtype=np.float64).copy()
    d = theta.shape[0]
    scales = np.broadcast_to(
        np.asarray(init_scales, dtype=np.float64), (d,)).copy()
    lp = float(log_post(theta))
    if not np.isfinite(lp):
        raise ValueError("theta0 has non-finite log posterior")

    accepts = np.zeros(d, dtype=np.int64)
    proposals = np.zeros(d, dtype=np.int64)
    kept = np.empty((n_samples, d))
    kept_lp = np.empty(n_samples)
    n_kept = 0
    post_accept = 0
    post_total = 0
    total_iters = burn_in + n_samples * thin

    for it in range(total_iters):
        # One component per iteration, round-robin (cheap posteriors; keeps
        # per-dimension adaptation simple and correct).
        k = it % d
        prop = theta.copy()
        prop[k] += rng.normal(0.0, scales[k])
        lp_prop = float(log_post(prop))
        proposals[k] += 1
        accept = np.log(rng.random()) < lp_prop - lp
        if accept:
            theta, lp = prop, lp_prop
            accepts[k] += 1
        if it >= burn_in:
            post_total += 1
            post_accept += int(accept)
            j = it - burn_in
            if j % thin == thin - 1 or thin == 1:
                idx = j // thin
                if idx < n_samples:
                    kept[idx] = theta
                    kept_lp[idx] = lp
                    n_kept = idx + 1
        elif (it + 1) % (50 * d) == 0:
            # Adapt proposal scales toward the target acceptance rate.
            rates = np.where(proposals > 0, accepts / proposals, TARGET_ACCEPT)
            scales *= np.exp(np.clip(rates - TARGET_ACCEPT, -0.5, 0.5))
            accepts[:] = 0
            proposals[:] = 0

    return MCMCResult(
        samples=kept[:n_kept],
        log_posts=kept_lp[:n_kept],
        accept_rate=post_accept / max(1, post_total),
        scales=scales,
    )
