"""Bayesian model calibration for the agent-based model (Appendix E).

Implements the paper's GPMSA-style framework [23] in Python:

    y = eta(theta) + delta + epsilon                         (Eq. 2)

with the emulator eta represented over an eigenvector basis (Eq. 3) with
independent GP priors on the coefficients (Eq. 4), a kernel discrepancy
delta (Eq. 5), Gaussian observation error epsilon, gamma priors on the
precision hyperparameters, and a uniform prior on theta over its ranges.
The posterior is explored with adaptive Metropolis MCMC.

Counts are modelled on the log scale, as in the paper ("the observed time
series of logged reported case counts").

The likelihood uses the low-rank (Woodbury) form of the implied time-domain
covariance — rank ``p_eta + p_delta`` over a diagonal — so each MCMC step is
O(T r^2) instead of O(T^3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import DEFAULT_SEED
from .basis import DEFAULT_P_ETA, OutputBasis, fit_basis
from .discrepancy import DEFAULT_P_DELTA, discrepancy_basis
from .gp import GPEmulator, fit_gp
from .lhs import ParameterSpace
from .mcmc import MCMCResult, metropolis


def log_counts(y: np.ndarray) -> np.ndarray:
    """The paper's transform of reported case counts: log(1 + y)."""
    return np.log1p(np.asarray(y, dtype=np.float64))


def _mvn_logpdf_lowrank(
    resid: np.ndarray,
    diag_var: np.ndarray,
    u: np.ndarray,
    c_diag: np.ndarray,
) -> float:
    """log N(resid; 0, diag(diag_var) + U diag(c_diag) U^T) via Woodbury."""
    t = resid.shape[0]
    a_inv = 1.0 / diag_var
    ua = u * a_inv[:, None]  # A^-1 U
    m = np.diag(1.0 / c_diag) + u.T @ ua  # C^-1 + U^T A^-1 U
    sign, logdet_m = np.linalg.slogdet(m)
    if sign <= 0:
        return -np.inf
    logdet = logdet_m + np.log(c_diag).sum() + np.log(diag_var).sum()
    w = np.linalg.solve(m, ua.T @ resid)
    quad = resid @ (a_inv * resid) - (ua.T @ resid) @ w
    return float(-0.5 * (quad + logdet + t * np.log(2 * np.pi)))


@dataclass(frozen=True)
class CalibrationResult:
    """Posterior of one GPMSA calibration.

    Attributes:
        space: the calibrated parameter space.
        prior_design: the LHS design the emulator was trained on.
        theta_samples: ``(n, d)`` posterior draws in natural units.
        lambda_obs / lambda_delta: matching precision draws.
        mcmc: the raw MCMC diagnostics.
    """

    space: ParameterSpace
    prior_design: np.ndarray
    theta_samples: np.ndarray
    lambda_obs: np.ndarray
    lambda_delta: np.ndarray
    mcmc: MCMCResult

    def select_configurations(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Resample ``n`` plausible configurations for prediction workflows.

        Case study 3: "we ran the Bayesian calibration to obtain another 100
        configurations (posterior)".
        """
        idx = rng.choice(self.theta_samples.shape[0], size=n, replace=True)
        return self.theta_samples[idx]

    def posterior_correlation(self) -> np.ndarray:
        """Parameter correlation matrix (the Figure 15 TAU/SYMP reading)."""
        return np.corrcoef(self.theta_samples.T)

    def tightening(self) -> np.ndarray:
        """Posterior sd / prior sd per parameter (< 1 means tightened)."""
        prior_sd = (self.space.upper - self.space.lower) / np.sqrt(12.0)
        return self.theta_samples.std(axis=0) / prior_sd


class GPMSACalibrator:
    """Fits the emulator and exposes the calibration posterior.

    Args:
        space: parameter space of theta.
        design: ``(n_runs, d)`` training design in natural units.
        sim_outputs: ``(n_runs, T)`` simulated series (raw counts).
        observed: ``(T,)`` ground-truth series (raw counts).
        p_eta / p_delta: basis sizes (paper defaults 5 and 7).
        seed: RNG seed for GP fitting and MCMC.
    """

    def __init__(
        self,
        space: ParameterSpace,
        design: np.ndarray,
        sim_outputs: np.ndarray,
        observed: np.ndarray,
        *,
        p_eta: int = DEFAULT_P_ETA,
        p_delta: int = DEFAULT_P_DELTA,
        seed: int = DEFAULT_SEED,
    ) -> None:
        design = np.atleast_2d(np.asarray(design, dtype=np.float64))
        sim_outputs = np.asarray(sim_outputs, dtype=np.float64)
        observed = np.asarray(observed, dtype=np.float64).ravel()
        if design.shape[0] != sim_outputs.shape[0]:
            raise ValueError("design and sim_outputs row counts differ")
        if sim_outputs.shape[1] != observed.shape[0]:
            raise ValueError("sim_outputs and observed horizons differ")

        self.space = space
        self.design = design
        self.rng = np.random.default_rng(seed)

        self.basis: OutputBasis = fit_basis(log_counts(sim_outputs), p_eta)
        self.x_unit = space.to_unit(design)
        coeffs = self.basis.project(log_counts(sim_outputs))
        self.emulators: list[GPEmulator] = [
            fit_gp(self.x_unit, coeffs[:, k], self.rng)
            for k in range(self.basis.p)
        ]
        t_len = observed.shape[0]
        self.d_basis = discrepancy_basis(t_len, p_delta=p_delta)
        self.z_obs = (log_counts(observed) - self.basis.mean) / self.basis.scale
        self.trunc_var = np.maximum(self.basis.truncation_sd ** 2, 1e-10)

    # -- posterior ---------------------------------------------------------------

    def log_posterior(self, params: np.ndarray) -> float:
        """Log posterior over ``[theta_unit..., log lam_obs, log lam_delta]``."""
        d = self.space.dim
        theta_u = params[:d]
        if ((theta_u < 0) | (theta_u > 1)).any():
            return -np.inf
        log_lam_obs, log_lam_delta = params[d], params[d + 1]
        if abs(log_lam_obs) > 20 or abs(log_lam_delta) > 20:
            return -np.inf
        lam_obs = np.exp(log_lam_obs)
        lam_delta = np.exp(log_lam_delta)

        means = np.empty(self.basis.p)
        variances = np.empty(self.basis.p)
        point = theta_u[None, :]
        for k, gp in enumerate(self.emulators):
            m, v = gp.predict(point)
            means[k], variances[k] = m[0], v[0]

        resid = self.z_obs - self.basis.phi @ means
        diag_var = self.trunc_var + 1.0 / lam_obs
        u = np.hstack([self.basis.phi, self.d_basis])
        c_diag = np.concatenate([
            np.maximum(variances, 1e-12),
            np.full(self.d_basis.shape[1], 1.0 / lam_delta),
        ])
        ll = _mvn_logpdf_lowrank(resid, diag_var, u, c_diag)

        # Gamma(a, b) priors on the precisions (GPMSA defaults: vague for
        # the observation precision, mildly informative for discrepancy).
        lp = ll
        lp += 5.0 * log_lam_obs - 5.0 * lam_obs / 100.0
        lp += 1.0 * log_lam_delta - 1.0 * lam_delta / 20.0
        return lp

    def calibrate(
        self,
        *,
        n_samples: int = 1500,
        burn_in: int = 800,
        thin: int = 2,
    ) -> CalibrationResult:
        """Run the MCMC and package the posterior."""
        d = self.space.dim
        theta0 = np.concatenate([np.full(d, 0.5), [np.log(50.0), np.log(5.0)]])
        result = metropolis(
            self.log_posterior,
            theta0,
            n_samples=n_samples,
            burn_in=burn_in,
            thin=thin,
            init_scales=np.concatenate([np.full(d, 0.08), [0.3, 0.3]]),
            rng=self.rng,
        )
        theta_nat = self.space.from_unit(result.samples[:, :d])
        return CalibrationResult(
            space=self.space,
            prior_design=self.design,
            theta_samples=theta_nat,
            lambda_obs=np.exp(result.samples[:, d]),
            lambda_delta=np.exp(result.samples[:, d + 1]),
            mcmc=result,
        )

    # -- predictive --------------------------------------------------------------

    def emulate(self, thetas: np.ndarray) -> np.ndarray:
        """Emulator *mean* curves (raw-count space) at ``thetas`` rows."""
        thetas = np.atleast_2d(thetas)
        xu = self.space.to_unit(thetas)
        w = np.column_stack([gp.predict(xu)[0] for gp in self.emulators])
        return np.expm1(self.basis.reconstruct(w))

    def emulator_band(
        self,
        thetas: np.ndarray,
        *,
        n_draws_per_theta: int = 10,
    ) -> np.ndarray:
        """Emulator draws (raw-count space) for the Figure 16 band.

        For each theta row, draws coefficient vectors from the GP posterior
        and reconstructs curves; returns ``(n_thetas * n_draws, T)``.
        """
        thetas = np.atleast_2d(thetas)
        xu = self.space.to_unit(thetas)
        curves = []
        for row in xu:
            point = row[None, :]
            m = np.empty(self.basis.p)
            s = np.empty(self.basis.p)
            for k, gp in enumerate(self.emulators):
                mk, vk = gp.predict(point)
                m[k], s[k] = mk[0], np.sqrt(vk[0])
            w = self.rng.normal(
                m, s, size=(n_draws_per_theta, self.basis.p))
            curves.append(self.basis.reconstruct(w))
        return np.expm1(np.vstack(curves))
