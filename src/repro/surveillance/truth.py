"""Synthetic county-level COVID-19 surveillance data (Figures 13 and 14).

The calibration workflows ingest county-level daily confirmed-case counts
from multiple sources (NYT, JHU, the UVA dashboard), "starting from January
21, 2020, for over 3000 counties" (Section III).  That data is proprietary
to its aggregators and tied to the real pandemic, so — per the substitution
rule in DESIGN.md — this module generates a synthetic equivalent exercising
the same code paths: per-county cumulative curves that are noisy, delayed,
weekday-seasonal, span orders of magnitude across counties (Figure 13), and
sum to state curves with the staggered take-off of Figure 14.

Each county follows a stochastic logistic growth process with a random
importation date, growth rate and attack fraction, observed through a
reporting channel with under-ascertainment, delay, weekday effects and
negative-binomial-style noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..params import DEFAULT_SEED
from ..synthpop.regions import Region, county_fips, get_region

#: Day 0 of every time axis: January 21, 2020 (first US confirmed case).
EPOCH = "2020-01-21"


@dataclass(frozen=True, slots=True)
class GroundTruth:
    """County-resolved confirmed-case surveillance for one region.

    Attributes:
        region_code: postal code.
        county: ``(C,)`` county FIPS codes.
        daily: ``(C, T)`` observed daily new confirmed cases.
        cumulative: ``(C, T)`` running totals of ``daily``.
    """

    region_code: str
    county: np.ndarray
    daily: np.ndarray
    cumulative: np.ndarray

    @property
    def n_days(self) -> int:
        """Length of the time axis."""
        return int(self.daily.shape[1])

    @property
    def n_counties(self) -> int:
        """Number of counties carried."""
        return int(self.daily.shape[0])

    def state_daily(self) -> np.ndarray:
        """State-level daily counts (sum over counties)."""
        return self.daily.sum(axis=0)

    def state_cumulative(self) -> np.ndarray:
        """State-level cumulative curve (the Figure 14 series)."""
        return self.cumulative.sum(axis=0)

    def counties_with_cases(self) -> int:
        """Counties whose final cumulative count is positive."""
        return int((self.cumulative[:, -1] > 0).sum())

    def latest_by_county(self) -> dict[int, float]:
        """Mapping county FIPS -> final cumulative count (seeding input)."""
        return {
            int(c): float(v)
            for c, v in zip(self.county, self.cumulative[:, -1])
        }

    def window(self, end_day: int) -> "GroundTruth":
        """Truncate the series at ``end_day`` (exclusive) for as-of studies."""
        if not 0 < end_day <= self.n_days:
            raise ValueError(f"end_day must be in (0, {self.n_days}]")
        return GroundTruth(
            self.region_code, self.county,
            self.daily[:, :end_day], self.cumulative[:, :end_day],
        )


#: Days before the logistic inflection during which incidence is zero
#: (outbreaks are quiet until importation takes hold).
QUIET_LEAD_DAYS: float = 20.0


def _logistic_incidence(
    t: np.ndarray, onset: float, rate: float, final: float
) -> np.ndarray:
    """Daily new infections of a logistic outbreak (vectorised over t).

    ``onset`` is the inflection day; the slow left tail of the logistic is
    truncated ``QUIET_LEAD_DAYS`` before it so early days are genuinely
    quiet (the staggered take-off of Figure 14), and the pre-window mass is
    dropped rather than dumped into day 0.
    """
    z = np.clip(rate * (t - onset), -60, 60)
    cum = final / (1.0 + np.exp(-z))
    daily = np.diff(cum, prepend=cum[:1])
    daily[t < onset - QUIET_LEAD_DAYS] = 0.0
    return np.maximum(daily, 0.0)


def generate_region_truth(
    region: Region | str,
    *,
    n_days: int = 210,
    seed: int = DEFAULT_SEED,
    ascertainment: float = 0.25,
    report_delay: int = 7,
) -> GroundTruth:
    """Generate one region's synthetic surveillance series.

    Args:
        region: region or postal code.
        n_days: length of the series ("over 200 days of entries").
        seed: RNG seed (combined with the region FIPS).
        ascertainment: fraction of infections that become confirmed cases.
        report_delay: mean reporting delay in days.

    Returns:
        A :class:`GroundTruth` with one row per county.
    """
    if isinstance(region, str):
        region = get_region(region)
    rng = np.random.default_rng((seed, region.fips, 99))
    fips = np.asarray(county_fips(region), dtype=np.int32)
    n_counties = fips.size
    t = np.arange(n_days, dtype=np.float64)

    # County weights mirror the heavy-tailed population distribution used by
    # the synthetic population generator.
    ranks = np.arange(1, n_counties + 1, dtype=np.float64)
    weights = ranks ** -0.9
    weights *= rng.lognormal(0.0, 0.25, size=n_counties)
    weights /= weights.sum()
    county_pop = weights * region.population

    daily = np.zeros((n_counties, n_days))
    for c in range(n_counties):
        # Bigger counties are seeded earlier (importation via travel volume).
        onset = rng.normal(60.0, 8.0) - 8.0 * np.log10(
            max(county_pop[c], 10.0) / 1e4
        )
        rate = rng.uniform(0.08, 0.18)
        attack = rng.uniform(0.005, 0.04)
        infections = _logistic_incidence(t, max(onset, 42.0), rate,
                                         attack * county_pop[c])
        # Observation channel: ascertainment, delay, weekday dip, noise.
        observed = infections * ascertainment
        delay = int(round(rng.normal(report_delay, 1.5)))
        observed = np.roll(observed, max(delay, 0))
        observed[: max(delay, 0)] = 0.0
        weekday = 1.0 - 0.25 * np.isin(np.arange(n_days) % 7, (5, 6))
        observed *= weekday
        lam = np.maximum(observed, 0.0)
        # Gamma-Poisson mixture (negative-binomial-like overdispersion).
        lam = lam * rng.gamma(5.0, 1.0 / 5.0, size=n_days)
        daily[c] = rng.poisson(lam)

    cumulative = np.cumsum(daily, axis=1)
    return GroundTruth(region.code, fips, daily, cumulative)


def generate_national_truth(
    *, n_days: int = 210, seed: int = DEFAULT_SEED
) -> dict[str, GroundTruth]:
    """Surveillance series for all 51 regions (the Figure 14 panel)."""
    from ..synthpop.regions import ALL_CODES

    return {
        code: generate_region_truth(code, n_days=n_days, seed=seed)
        for code in ALL_CODES
    }
