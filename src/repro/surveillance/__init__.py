"""Synthetic county-level surveillance data (ground-truth substitute).

Public entry points:

- :func:`repro.surveillance.generate_region_truth` — one region's series.
- :func:`repro.surveillance.multi_source_truth` — the merged multi-source
  feed the calibration workflow consumes.
"""

from .sources import (
    DEFAULT_SOURCES,
    JHU,
    NYT,
    UVA_DASHBOARD,
    SourceSpec,
    merge_sources,
    multi_source_truth,
    observe_through_source,
)
from .truth import (
    EPOCH,
    GroundTruth,
    generate_national_truth,
    generate_region_truth,
)

__all__ = [
    "DEFAULT_SOURCES",
    "EPOCH",
    "GroundTruth",
    "JHU",
    "NYT",
    "SourceSpec",
    "UVA_DASHBOARD",
    "generate_national_truth",
    "generate_region_truth",
    "merge_sources",
    "multi_source_truth",
    "observe_through_source",
]
