"""Multi-source surveillance merging (Section III, "Input data to calibration").

The paper pulls confirmed cases "from multiple data sources" — the NYT
repository, the JHU dashboard, and UVA's own COVID-19 surveillance
dashboard — which disagree on revision lag, missing counties and reporting
artifacts.  This module simulates those source-specific distortions on top
of a common :class:`~repro.surveillance.truth.GroundTruth` and merges them
the way the production pipeline does (per-county, per-day maximum of the
cumulative counts, which is robust to missed reporting days).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .truth import GroundTruth


@dataclass(frozen=True, slots=True)
class SourceSpec:
    """Distortion profile of one surveillance source."""

    name: str
    revision_lag: int  #: days by which the tail is stale
    dropout: float  #: probability a county is entirely missing
    dump_probability: float  #: chance a day's count is deferred to the next


#: Stand-ins for the three production sources.
NYT = SourceSpec("nyt", revision_lag=1, dropout=0.00, dump_probability=0.03)
JHU = SourceSpec("jhu", revision_lag=2, dropout=0.01, dump_probability=0.06)
UVA_DASHBOARD = SourceSpec(
    "uva-dashboard", revision_lag=0, dropout=0.03, dump_probability=0.02)

DEFAULT_SOURCES: tuple[SourceSpec, ...] = (NYT, JHU, UVA_DASHBOARD)


def observe_through_source(
    truth: GroundTruth, spec: SourceSpec, rng: np.random.Generator
) -> GroundTruth:
    """One source's (distorted) view of the truth.

    Applies county dropout, back-loaded "data dump" days where a count is
    reported a day late, and a stale tail of ``revision_lag`` days.
    """
    daily = truth.daily.copy()

    dropped = rng.random(truth.n_counties) < spec.dropout
    daily[dropped] = 0.0

    if spec.dump_probability > 0:
        dump = rng.random(daily.shape) < spec.dump_probability
        dump[:, -1] = False
        moved = np.where(dump, daily, 0.0)
        daily -= moved
        daily[:, 1:] += moved[:, :-1]

    if spec.revision_lag > 0:
        daily[:, -spec.revision_lag:] = 0.0

    return GroundTruth(
        truth.region_code, truth.county, daily, np.cumsum(daily, axis=1))


def merge_sources(views: list[GroundTruth]) -> GroundTruth:
    """Merge source views: per-cell max of cumulative counts.

    Cumulative maxima recover counts a source missed while never going
    backwards; daily counts are re-derived by differencing.
    """
    if not views:
        raise ValueError("need at least one source view")
    first = views[0]
    for v in views[1:]:
        if v.region_code != first.region_code or v.n_days != first.n_days:
            raise ValueError("source views disagree on region or horizon")
    cumulative = np.maximum.reduce([v.cumulative for v in views])
    # Enforce monotonicity (max across sources already is, but be safe).
    cumulative = np.maximum.accumulate(cumulative, axis=1)
    daily = np.diff(cumulative, prepend=np.zeros((first.n_counties, 1)))
    return GroundTruth(first.region_code, first.county, daily, cumulative)


def multi_source_truth(
    truth: GroundTruth,
    rng: np.random.Generator,
    sources: tuple[SourceSpec, ...] = DEFAULT_SOURCES,
) -> GroundTruth:
    """Simulate all sources and merge them — the calibration input feed."""
    views = [observe_through_source(truth, s, rng) for s in sources]
    return merge_sources(views)
